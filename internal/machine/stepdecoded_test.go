package machine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// stepEnv builds a small test environment over one private bank, with an
// always-full mailbox and a non-blocking barrier so every opcode is
// executable.
func stepEnv(mem Memory, sent *[]isa.Word) Env {
	return Env{
		Lane:  3,
		Load:  mem.Load,
		Store: mem.Store,
		SendTo: func(peer int, val isa.Word) error {
			*sent = append(*sent, val)
			return nil
		},
		RecvFrom: func(peer int) (isa.Word, error) { return isa.Word(peer + 100), nil },
		Barrier:  func() error { return nil },
	}
}

// TestStepDecodedMatchesStep drives randomized instructions through Step
// and StepDecoded side by side: identical register files, memories,
// outcomes and errors. This is the semantic-equivalence pin for the
// pre-decode fast path.
func TestStepDecodedMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []isa.Op{
		isa.OpNop, isa.OpHalt, isa.OpLdi, isa.OpMov, isa.OpAdd, isa.OpSub,
		isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpSeq, isa.OpMin, isa.OpMax,
		isa.OpAddi, isa.OpMuli, isa.OpLd, isa.OpSt, isa.OpBeq, isa.OpBne,
		isa.OpBlt, isa.OpBge, isa.OpJmp, isa.OpSend, isa.OpRecv, isa.OpSync,
		isa.OpLane,
	}
	const bank = 32
	for trial := 0; trial < 5000; trial++ {
		ins := isa.Instruction{
			Op: ops[rng.Intn(len(ops))],
			Rd: uint8(rng.Intn(isa.NumRegs)),
			Ra: uint8(rng.Intn(isa.NumRegs)),
			Rb: uint8(rng.Intn(isa.NumRegs)),
			// Small immediates keep loads/stores mostly in the bank while
			// still exercising the out-of-range error paths.
			Imm: int32(rng.Intn(2*bank) - bank/2),
		}
		pc := rng.Intn(64)

		var regsA, regsB Regs
		for i := range regsA {
			v := isa.Word(rng.Intn(41) - 20)
			regsA[i], regsB[i] = v, v
		}
		memA := make(Memory, bank)
		memB := make(Memory, bank)
		for i := range memA {
			v := isa.Word(rng.Intn(100))
			memA[i], memB[i] = v, v
		}
		var sentA, sentB []isa.Word

		envA := stepEnv(memA, &sentA)
		envB := stepEnv(memB, &sentB)
		outA, errA := Step(&regsA, pc, ins, envA)
		d := isa.DecodeOp(pc, ins)
		outB, errB := StepDecoded(&regsB, pc, &d, &envB)

		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d %v: Step err %v, StepDecoded err %v", trial, ins, errA, errB)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Fatalf("trial %d %v: error text %q vs %q", trial, ins, errA, errB)
			}
			continue
		}
		if outA != outB {
			t.Fatalf("trial %d %v: outcome %+v vs %+v", trial, ins, outA, outB)
		}
		if regsA != regsB {
			t.Fatalf("trial %d %v: register files diverged\n%v\n%v", trial, ins, regsA, regsB)
		}
		for i := range memA {
			if memA[i] != memB[i] {
				t.Fatalf("trial %d %v: memory diverged at %d: %d vs %d", trial, ins, i, memA[i], memB[i])
			}
		}
		if len(sentA) != len(sentB) {
			t.Fatalf("trial %d %v: sends diverged", trial, ins)
		}
	}
}

// TestStepDecodedBlocked checks the stall path: a blocked RECV keeps the PC
// and reports Blocked, exactly like Step.
func TestStepDecodedBlocked(t *testing.T) {
	var regs Regs
	env := Env{RecvFrom: func(peer int) (isa.Word, error) { return 0, ErrWouldBlock }}
	d := isa.DecodeOp(7, isa.Instruction{Op: isa.OpRecv, Rd: 1, Rb: 2})
	out, err := StepDecoded(&regs, 7, &d, &env)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Blocked || out.NextPC != 7 {
		t.Fatalf("blocked recv: %+v", out)
	}
}

// TestStepDecodedMissingSites checks the connection-site errors surface
// with no callbacks configured.
func TestStepDecodedMissingSites(t *testing.T) {
	for _, op := range []isa.Op{isa.OpLd, isa.OpSt, isa.OpSend, isa.OpRecv, isa.OpSync} {
		var regs Regs
		env := Env{}
		d := isa.DecodeOp(0, isa.Instruction{Op: op})
		if _, err := StepDecoded(&regs, 0, &d, &env); err == nil {
			t.Errorf("%v with no environment: expected error", op)
		}
	}
}

// TestStepDecodedUnimplemented checks the default arm.
func TestStepDecodedUnimplemented(t *testing.T) {
	var regs Regs
	env := Env{}
	d := isa.DecodedOp{Op: isa.Op(200)}
	if _, err := StepDecoded(&regs, 0, &d, &env); err == nil {
		t.Fatal("invalid opcode: expected error")
	}
}

// TestPools checks the zeroing and reuse contract of the bank and register
// pools.
func TestPools(t *testing.T) {
	m, err := GetMemory(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 100 {
		t.Fatalf("len %d", len(m))
	}
	for i := range m {
		m[i] = 7
	}
	PutMemory(m)
	m2, err := GetMemory(90)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2) != 90 {
		t.Fatalf("len %d", len(m2))
	}
	for i, v := range m2 {
		if v != 0 {
			t.Fatalf("pooled bank not zeroed at %d: %d", i, v)
		}
	}

	if _, err := GetMemory(-1); err == nil {
		t.Fatal("negative size: expected error")
	}
	if m0, err := GetMemory(0); err != nil || len(m0) != 0 {
		t.Fatalf("zero-size bank: %v len %d", err, len(m0))
	}

	r := GetRegs(8)
	if len(r) != 8 {
		t.Fatalf("regs len %d", len(r))
	}
	r[3][2] = 99
	PutRegs(r)
	r2 := GetRegs(5)
	if len(r2) != 5 {
		t.Fatalf("regs len %d", len(r2))
	}
	for i := range r2 {
		if r2[i] != (Regs{}) {
			t.Fatalf("pooled regs not zeroed at %d", i)
		}
	}

	// Odd capacities are dropped, not mis-filed.
	PutMemory(make(Memory, 3, 3))
	PutRegs(make([]Regs, 3, 3))
}

// TestErrWouldBlockIsComparable pins that ErrWouldBlock round-trips through
// errors.Is from both step implementations' perspective.
func TestErrWouldBlockIsComparable(t *testing.T) {
	if !errors.Is(ErrWouldBlock, ErrWouldBlock) {
		t.Fatal("ErrWouldBlock identity")
	}
}
