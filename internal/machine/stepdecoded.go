package machine

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
)

// StepDecoded executes one pre-decoded instruction: the hot-path twin of
// Step. Semantics are identical instruction for instruction (the
// equivalence is pinned by TestStepDecodedMatchesStep); the differences are
// purely mechanical:
//
//   - the op class, widened immediate and absolute branch target come from
//     the DecodedOp instead of being re-derived every cycle;
//   - d and env are passed by pointer, so the per-cycle call copies two
//     words instead of an Instruction plus the whole Env (eight fields,
//     five of them closures).
//
// Simulators lower their programs once with isa.Predecode at construction
// and drive this from their cycle loops; Step remains for one-off stepping
// and as the reference implementation.
func StepDecoded(regs *Regs, pc int, d *isa.DecodedOp, env *Env) (Outcome, error) {
	out := Outcome{NextPC: pc + 1}
	switch d.Op {
	case isa.OpNop:
	case isa.OpHalt:
		out.Halted = true
	case isa.OpLdi:
		regs[d.Rd] = d.Imm
	case isa.OpMov:
		regs[d.Rd] = regs[d.Ra]
	case isa.OpAdd:
		regs[d.Rd] = regs[d.Ra] + regs[d.Rb]
	case isa.OpSub:
		regs[d.Rd] = regs[d.Ra] - regs[d.Rb]
	case isa.OpMul:
		regs[d.Rd] = regs[d.Ra] * regs[d.Rb]
	case isa.OpDiv:
		if regs[d.Rb] == 0 {
			return out, fmt.Errorf("machine: division by zero at pc %d", pc)
		}
		regs[d.Rd] = regs[d.Ra] / regs[d.Rb]
	case isa.OpRem:
		if regs[d.Rb] == 0 {
			return out, fmt.Errorf("machine: remainder by zero at pc %d", pc)
		}
		regs[d.Rd] = regs[d.Ra] % regs[d.Rb]
	case isa.OpAnd:
		regs[d.Rd] = regs[d.Ra] & regs[d.Rb]
	case isa.OpOr:
		regs[d.Rd] = regs[d.Ra] | regs[d.Rb]
	case isa.OpXor:
		regs[d.Rd] = regs[d.Ra] ^ regs[d.Rb]
	case isa.OpShl:
		regs[d.Rd] = regs[d.Ra] << uint(regs[d.Rb]&63)
	case isa.OpShr:
		regs[d.Rd] = regs[d.Ra] >> uint(regs[d.Rb]&63)
	case isa.OpSlt:
		regs[d.Rd] = boolWord(regs[d.Ra] < regs[d.Rb])
	case isa.OpSeq:
		regs[d.Rd] = boolWord(regs[d.Ra] == regs[d.Rb])
	case isa.OpMin:
		regs[d.Rd] = minWord(regs[d.Ra], regs[d.Rb])
	case isa.OpMax:
		regs[d.Rd] = maxWord(regs[d.Ra], regs[d.Rb])
	case isa.OpAddi:
		regs[d.Rd] = regs[d.Ra] + d.Imm
	case isa.OpMuli:
		regs[d.Rd] = regs[d.Ra] * d.Imm
	case isa.OpLd:
		if env.Load == nil {
			return out, fmt.Errorf("machine: no DP-DM path for load at pc %d", pc)
		}
		addr := regs[d.Ra] + d.Imm
		v, err := env.Load(addr)
		if err != nil {
			return out, err
		}
		regs[d.Rd] = v
		out.Mem = true
		if env.Tracer != nil {
			env.Tracer.Emit(obs.Event{Kind: obs.KindMemRead, Track: env.Track, Cycle: env.Now, Arg: int64(addr)})
		}
	case isa.OpSt:
		if env.Store == nil {
			return out, fmt.Errorf("machine: no DP-DM path for store at pc %d", pc)
		}
		addr := regs[d.Ra] + d.Imm
		if err := env.Store(addr, regs[d.Rb]); err != nil {
			return out, err
		}
		out.Mem = true
		if env.Tracer != nil {
			env.Tracer.Emit(obs.Event{Kind: obs.KindMemWrite, Track: env.Track, Cycle: env.Now, Arg: int64(addr)})
		}
	case isa.OpBeq:
		if regs[d.Ra] == regs[d.Rb] {
			out.NextPC = int(d.Target)
		}
	case isa.OpBne:
		if regs[d.Ra] != regs[d.Rb] {
			out.NextPC = int(d.Target)
		}
	case isa.OpBlt:
		if regs[d.Ra] < regs[d.Rb] {
			out.NextPC = int(d.Target)
		}
	case isa.OpBge:
		if regs[d.Ra] >= regs[d.Rb] {
			out.NextPC = int(d.Target)
		}
	case isa.OpJmp:
		out.NextPC = int(d.Target)
	case isa.OpSend:
		if env.SendTo == nil {
			return out, fmt.Errorf("machine: no DP-DP network for send at pc %d (this class has DP-DP: none)", pc)
		}
		if err := env.SendTo(int(regs[d.Rb]), regs[d.Ra]); err != nil {
			return out, err
		}
		out.Comm = true
		if env.Tracer != nil {
			env.Tracer.Emit(obs.Event{Kind: obs.KindSend, Track: env.Track, Cycle: env.Now, Arg: int64(regs[d.Rb])})
		}
	case isa.OpRecv:
		if env.RecvFrom == nil {
			return out, fmt.Errorf("machine: no DP-DP network for recv at pc %d (this class has DP-DP: none)", pc)
		}
		peer := int(regs[d.Rb])
		v, err := env.RecvFrom(peer)
		if errors.Is(err, ErrWouldBlock) {
			out.NextPC = pc
			out.Blocked = true
			return out, nil
		}
		if err != nil {
			return out, err
		}
		regs[d.Rd] = v
		out.Comm = true
		if env.Tracer != nil {
			env.Tracer.Emit(obs.Event{Kind: obs.KindRecv, Track: env.Track, Cycle: env.Now, Arg: int64(peer)})
		}
	case isa.OpSync:
		if env.Barrier == nil {
			return out, fmt.Errorf("machine: no barrier support at pc %d", pc)
		}
		if err := env.Barrier(); errors.Is(err, ErrWouldBlock) {
			out.NextPC = pc
			out.Blocked = true
			return out, nil
		} else if err != nil {
			return out, err
		}
	case isa.OpLane:
		regs[d.Rd] = env.Lane
	default:
		return out, fmt.Errorf("machine: unimplemented opcode %v at pc %d", d.Op, pc)
	}
	return out, nil
}
