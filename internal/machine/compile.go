package machine

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
)

// This file is the compiled backend: it lowers a pre-decoded program into
// threaded code — one closure per instruction, specialized at compile time
// to its operand registers, widened immediate and absolute branch target,
// so the executed path has no per-op switch at all — plus a basic-block
// program for the uni-processor fast path: straight-line runs are grouped
// into blocks, fused into superinstructions where a known pattern matches
// (load+ALU+store triples, induction-increment+branch pairs), and accounted
// in one batched Stats update per block instead of one per instruction.
//
// Equivalence with Step/StepDecoded is architectural, not best-effort: the
// differential sweeps in internal/conformance and the FuzzCompile oracle
// byte-compare memories, registers, Stats and traced event streams across
// all three backends.

// OpFn is one unit of threaded code: StepDecoded specialized to a single
// decoded instruction. The program counter is captured at compile time, so
// callers index the chain by pc and follow Outcome.NextPC exactly as they
// would with StepDecoded.
type OpFn func(regs *Regs, env *Env) (Outcome, error)

// CompileOptions carries the timing parameters the block accounting bakes
// into its per-block cycle costs.
type CompileOptions struct {
	// MemLatency is the extra cycles a load/store spends on the DP-DM
	// switch; 0 means the default single cycle (matching uniproc.Config).
	MemLatency int64
	// BranchPenalty is the extra cycles a taken branch costs; 0 means
	// taken branches are free beyond their issue cycle.
	BranchPenalty int64
}

// CPU is the execution state of the compiled uni-processor fast path: a
// register file and a directly addressed data bank, with the run's Stats
// accumulated in place.
type CPU struct {
	Regs  Regs
	Mem   Memory
	Stats Stats
}

// haltPC is the NextPC sentinel a terminator returns after HALT. Any
// negative pc ends the run (the interpreters treat an out-of-range pc as an
// implicit halt), so -1 is merely the conventional spelling.
const haltPC = -1

// microFn is one fused straight-line unit inside a block. It returns how
// many of its constituent instructions retired: all of them on success,
// fewer when a guest fault (bad address, division by zero, missing switch)
// stopped the unit mid-way. The count only matters on the error path, where
// the runner re-derives exact per-instruction accounting.
type microFn func(c *CPU) (int32, error)

// termFn computes a block's successor pc (haltPC after HALT), applying the
// taken-branch penalty and any fused induction increment.
type termFn func(c *CPU) int

// unit is one microFn plus the pc range it covers.
type unit struct {
	fn   microFn
	pc   int32
	nops int32
}

// block is one basic block: fused straight-line units, a terminator, and
// the batched Stats of every instruction in [start, end).
type block struct {
	start, end int32
	units      []unit
	term       termFn
	// Batched accounting applied once per successful block execution.
	nInstr, nALU, nLoads, nStores int64
	// cycles is the static cycle cost of the whole block (instruction
	// issues plus DP-DM latencies; the dynamic taken-branch penalty is the
	// terminator's). It doubles as the budget-guard margin: a block only
	// runs fused when the cycle budget cannot expire inside it.
	cycles int64
}

// CompiledProgram is the lowered form of one program: the per-op threaded
// chain (used by every simulator and by traced runs, where per-instruction
// event emission is part of the contract) and the fused block program the
// uni-processor fast path executes.
type CompiledProgram struct {
	ops           []OpFn
	blocks        []block
	blockAt       []int32 // pc of a block leader -> its index in blocks
	dec           isa.DecodedProgram
	n             int
	memLatency    int64
	branchPenalty int64
}

// Ops returns the threaded per-op chain, indexed by pc.
func (p *CompiledProgram) Ops() []OpFn { return p.ops }

// Len returns the program length in instructions.
func (p *CompiledProgram) Len() int { return p.n }

// Compile lowers a pre-decoded program. The caller is expected to have
// validated the program, as with Predecode; compiling an empty program
// yields a chain whose Run halts immediately.
func Compile(dec isa.DecodedProgram, opts CompileOptions) *CompiledProgram {
	memLat := opts.MemLatency
	if memLat == 0 {
		memLat = 1 // default DP-DM direct-switch traversal
	}
	p := &CompiledProgram{
		dec:           dec,
		n:             len(dec),
		ops:           make([]OpFn, len(dec)),
		blockAt:       make([]int32, len(dec)),
		memLatency:    memLat,
		branchPenalty: opts.BranchPenalty,
	}
	for pc := range dec {
		p.ops[pc] = compileOp(pc, &dec[pc])
	}
	p.buildBlocks()
	return p
}

// buildBlocks lowers each basic block of the shared CFG (isa.BuildCFG owns
// the leader rules: pc 0, every branch target, every instruction after a
// branch or halt) and asserts the fusion invariant: every fused unit stays
// inside one CFG block, so a superinstruction can never span a boundary
// the static checker reasons about.
func (p *CompiledProgram) buildBlocks() {
	if p.n == 0 {
		return
	}
	cfg := isa.BuildCFG(p.dec)
	for pc := range p.blockAt {
		p.blockAt[pc] = -1
	}
	for i := range cfg.Blocks {
		cb := &cfg.Blocks[i]
		p.blockAt[cb.Start] = int32(len(p.blocks))
		p.blocks = append(p.blocks, p.lowerBlock(int(cb.Start), int(cb.End)))
	}
	for _, b := range p.blocks {
		for _, u := range b.units {
			lastPC := int(u.pc) + int(u.nops) - 1
			if cfg.BlockAt[u.pc] != cfg.BlockAt[lastPC] {
				panic(fmt.Sprintf("machine: fused unit [%d,%d] spans CFG blocks %d and %d",
					u.pc, lastPC, cfg.BlockAt[u.pc], cfg.BlockAt[lastPC]))
			}
		}
	}
}

// lowerBlock lowers the ops in [start, end) into fused units plus a
// terminator and computes the block's batched accounting.
func (p *CompiledProgram) lowerBlock(start, end int) block {
	b := block{start: int32(start), end: int32(end)}
	for pc := start; pc < end; pc++ {
		d := &p.dec[pc]
		b.nInstr++
		b.cycles++
		if d.IsALU() {
			b.nALU++
		}
		if d.IsMemory() {
			b.cycles += p.memLatency
			if d.Op == isa.OpLd {
				b.nLoads++
			} else {
				b.nStores++
			}
		}
	}

	last := &p.dec[end-1]
	straight := end // ops [start, straight) become units
	var pre *preInc
	if last.IsBranch() || last.Op == isa.OpHalt {
		straight = end - 1
		// Induction-increment fusion: fold a trailing `addi rX, rX, imm`
		// into a branch terminator so hot loop back-edges are one closure.
		if last.IsBranch() && straight > start {
			if d := &p.dec[straight-1]; d.Op == isa.OpAddi && d.Rd == d.Ra {
				pre = &preInc{rd: d.Rd, imm: d.Imm}
				straight--
			}
		}
		b.term = p.genTerm(end-1, last, pre)
	} else {
		fall := end
		b.term = func(*CPU) int { return fall }
	}

	for pc := start; pc < straight; {
		if fn, n := p.fuseAt(pc, straight); fn != nil {
			b.units = append(b.units, unit{fn: fn, pc: int32(pc), nops: n})
			pc += int(n)
			continue
		}
		b.units = append(b.units, unit{fn: p.genMicro(pc, &p.dec[pc]), pc: int32(pc), nops: 1})
		pc++
	}
	return b
}

// preInc is an induction increment fused into a branch terminator.
type preInc struct {
	rd  uint8
	imm isa.Word
}

// fusable ALU kernels for the load+ALU+store superinstruction. DIV/REM are
// excluded: they fault on zero divisors and the fused unit would have to
// carry their pc-stamped error, for no gain on real kernels.
func aluKernel(d *isa.DecodedOp) func(c *CPU) {
	rd, ra, rb, imm := d.Rd, d.Ra, d.Rb, d.Imm
	switch d.Op {
	case isa.OpAdd:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] + c.Regs[rb] }
	case isa.OpSub:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] - c.Regs[rb] }
	case isa.OpMul:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] * c.Regs[rb] }
	case isa.OpAnd:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] & c.Regs[rb] }
	case isa.OpOr:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] | c.Regs[rb] }
	case isa.OpXor:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] ^ c.Regs[rb] }
	case isa.OpShl:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] << uint(c.Regs[rb]&63) }
	case isa.OpShr:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] >> uint(c.Regs[rb]&63) }
	case isa.OpSlt:
		return func(c *CPU) { c.Regs[rd] = boolWord(c.Regs[ra] < c.Regs[rb]) }
	case isa.OpSeq:
		return func(c *CPU) { c.Regs[rd] = boolWord(c.Regs[ra] == c.Regs[rb]) }
	case isa.OpMin:
		return func(c *CPU) { c.Regs[rd] = minWord(c.Regs[ra], c.Regs[rb]) }
	case isa.OpMax:
		return func(c *CPU) { c.Regs[rd] = maxWord(c.Regs[ra], c.Regs[rb]) }
	case isa.OpAddi:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] + imm }
	case isa.OpMuli:
		return func(c *CPU) { c.Regs[rd] = c.Regs[ra] * imm }
	default:
		return nil // not a fusable ALU op
	}
}

// fuseAt tries the superinstruction patterns at pc within the straight-line
// region [pc, limit). It returns (nil, 0) when nothing matches. To add a
// fusion rule: match the decoded ops here, build one microFn that performs
// them in program order and returns how many retired before any fault, and
// cover the new rule in compile_test.go's fusion tables — the batched block
// accounting is derived from the decoded ops, so it needs no change.
func (p *CompiledProgram) fuseAt(pc, limit int) (microFn, int32) {
	// load + ALU + store: the inner-loop body of most of the kernel suite.
	if pc+3 <= limit {
		ld, mid, st := &p.dec[pc], &p.dec[pc+1], &p.dec[pc+2]
		if ld.Op == isa.OpLd && st.Op == isa.OpSt {
			if alu := aluKernel(mid); alu != nil {
				lrd, lra, limm := ld.Rd, ld.Ra, ld.Imm
				sra, srb, simm := st.Ra, st.Rb, st.Imm
				return func(c *CPU) (int32, error) {
					v, err := c.Mem.Load(c.Regs[lra] + limm)
					if err != nil {
						return 0, err
					}
					c.Regs[lrd] = v
					alu(c)
					if err := c.Mem.Store(c.Regs[sra]+simm, c.Regs[srb]); err != nil {
						return 2, err
					}
					return 3, nil
				}, 3
			}
		}
	}
	return nil, 0
}

// genMicro builds the direct-memory single-op unit for the uni-processor
// fast path: same semantics and error text as StepDecoded under a
// uni-processor Env (Lane 0, direct Load/Store, no network, no barrier).
func (p *CompiledProgram) genMicro(pc int, d *isa.DecodedOp) microFn {
	if alu := aluKernel(d); alu != nil {
		return func(c *CPU) (int32, error) {
			alu(c)
			return 1, nil
		}
	}
	rd, ra, rb, imm := d.Rd, d.Ra, d.Rb, d.Imm
	switch d.Op {
	case isa.OpNop:
		return func(*CPU) (int32, error) { return 1, nil }
	case isa.OpLdi:
		return func(c *CPU) (int32, error) {
			c.Regs[rd] = imm
			return 1, nil
		}
	case isa.OpMov:
		return func(c *CPU) (int32, error) {
			c.Regs[rd] = c.Regs[ra]
			return 1, nil
		}
	case isa.OpDiv:
		return func(c *CPU) (int32, error) {
			if c.Regs[rb] == 0 {
				return 0, fmt.Errorf("machine: division by zero at pc %d", pc)
			}
			c.Regs[rd] = c.Regs[ra] / c.Regs[rb]
			return 1, nil
		}
	case isa.OpRem:
		return func(c *CPU) (int32, error) {
			if c.Regs[rb] == 0 {
				return 0, fmt.Errorf("machine: remainder by zero at pc %d", pc)
			}
			c.Regs[rd] = c.Regs[ra] % c.Regs[rb]
			return 1, nil
		}
	case isa.OpLd:
		return func(c *CPU) (int32, error) {
			v, err := c.Mem.Load(c.Regs[ra] + imm)
			if err != nil {
				return 0, err
			}
			c.Regs[rd] = v
			return 1, nil
		}
	case isa.OpSt:
		return func(c *CPU) (int32, error) {
			if err := c.Mem.Store(c.Regs[ra]+imm, c.Regs[rb]); err != nil {
				return 0, err
			}
			return 1, nil
		}
	case isa.OpSend:
		err := fmt.Errorf("machine: no DP-DP network for send at pc %d (this class has DP-DP: none)", pc)
		return func(*CPU) (int32, error) { return 0, err }
	case isa.OpRecv:
		err := fmt.Errorf("machine: no DP-DP network for recv at pc %d (this class has DP-DP: none)", pc)
		return func(*CPU) (int32, error) { return 0, err }
	case isa.OpSync:
		err := fmt.Errorf("machine: no barrier support at pc %d", pc)
		return func(*CPU) (int32, error) { return 0, err }
	case isa.OpLane:
		return func(c *CPU) (int32, error) {
			c.Regs[rd] = 0 // uni-processor: the lane index is 0
			return 1, nil
		}
	default:
		op := d.Op
		err := fmt.Errorf("machine: unimplemented opcode %v at pc %d", op, pc)
		return func(*CPU) (int32, error) { return 0, err }
	}
}

// genTerm builds a block terminator for the branch or halt at pc, folding
// in an induction increment when fuseAt matched one. The taken-branch
// penalty replicates the interpreter rule exactly: it applies only when
// NextPC differs from pc+1, so `jmp +0` and not-taken branches stay free.
func (p *CompiledProgram) genTerm(pc int, d *isa.DecodedOp, pre *preInc) termFn {
	if d.Op == isa.OpHalt {
		return func(*CPU) int { return haltPC }
	}
	ra, rb := d.Ra, d.Rb
	tgt, fall := int(d.Target), pc+1
	pen := int64(0)
	if tgt != fall {
		pen = p.branchPenalty
	}
	if d.Op == isa.OpJmp {
		if pre != nil {
			prd, pimm := pre.rd, pre.imm
			return func(c *CPU) int {
				c.Regs[prd] += pimm
				c.Stats.Cycles += pen
				return tgt
			}
		}
		return func(c *CPU) int {
			c.Stats.Cycles += pen
			return tgt
		}
	}
	var cond func(c *CPU) bool
	switch d.Op {
	case isa.OpBeq:
		cond = func(c *CPU) bool { return c.Regs[ra] == c.Regs[rb] }
	case isa.OpBne:
		cond = func(c *CPU) bool { return c.Regs[ra] != c.Regs[rb] }
	case isa.OpBlt:
		cond = func(c *CPU) bool { return c.Regs[ra] < c.Regs[rb] }
	case isa.OpBge:
		cond = func(c *CPU) bool { return c.Regs[ra] >= c.Regs[rb] }
	default:
		// Unreachable: every branch op is one of the four above or OpJmp.
		return func(*CPU) int { return fall }
	}
	if pre != nil {
		prd, pimm := pre.rd, pre.imm
		return func(c *CPU) int {
			c.Regs[prd] += pimm
			if cond(c) {
				c.Stats.Cycles += pen
				return tgt
			}
			return fall
		}
	}
	return func(c *CPU) int {
		if cond(c) {
			c.Stats.Cycles += pen
			return tgt
		}
		return fall
	}
}

// Run executes the block program on a CPU until halt, fall-off or a guest
// fault, with uni-processor accounting (one cycle per instruction, the
// configured DP-DM latency per memory op, the taken-branch penalty). It is
// cycle-exact with the interpreted loop: whenever the budget could expire
// inside a block, that block and the remainder of the run step one op at a
// time with the interpreter's per-instruction budget check. failPC reports
// the faulting pc for error wrapping; ErrDeadline is returned bare so the
// caller can format it like the interpreters do.
func (p *CompiledProgram) Run(c *CPU, budget int64) (failPC int, err error) {
	pc := 0
	for pc >= 0 && pc < p.n {
		b := &p.blocks[p.blockAt[pc]]
		if c.Stats.Cycles+b.cycles > budget {
			return p.runExact(c, pc, budget)
		}
		for i := range b.units {
			u := &b.units[i]
			k, err := u.fn(c)
			if err != nil {
				fpc := int(u.pc) + int(k)
				p.accountPartial(c, int(b.start), fpc)
				return fpc, err
			}
		}
		c.Stats.Cycles += b.cycles
		c.Stats.Instructions += b.nInstr
		c.Stats.ALUOps += b.nALU
		c.Stats.MemReads += b.nLoads
		c.Stats.MemWrites += b.nStores
		pc = b.term(c)
	}
	return 0, nil
}

// runExact steps the rest of the run one op at a time through the threaded
// chain, with the interpreter's exact per-instruction budget check. It is
// only entered when the budget could expire within the next block, so it
// runs a handful of instructions at most.
func (p *CompiledProgram) runExact(c *CPU, pc int, budget int64) (failPC int, err error) {
	env := Env{Load: c.Mem.Load, Store: c.Mem.Store}
	for pc >= 0 && pc < p.n {
		if c.Stats.Cycles >= budget {
			return pc, ErrDeadline
		}
		d := &p.dec[pc]
		out, err := p.ops[pc](&c.Regs, &env)
		if err != nil {
			return pc, err
		}
		c.Stats.Cycles++
		c.Stats.Instructions++
		if d.IsALU() {
			c.Stats.ALUOps++
		}
		if out.Mem {
			c.Stats.Cycles += p.memLatency
			if d.Op == isa.OpLd {
				c.Stats.MemReads++
			} else {
				c.Stats.MemWrites++
			}
		}
		if d.IsBranch() && out.NextPC != pc+1 {
			c.Stats.Cycles += p.branchPenalty
		}
		pc = out.NextPC
		if out.Halted {
			return 0, nil
		}
	}
	return 0, nil
}

// accountPartial credits the instructions of block starting at start that
// retired before the fault at failPC. The faulting instruction itself is
// not counted, matching the interpreted loop.
func (p *CompiledProgram) accountPartial(c *CPU, start, failPC int) {
	for pc := start; pc < failPC; pc++ {
		d := &p.dec[pc]
		c.Stats.Cycles++
		c.Stats.Instructions++
		if d.IsALU() {
			c.Stats.ALUOps++
		}
		if d.IsMemory() {
			c.Stats.Cycles += p.memLatency
			if d.Op == isa.OpLd {
				c.Stats.MemReads++
			} else {
				c.Stats.MemWrites++
			}
		}
	}
}

// compileOp specializes StepDecoded to one decoded instruction: the
// threaded-code unit shared by every simulator's compiled dispatch. Each
// closure mirrors the corresponding StepDecoded case, error strings and
// traced events included.
func compileOp(pc int, d *isa.DecodedOp) OpFn {
	next := pc + 1
	rd, ra, rb, imm := d.Rd, d.Ra, d.Rb, d.Imm
	tgt := int(d.Target)
	switch d.Op {
	case isa.OpNop:
		return func(*Regs, *Env) (Outcome, error) { return Outcome{NextPC: next}, nil }
	case isa.OpHalt:
		return func(*Regs, *Env) (Outcome, error) { return Outcome{NextPC: next, Halted: true}, nil }
	case isa.OpLdi:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = imm
			return Outcome{NextPC: next}, nil
		}
	case isa.OpMov:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpAdd:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] + regs[rb]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpSub:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] - regs[rb]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpMul:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] * regs[rb]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpDiv:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			if regs[rb] == 0 {
				return Outcome{NextPC: next}, fmt.Errorf("machine: division by zero at pc %d", pc)
			}
			regs[rd] = regs[ra] / regs[rb]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpRem:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			if regs[rb] == 0 {
				return Outcome{NextPC: next}, fmt.Errorf("machine: remainder by zero at pc %d", pc)
			}
			regs[rd] = regs[ra] % regs[rb]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpAnd:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] & regs[rb]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpOr:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] | regs[rb]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpXor:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] ^ regs[rb]
			return Outcome{NextPC: next}, nil
		}
	case isa.OpShl:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] << uint(regs[rb]&63)
			return Outcome{NextPC: next}, nil
		}
	case isa.OpShr:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] >> uint(regs[rb]&63)
			return Outcome{NextPC: next}, nil
		}
	case isa.OpSlt:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = boolWord(regs[ra] < regs[rb])
			return Outcome{NextPC: next}, nil
		}
	case isa.OpSeq:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = boolWord(regs[ra] == regs[rb])
			return Outcome{NextPC: next}, nil
		}
	case isa.OpMin:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = minWord(regs[ra], regs[rb])
			return Outcome{NextPC: next}, nil
		}
	case isa.OpMax:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = maxWord(regs[ra], regs[rb])
			return Outcome{NextPC: next}, nil
		}
	case isa.OpAddi:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] + imm
			return Outcome{NextPC: next}, nil
		}
	case isa.OpMuli:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			regs[rd] = regs[ra] * imm
			return Outcome{NextPC: next}, nil
		}
	case isa.OpLd:
		return func(regs *Regs, env *Env) (Outcome, error) {
			out := Outcome{NextPC: next}
			if env.Load == nil {
				return out, fmt.Errorf("machine: no DP-DM path for load at pc %d", pc)
			}
			addr := regs[ra] + imm
			v, err := env.Load(addr)
			if err != nil {
				return out, err
			}
			regs[rd] = v
			out.Mem = true
			if env.Tracer != nil {
				env.Tracer.Emit(obs.Event{Kind: obs.KindMemRead, Track: env.Track, Cycle: env.Now, Arg: int64(addr)})
			}
			return out, nil
		}
	case isa.OpSt:
		return func(regs *Regs, env *Env) (Outcome, error) {
			out := Outcome{NextPC: next}
			if env.Store == nil {
				return out, fmt.Errorf("machine: no DP-DM path for store at pc %d", pc)
			}
			addr := regs[ra] + imm
			if err := env.Store(addr, regs[rb]); err != nil {
				return out, err
			}
			out.Mem = true
			if env.Tracer != nil {
				env.Tracer.Emit(obs.Event{Kind: obs.KindMemWrite, Track: env.Track, Cycle: env.Now, Arg: int64(addr)})
			}
			return out, nil
		}
	case isa.OpBeq:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			if regs[ra] == regs[rb] {
				return Outcome{NextPC: tgt}, nil
			}
			return Outcome{NextPC: next}, nil
		}
	case isa.OpBne:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			if regs[ra] != regs[rb] {
				return Outcome{NextPC: tgt}, nil
			}
			return Outcome{NextPC: next}, nil
		}
	case isa.OpBlt:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			if regs[ra] < regs[rb] {
				return Outcome{NextPC: tgt}, nil
			}
			return Outcome{NextPC: next}, nil
		}
	case isa.OpBge:
		return func(regs *Regs, _ *Env) (Outcome, error) {
			if regs[ra] >= regs[rb] {
				return Outcome{NextPC: tgt}, nil
			}
			return Outcome{NextPC: next}, nil
		}
	case isa.OpJmp:
		return func(*Regs, *Env) (Outcome, error) { return Outcome{NextPC: tgt}, nil }
	case isa.OpSend:
		return func(regs *Regs, env *Env) (Outcome, error) {
			out := Outcome{NextPC: next}
			if env.SendTo == nil {
				return out, fmt.Errorf("machine: no DP-DP network for send at pc %d (this class has DP-DP: none)", pc)
			}
			if err := env.SendTo(int(regs[rb]), regs[ra]); err != nil {
				return out, err
			}
			out.Comm = true
			if env.Tracer != nil {
				env.Tracer.Emit(obs.Event{Kind: obs.KindSend, Track: env.Track, Cycle: env.Now, Arg: int64(regs[rb])})
			}
			return out, nil
		}
	case isa.OpRecv:
		return func(regs *Regs, env *Env) (Outcome, error) {
			out := Outcome{NextPC: next}
			if env.RecvFrom == nil {
				return out, fmt.Errorf("machine: no DP-DP network for recv at pc %d (this class has DP-DP: none)", pc)
			}
			peer := int(regs[rb])
			v, err := env.RecvFrom(peer)
			if errors.Is(err, ErrWouldBlock) {
				out.NextPC = pc
				out.Blocked = true
				return out, nil
			}
			if err != nil {
				return out, err
			}
			regs[rd] = v
			out.Comm = true
			if env.Tracer != nil {
				env.Tracer.Emit(obs.Event{Kind: obs.KindRecv, Track: env.Track, Cycle: env.Now, Arg: int64(peer)})
			}
			return out, nil
		}
	case isa.OpSync:
		return func(_ *Regs, env *Env) (Outcome, error) {
			out := Outcome{NextPC: next}
			if env.Barrier == nil {
				return out, fmt.Errorf("machine: no barrier support at pc %d", pc)
			}
			if err := env.Barrier(); errors.Is(err, ErrWouldBlock) {
				out.NextPC = pc
				out.Blocked = true
				return out, nil
			} else if err != nil {
				return out, err
			}
			return out, nil
		}
	case isa.OpLane:
		return func(regs *Regs, env *Env) (Outcome, error) {
			regs[rd] = env.Lane
			return Outcome{NextPC: next}, nil
		}
	}
	op := d.Op
	return func(*Regs, *Env) (Outcome, error) {
		return Outcome{NextPC: next}, fmt.Errorf("machine: unimplemented opcode %v at pc %d", op, pc)
	}
}
