package machine

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestMemory(t *testing.T) {
	m, err := NewMemory(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store(3, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(3)
	if err != nil || v != 42 {
		t.Errorf("Load(3) = (%d, %v)", v, err)
	}
	if _, err := m.Load(-1); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := m.Load(8); err == nil {
		t.Error("out-of-range load accepted")
	}
	if err := m.Store(8, 1); err == nil {
		t.Error("out-of-range store accepted")
	}
	if err := m.CopyIn(6, []isa.Word{1, 2, 3}); err == nil {
		t.Error("overflowing CopyIn accepted")
	}
	if err := m.CopyIn(5, []isa.Word{1, 2, 3}); err != nil {
		t.Errorf("CopyIn: %v", err)
	}
	out, err := m.CopyOut(5, 3)
	if err != nil || out[0] != 1 || out[2] != 3 {
		t.Errorf("CopyOut = (%v, %v)", out, err)
	}
	if _, err := m.CopyOut(7, 2); err == nil {
		t.Error("overflowing CopyOut accepted")
	}
	if _, err := m.CopyOut(0, -1); err == nil {
		t.Error("negative CopyOut accepted")
	}
	if _, err := NewMemory(-1); err == nil {
		t.Error("negative memory size accepted")
	}
}

// step is a helper that runs one instruction on fresh state.
func step(t *testing.T, regsIn Regs, ins isa.Instruction, env Env) (Regs, Outcome) {
	t.Helper()
	regs := regsIn
	out, err := Step(&regs, 10, ins, env)
	if err != nil {
		t.Fatalf("Step(%v): %v", ins, err)
	}
	return regs, out
}

func TestStep_ALUSemantics(t *testing.T) {
	var base Regs
	base[1], base[2] = 7, 3
	cases := []struct {
		op   isa.Op
		want isa.Word
	}{
		{isa.OpAdd, 10}, {isa.OpSub, 4}, {isa.OpMul, 21}, {isa.OpDiv, 2},
		{isa.OpRem, 1}, {isa.OpAnd, 3}, {isa.OpOr, 7}, {isa.OpXor, 4},
		{isa.OpShl, 56}, {isa.OpShr, 0}, {isa.OpSlt, 0}, {isa.OpSeq, 0},
		{isa.OpMin, 3}, {isa.OpMax, 7},
	}
	for _, tc := range cases {
		regs, out := step(t, base, isa.Instruction{Op: tc.op, Rd: 5, Ra: 1, Rb: 2}, Env{})
		if regs[5] != tc.want {
			t.Errorf("%v: r5 = %d, want %d", tc.op, regs[5], tc.want)
		}
		if out.NextPC != 11 || out.Halted || out.Blocked {
			t.Errorf("%v: outcome %+v", tc.op, out)
		}
	}
	regs, _ := step(t, base, isa.Instruction{Op: isa.OpSlt, Rd: 5, Ra: 2, Rb: 1}, Env{})
	if regs[5] != 1 {
		t.Error("slt with a<b should set 1")
	}
	regs, _ = step(t, base, isa.Instruction{Op: isa.OpAddi, Rd: 5, Ra: 1, Imm: -2}, Env{})
	if regs[5] != 5 {
		t.Errorf("addi = %d", regs[5])
	}
	regs, _ = step(t, base, isa.Instruction{Op: isa.OpMuli, Rd: 5, Ra: 1, Imm: 4}, Env{})
	if regs[5] != 28 {
		t.Errorf("muli = %d", regs[5])
	}
	regs, _ = step(t, base, isa.Instruction{Op: isa.OpLdi, Rd: 5, Imm: -9}, Env{})
	if regs[5] != -9 {
		t.Errorf("ldi = %d", regs[5])
	}
	regs, _ = step(t, base, isa.Instruction{Op: isa.OpMov, Rd: 5, Ra: 1}, Env{})
	if regs[5] != 7 {
		t.Errorf("mov = %d", regs[5])
	}
}

func TestStep_DivideByZero(t *testing.T) {
	var regs Regs
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpDiv, Rd: 1, Ra: 2, Rb: 3}, Env{}); err == nil {
		t.Error("div by zero accepted")
	}
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpRem, Rd: 1, Ra: 2, Rb: 3}, Env{}); err == nil {
		t.Error("rem by zero accepted")
	}
}

func TestStep_Branches(t *testing.T) {
	var base Regs
	base[1], base[2] = 5, 5
	cases := []struct {
		op    isa.Op
		ra    isa.Word
		taken bool
	}{
		{isa.OpBeq, 5, true}, {isa.OpBeq, 4, false},
		{isa.OpBne, 5, false}, {isa.OpBne, 4, true},
		{isa.OpBlt, 4, true}, {isa.OpBlt, 5, false},
		{isa.OpBge, 5, true}, {isa.OpBge, 4, false},
	}
	for _, tc := range cases {
		regs := base
		regs[1] = tc.ra
		out, err := Step(&regs, 10, isa.Instruction{Op: tc.op, Ra: 1, Rb: 2, Imm: 5}, Env{})
		if err != nil {
			t.Fatal(err)
		}
		wantPC := 11
		if tc.taken {
			wantPC = 16
		}
		if out.NextPC != wantPC {
			t.Errorf("%v ra=%d: pc %d, want %d", tc.op, tc.ra, out.NextPC, wantPC)
		}
	}
	var regs Regs
	out, err := Step(&regs, 10, isa.Instruction{Op: isa.OpJmp, Imm: -3}, Env{})
	if err != nil || out.NextPC != 8 {
		t.Errorf("jmp: (%+v, %v)", out, err)
	}
}

func TestStep_HaltNopLane(t *testing.T) {
	var regs Regs
	out, err := Step(&regs, 0, isa.Instruction{Op: isa.OpHalt}, Env{})
	if err != nil || !out.Halted {
		t.Errorf("halt: (%+v, %v)", out, err)
	}
	out, err = Step(&regs, 0, isa.Instruction{Op: isa.OpNop}, Env{})
	if err != nil || out.Halted || out.NextPC != 1 {
		t.Errorf("nop: (%+v, %v)", out, err)
	}
	_, err = Step(&regs, 0, isa.Instruction{Op: isa.OpLane, Rd: 4}, Env{Lane: 9})
	if err != nil || regs[4] != 9 {
		t.Errorf("lane: r4=%d err=%v", regs[4], err)
	}
}

func TestStep_MemoryOps(t *testing.T) {
	mem, _ := NewMemory(16)
	env := Env{Load: mem.Load, Store: mem.Store}
	var regs Regs
	regs[1], regs[2] = 4, 99
	out, err := Step(&regs, 0, isa.Instruction{Op: isa.OpSt, Ra: 1, Rb: 2, Imm: 2}, env)
	if err != nil || !out.Mem {
		t.Fatalf("st: (%+v, %v)", out, err)
	}
	if mem[6] != 99 {
		t.Errorf("mem[6] = %d", mem[6])
	}
	out, err = Step(&regs, 0, isa.Instruction{Op: isa.OpLd, Rd: 3, Ra: 1, Imm: 2}, env)
	if err != nil || !out.Mem || regs[3] != 99 {
		t.Errorf("ld: r3=%d (%+v, %v)", regs[3], out, err)
	}
	// No DP-DM path configured.
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpLd, Rd: 3, Ra: 1}, Env{}); err == nil {
		t.Error("load without DP-DM path accepted")
	}
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpSt, Ra: 1, Rb: 2}, Env{}); err == nil {
		t.Error("store without DP-DM path accepted")
	}
	// Memory errors propagate.
	regs[1] = 1000
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpLd, Rd: 3, Ra: 1}, env); err == nil {
		t.Error("out-of-range load accepted")
	}
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpSt, Ra: 1, Rb: 2}, env); err == nil {
		t.Error("out-of-range store accepted")
	}
}

func TestStep_CommOps(t *testing.T) {
	var sentPeer int
	var sentVal isa.Word
	env := Env{
		SendTo: func(peer int, val isa.Word) error {
			sentPeer, sentVal = peer, val
			return nil
		},
		RecvFrom: func(peer int) (isa.Word, error) {
			if peer == 7 {
				return 0, ErrWouldBlock
			}
			return isa.Word(100 + peer), nil
		},
	}
	var regs Regs
	regs[1], regs[2] = 55, 3
	out, err := Step(&regs, 0, isa.Instruction{Op: isa.OpSend, Ra: 1, Rb: 2}, env)
	if err != nil || !out.Comm || sentPeer != 3 || sentVal != 55 {
		t.Errorf("send: peer=%d val=%d (%+v, %v)", sentPeer, sentVal, out, err)
	}
	out, err = Step(&regs, 5, isa.Instruction{Op: isa.OpRecv, Rd: 4, Rb: 2}, env)
	if err != nil || !out.Comm || regs[4] != 103 {
		t.Errorf("recv: r4=%d (%+v, %v)", regs[4], out, err)
	}
	// Blocking recv keeps the pc.
	regs[2] = 7
	out, err = Step(&regs, 5, isa.Instruction{Op: isa.OpRecv, Rd: 4, Rb: 2}, env)
	if err != nil || !out.Blocked || out.NextPC != 5 {
		t.Errorf("blocked recv: (%+v, %v)", out, err)
	}
	// Missing network.
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpSend, Ra: 1, Rb: 2}, Env{}); err == nil ||
		!strings.Contains(err.Error(), "DP-DP") {
		t.Errorf("send without network: %v", err)
	}
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpRecv, Rd: 1, Rb: 2}, Env{}); err == nil {
		t.Error("recv without network accepted")
	}
}

func TestStep_Sync(t *testing.T) {
	var regs Regs
	block := true
	env := Env{Barrier: func() error {
		if block {
			return ErrWouldBlock
		}
		return nil
	}}
	out, err := Step(&regs, 3, isa.Instruction{Op: isa.OpSync}, env)
	if err != nil || !out.Blocked || out.NextPC != 3 {
		t.Errorf("blocked sync: (%+v, %v)", out, err)
	}
	block = false
	out, err = Step(&regs, 3, isa.Instruction{Op: isa.OpSync}, env)
	if err != nil || out.Blocked || out.NextPC != 4 {
		t.Errorf("released sync: (%+v, %v)", out, err)
	}
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.OpSync}, Env{}); err == nil {
		t.Error("sync without barrier support accepted")
	}
	boom := errors.New("boom")
	_, err = Step(&regs, 0, isa.Instruction{Op: isa.OpSync}, Env{Barrier: func() error { return boom }})
	if !errors.Is(err, boom) {
		t.Errorf("barrier error not propagated: %v", err)
	}
}

func TestStep_InvalidOp(t *testing.T) {
	var regs Regs
	if _, err := Step(&regs, 0, isa.Instruction{Op: isa.Op(99)}, Env{}); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestStats(t *testing.T) {
	a := Stats{Cycles: 10, Instructions: 5, ALUOps: 2, Messages: 1}
	b := Stats{Cycles: 7, Instructions: 3, MemReads: 2, Barriers: 1, NetConflictCycles: 4}
	a.Add(b)
	if a.Cycles != 10 { // max, not sum
		t.Errorf("Cycles = %d", a.Cycles)
	}
	if a.Instructions != 8 || a.MemReads != 2 || a.Barriers != 1 || a.NetConflictCycles != 4 {
		t.Errorf("Add = %+v", a)
	}
	if a.IPC() != 0.8 {
		t.Errorf("IPC = %g", a.IPC())
	}
	if (Stats{}).IPC() != 0 {
		t.Error("idle IPC nonzero")
	}
}

func TestIsALU(t *testing.T) {
	if !IsALU(isa.OpAdd) || !IsALU(isa.OpMuli) || IsALU(isa.OpLd) || IsALU(isa.OpJmp) || IsALU(isa.OpNop) {
		t.Error("IsALU misclassifies")
	}
}

// TestStep_Property: ALU ops never touch memory/comm outcome flags and
// always advance the PC by one.
func TestStep_Property(t *testing.T) {
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpSeq, isa.OpMin, isa.OpMax, isa.OpAddi, isa.OpMuli}
	f := func(sel uint8, rd, ra, rb uint8, a, b isa.Word, pcRaw uint16) bool {
		op := ops[int(sel)%len(ops)]
		var regs Regs
		regs[ra%isa.NumRegs], regs[rb%isa.NumRegs] = a, b
		pc := int(pcRaw)
		out, err := Step(&regs, pc, isa.Instruction{
			Op: op, Rd: rd % isa.NumRegs, Ra: ra % isa.NumRegs, Rb: rb % isa.NumRegs, Imm: 3,
		}, Env{})
		if err != nil {
			return false
		}
		return out.NextPC == pc+1 && !out.Mem && !out.Comm && !out.Halted && !out.Blocked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
