package machine

import "fmt"

// Backend selects how a simulator executes its guest program. All three
// backends implement identical architectural semantics — same results,
// same Stats, same traced event streams — and the equivalence is pinned by
// internal/conformance's differential sweeps. They differ only in host
// dispatch cost:
//
//	BackendInterp   — machine.Step on raw isa.Instruction values: operand
//	                  widths, branch targets and op classes re-derived
//	                  every executed cycle. The reference implementation.
//	BackendDecoded  — machine.StepDecoded on a cached isa.DecodedProgram:
//	                  one pre-decode pass, still a per-op switch per cycle.
//	BackendCompiled — machine.Compile threaded code: one closure per
//	                  instruction specialized to its operands (no per-op
//	                  switch), and on the uni-processor a basic-block run
//	                  mode with superinstruction fusion and batched cycle
//	                  accounting.
type Backend uint8

const (
	// BackendDefault resolves to BackendCompiled: the compiled backend is
	// the default now that the differential harness pins its equivalence.
	BackendDefault Backend = iota
	// BackendInterp is the raw-Step reference interpreter.
	BackendInterp
	// BackendDecoded is the pre-decoded switch interpreter.
	BackendDecoded
	// BackendCompiled is the closure-threaded compiled backend.
	BackendCompiled
)

// Resolve maps BackendDefault to the concrete default backend.
func (b Backend) Resolve() Backend {
	if b == BackendDefault {
		return BackendCompiled
	}
	return b
}

// String returns the flag spelling of the backend.
func (b Backend) String() string {
	switch b {
	case BackendDefault:
		return "default"
	case BackendInterp:
		return "interp"
	case BackendDecoded:
		return "decoded"
	case BackendCompiled:
		return "compiled"
	}
	return fmt.Sprintf("Backend(%d)", uint8(b))
}

// ParseBackend parses a -backend flag value. The empty string selects
// BackendDefault so optional request fields and unset flags fall through
// to the pinned default.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "":
		return BackendDefault, nil
	case "interp":
		return BackendInterp, nil
	case "decoded":
		return BackendDecoded, nil
	case "compiled":
		return BackendCompiled, nil
	}
	return BackendDefault, fmt.Errorf("machine: unknown backend %q (want interp, decoded or compiled)", s)
}

// Backends lists the concrete backends, in ablation order, for flag help
// and differential sweeps.
func Backends() []Backend {
	return []Backend{BackendInterp, BackendDecoded, BackendCompiled}
}
