package machine

import (
	"math/bits"
	"sync"
)

// This file is the allocator-churn half of the batch-execution work:
// size-bucketed sync.Pools for the two allocations every machine build
// repeats — data-memory banks and per-processor register-file slices. A
// conformance matrix run builds hundreds of machines; recycling their banks
// keeps repeated runs (and the parallel workers of internal/exec, which
// multiply the churn) off the garbage collector.
//
// Ownership rule: a bank or regs slice handed to PutMemory/PutRegs must not
// be referenced again by the caller. The simulators enforce this through
// their Release methods, which are documented to invalidate the machine.

// poolBuckets is the number of power-of-two size classes (2^0..2^31 words
// covers every simulated memory).
const poolBuckets = 32

var memPools [poolBuckets]sync.Pool

// bucketFor returns the size class holding capacity >= words, i.e. the
// exponent of the next power of two.
func bucketFor(words int) int {
	if words <= 1 {
		return 0
	}
	return bits.Len(uint(words - 1))
}

// GetMemory returns a zeroed bank of the given number of words, reusing a
// pooled allocation when one of the right size class is available. It is
// the pooled counterpart of NewMemory and shares its validation.
func GetMemory(words int) (Memory, error) {
	if words < 0 {
		return NewMemory(words) // propagate the size error
	}
	b := bucketFor(words)
	if b >= poolBuckets {
		return NewMemory(words)
	}
	if v := memPools[b].Get(); v != nil {
		m := v.(Memory)[:words]
		clear(m)
		return m, nil
	}
	// Allocate the full bucket capacity so the slice can serve any size in
	// its class when recycled.
	return make(Memory, words, 1<<b), nil
}

// PutMemory recycles a bank obtained from GetMemory (or any bank the caller
// owns outright). Banks whose capacity is not a power of two are dropped
// rather than mis-filed.
func PutMemory(m Memory) {
	c := cap(m)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b := bucketFor(c)
	if b >= poolBuckets {
		return
	}
	//lint:ignore SA6002 one boxed slice header per Put is amortized by reusing the bank
	memPools[b].Put(m[:c])
}

var regsPools [poolBuckets]sync.Pool

// GetRegs returns a zeroed slice of n register files, pooled like GetMemory.
func GetRegs(n int) []Regs {
	if n < 0 {
		n = 0
	}
	b := bucketFor(n)
	if b >= poolBuckets {
		return make([]Regs, n)
	}
	if v := regsPools[b].Get(); v != nil {
		r := v.([]Regs)[:n]
		for i := range r {
			r[i] = Regs{}
		}
		return r
	}
	return make([]Regs, n, 1<<b)
}

// PutRegs recycles a register-file slice obtained from GetRegs.
func PutRegs(r []Regs) {
	c := cap(r)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b := bucketFor(c)
	if b >= poolBuckets {
		return
	}
	//lint:ignore SA6002 see PutMemory
	regsPools[b].Put(r[:c])
}
