package machine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// refRun executes prog with uni-processor semantics through raw Step: one
// cycle per instruction, memLat extra per memory op, branchPenalty extra
// per taken branch, the budget checked before every issue. It is the
// reference the compiled fast path must match cycle for cycle; faults are
// wrapped as "pc %d: ..." and deadlines returned as bare ErrDeadline, the
// shapes compiledRun normalizes to.
func refRun(prog isa.Program, mem Memory, memLat, branchPenalty, budget int64) (Regs, Stats, error) {
	var regs Regs
	var stats Stats
	env := Env{Load: mem.Load, Store: mem.Store}
	if memLat == 0 {
		memLat = 1
	}
	pc := 0
	for {
		if pc < 0 || pc >= len(prog) {
			return regs, stats, nil
		}
		if stats.Cycles >= budget {
			return regs, stats, ErrDeadline
		}
		ins := prog[pc]
		out, err := Step(&regs, pc, ins, env)
		if err != nil {
			return regs, stats, fmt.Errorf("pc %d: %w", pc, err)
		}
		stats.Cycles++
		stats.Instructions++
		if ins.Op.IsALU() {
			stats.ALUOps++
		}
		if out.Mem {
			stats.Cycles += memLat
			if ins.Op == isa.OpLd {
				stats.MemReads++
			} else {
				stats.MemWrites++
			}
		}
		if ins.Op.IsBranch() && out.NextPC != pc+1 {
			stats.Cycles += branchPenalty
		}
		pc = out.NextPC
		if out.Halted {
			return regs, stats, nil
		}
	}
}

// compiledRun executes prog through the fused block fast path and
// normalizes its (failPC, err) convention to refRun's error shapes.
func compiledRun(prog isa.Program, mem Memory, memLat, branchPenalty, budget int64) (Regs, Stats, error) {
	p := Compile(isa.Predecode(prog), CompileOptions{MemLatency: memLat, BranchPenalty: branchPenalty})
	c := CPU{Mem: mem}
	failPC, err := p.Run(&c, budget)
	if err != nil && !errors.Is(err, ErrDeadline) {
		err = fmt.Errorf("pc %d: %w", failPC, err)
	}
	return c.Regs, c.Stats, err
}

// opsRun executes prog through the threaded per-op chain with the same
// loop-level accounting: the path traced runs and the other simulators
// dispatch through.
func opsRun(prog isa.Program, mem Memory, memLat, branchPenalty, budget int64) (Regs, Stats, error) {
	p := Compile(isa.Predecode(prog), CompileOptions{MemLatency: memLat, BranchPenalty: branchPenalty})
	ops := p.Ops()
	var regs Regs
	var stats Stats
	env := Env{Load: mem.Load, Store: mem.Store}
	if memLat == 0 {
		memLat = 1
	}
	pc := 0
	for {
		if pc < 0 || pc >= len(prog) {
			return regs, stats, nil
		}
		if stats.Cycles >= budget {
			return regs, stats, ErrDeadline
		}
		out, err := ops[pc](&regs, &env)
		if err != nil {
			return regs, stats, fmt.Errorf("pc %d: %w", pc, err)
		}
		stats.Cycles++
		stats.Instructions++
		op := prog[pc].Op
		if op.IsALU() {
			stats.ALUOps++
		}
		if out.Mem {
			stats.Cycles += memLat
			if op == isa.OpLd {
				stats.MemReads++
			} else {
				stats.MemWrites++
			}
		}
		if op.IsBranch() && out.NextPC != pc+1 {
			stats.Cycles += branchPenalty
		}
		pc = out.NextPC
		if out.Halted {
			return regs, stats, nil
		}
	}
}

// diffRuns compares two complete runs: error shape and text, Stats
// byte-for-byte, register files and memories word-for-word.
func diffRuns(t *testing.T, label string, regsA, regsB Regs, statsA, statsB Stats, memA, memB Memory, errA, errB error) {
	t.Helper()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("%s: err %v vs %v", label, errA, errB)
	}
	if errA != nil && errA.Error() != errB.Error() {
		t.Fatalf("%s: error text %q vs %q", label, errA, errB)
	}
	if statsA != statsB {
		t.Fatalf("%s: stats %+v vs %+v", label, statsA, statsB)
	}
	if regsA != regsB {
		t.Fatalf("%s: registers diverged\n%v\n%v", label, regsA, regsB)
	}
	for i := range memA {
		if memA[i] != memB[i] {
			t.Fatalf("%s: memory diverged at %d: %d vs %d", label, i, memA[i], memB[i])
		}
	}
}

// TestCompiledOpMatchesStep drives randomized instructions through Step and
// the compiled per-op closure side by side, mirroring
// TestStepDecodedMatchesStep: the threaded chain is StepDecoded specialized
// per instruction, so outcomes, registers, memories and error text must be
// identical.
func TestCompiledOpMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []isa.Op{
		isa.OpNop, isa.OpHalt, isa.OpLdi, isa.OpMov, isa.OpAdd, isa.OpSub,
		isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpSeq, isa.OpMin, isa.OpMax,
		isa.OpAddi, isa.OpMuli, isa.OpLd, isa.OpSt, isa.OpBeq, isa.OpBne,
		isa.OpBlt, isa.OpBge, isa.OpJmp, isa.OpSend, isa.OpRecv, isa.OpSync,
		isa.OpLane,
	}
	const bank = 32
	for trial := 0; trial < 5000; trial++ {
		ins := isa.Instruction{
			Op:  ops[rng.Intn(len(ops))],
			Rd:  uint8(rng.Intn(isa.NumRegs)),
			Ra:  uint8(rng.Intn(isa.NumRegs)),
			Rb:  uint8(rng.Intn(isa.NumRegs)),
			Imm: int32(rng.Intn(2*bank) - bank/2),
		}
		pc := rng.Intn(64)

		var regsA, regsB Regs
		for i := range regsA {
			v := isa.Word(rng.Intn(41) - 20)
			regsA[i], regsB[i] = v, v
		}
		memA := make(Memory, bank)
		memB := make(Memory, bank)
		for i := range memA {
			v := isa.Word(rng.Intn(100))
			memA[i], memB[i] = v, v
		}
		var sentA, sentB []isa.Word

		envA := stepEnv(memA, &sentA)
		envB := stepEnv(memB, &sentB)
		outA, errA := Step(&regsA, pc, ins, envA)
		d := isa.DecodeOp(pc, ins)
		fn := compileOp(pc, &d)
		outB, errB := fn(&regsB, &envB)

		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d %v: Step err %v, compiled err %v", trial, ins, errA, errB)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Fatalf("trial %d %v: error text %q vs %q", trial, ins, errA, errB)
			}
			continue
		}
		if outA != outB {
			t.Fatalf("trial %d %v: outcome %+v vs %+v", trial, ins, outA, outB)
		}
		if regsA != regsB {
			t.Fatalf("trial %d %v: register files diverged\n%v\n%v", trial, ins, regsA, regsB)
		}
		for i := range memA {
			if memA[i] != memB[i] {
				t.Fatalf("trial %d %v: memory diverged at %d: %d vs %d", trial, ins, i, memA[i], memB[i])
			}
		}
		if len(sentA) != len(sentB) {
			t.Fatalf("trial %d %v: sends diverged", trial, ins)
		}
	}
}

// randCompileProgram generates a random valid program mixing ALU ops,
// loads/stores (mostly in-bank, sometimes wild), DIV/REM (fault bait) and
// branches in both directions. Unlike the conformance generator it allows
// backward branches: non-termination is the budget check's job, and the
// deadline path must match across backends too.
func randCompileProgram(rng *rand.Rand, n, bank int) isa.Program {
	prog := make(isa.Program, 0, n+1)
	for pc := 0; pc < n; pc++ {
		var ins isa.Instruction
		reg := func() uint8 { return uint8(rng.Intn(isa.NumRegs)) }
		switch pick := rng.Intn(100); {
		case pick < 30:
			alu := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
				isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpSeq, isa.OpMin, isa.OpMax}
			ins = isa.Instruction{Op: alu[rng.Intn(len(alu))], Rd: reg(), Ra: reg(), Rb: reg()}
		case pick < 40:
			ins = isa.Instruction{Op: isa.OpLdi, Rd: reg(), Imm: int32(rng.Intn(2*bank) - bank/2)}
		case pick < 50:
			ins = isa.Instruction{Op: isa.OpAddi, Rd: reg(), Ra: reg(), Imm: int32(rng.Intn(9) - 4)}
		case pick < 65:
			ins = isa.Instruction{Op: isa.OpLd, Rd: reg(), Ra: reg(), Imm: int32(rng.Intn(bank))}
		case pick < 80:
			ins = isa.Instruction{Op: isa.OpSt, Rb: reg(), Ra: reg(), Imm: int32(rng.Intn(bank))}
		case pick < 84:
			op := []isa.Op{isa.OpDiv, isa.OpRem}[rng.Intn(2)]
			ins = isa.Instruction{Op: op, Rd: reg(), Ra: reg(), Rb: reg()}
		case pick < 96:
			br := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpJmp}
			op := br[rng.Intn(len(br))]
			target := rng.Intn(n + 2) // anywhere in [0, n+1]: forward, backward, self
			ins = isa.Instruction{Op: op, Imm: int32(target - (pc + 1))}
			if op != isa.OpJmp {
				ins.Ra, ins.Rb = reg(), reg()
			}
		default:
			ins = isa.Instruction{Op: isa.OpNop}
		}
		prog = append(prog, ins)
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	return prog
}

// TestCompileRunMatchesInterp is the in-package differential run: random
// programs (backward branches, guest faults and deadlines included) under
// varying memory latencies and branch penalties, executed by the raw-Step
// reference, the fused block path and the threaded per-op chain. Registers,
// memories, Stats and errors must agree byte for byte. The cross-simulator
// sweep lives in internal/conformance; this one pins the timing knobs the
// generated cross-class programs never vary.
func TestCompileRunMatchesInterp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const bank = 48
	for trial := 0; trial < 2000; trial++ {
		prog := randCompileProgram(rng, 2+rng.Intn(40), bank)
		if err := prog.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		memLat := int64(rng.Intn(4))
		bp := int64(rng.Intn(3))
		budget := int64(200 + rng.Intn(800))
		img := make([]isa.Word, bank)
		for i := range img {
			img[i] = isa.Word(rng.Intn(201) - 100)
		}
		mk := func() Memory {
			m := make(Memory, bank)
			copy(m, img)
			return m
		}
		memRef, memBlk, memOps := mk(), mk(), mk()
		regsRef, statsRef, errRef := refRun(prog, memRef, memLat, bp, budget)
		regsBlk, statsBlk, errBlk := compiledRun(prog, memBlk, memLat, bp, budget)
		regsOps, statsOps, errOps := opsRun(prog, memOps, memLat, bp, budget)
		label := fmt.Sprintf("trial %d (memLat=%d bp=%d budget=%d)\n%s", trial, memLat, bp, budget, isa.Disassemble(prog))
		diffRuns(t, "block "+label, regsRef, regsBlk, statsRef, statsBlk, memRef, memBlk, errRef, errBlk)
		diffRuns(t, "ops "+label, regsRef, regsOps, statsRef, statsOps, memRef, memOps, errRef, errOps)
	}
}

// TestCompileBlockProperties checks the structural invariants of the block
// program on random inputs: every branch target begins a block, the blocks
// partition the program, and every block's batched accounting equals the
// sum of its instructions' unfused costs (so superinstruction fusion can
// never change Stats).
func TestCompileBlockProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		prog := randCompileProgram(rng, 1+rng.Intn(60), 32)
		memLat := int64(rng.Intn(4))
		p := Compile(isa.Predecode(prog), CompileOptions{MemLatency: memLat})
		if memLat == 0 {
			memLat = 1
		}

		// Branch targets begin blocks.
		for pc := range p.dec {
			d := &p.dec[pc]
			if !d.IsBranch() {
				continue
			}
			if tgt := int(d.Target); tgt >= 0 && tgt < p.n && p.blockAt[tgt] < 0 {
				t.Fatalf("trial %d: branch at pc %d targets %d, which does not begin a block\n%s",
					trial, pc, tgt, isa.Disassemble(prog))
			}
		}

		// Blocks partition [0, n) in order.
		next := int32(0)
		for i, b := range p.blocks {
			if b.start != next || b.end <= b.start {
				t.Fatalf("trial %d: block %d spans [%d,%d), want start %d", trial, i, b.start, b.end, next)
			}
			if p.blockAt[b.start] != int32(i) {
				t.Fatalf("trial %d: blockAt[%d] = %d, want %d", trial, b.start, p.blockAt[b.start], i)
			}
			next = b.end
		}
		if next != int32(p.n) {
			t.Fatalf("trial %d: blocks cover [0,%d), program has %d ops", trial, next, p.n)
		}

		// Fused accounting equals the per-op sum; fused units cover the
		// straight-line ops exactly once, in order.
		for i, b := range p.blocks {
			var want block
			for pc := b.start; pc < b.end; pc++ {
				d := &p.dec[pc]
				want.nInstr++
				want.cycles++
				if d.IsALU() {
					want.nALU++
				}
				switch d.Op {
				case isa.OpLd:
					want.nLoads++
					want.cycles += memLat
				case isa.OpSt:
					want.nStores++
					want.cycles += memLat
				}
			}
			if b.nInstr != want.nInstr || b.nALU != want.nALU || b.nLoads != want.nLoads ||
				b.nStores != want.nStores || b.cycles != want.cycles {
				t.Fatalf("trial %d block %d: fused stats {%d %d %d %d %d} != op sum {%d %d %d %d %d}\n%s",
					trial, i, b.nInstr, b.nALU, b.nLoads, b.nStores, b.cycles,
					want.nInstr, want.nALU, want.nLoads, want.nStores, want.cycles, isa.Disassemble(prog))
			}
			pc := b.start
			for _, u := range b.units {
				if u.pc != pc || u.nops < 1 {
					t.Fatalf("trial %d block %d: unit at pc %d (nops %d), want pc %d", trial, i, u.pc, u.nops, pc)
				}
				pc += u.nops
			}
			if pc > b.end {
				t.Fatalf("trial %d block %d: units overrun block end %d", trial, i, b.end)
			}
		}
	}
}

// TestCompileFusionEdgeCases pins the block builder's corners: branches
// into the middle of a would-be superinstruction, self-loops, zero-length
// programs, immediate sign extension at the int32 extremes, and faults
// inside fused units. Each case must both shape the blocks as stated and
// run byte-identically to the raw-Step reference.
func TestCompileFusionEdgeCases(t *testing.T) {
	const bank = 16
	cases := []struct {
		name  string
		prog  isa.Program
		check func(t *testing.T, p *CompiledProgram)
	}{
		{
			// ld/addi/st would fuse into a triple, but pc 2 (the addi) is a
			// branch target and so must begin its own block, splitting the
			// pattern.
			name: "branch into middle of triple",
			prog: isa.Program{
				{Op: isa.OpBeq, Ra: 0, Rb: 1, Imm: 1}, // -> pc 2, into the triple
				{Op: isa.OpLd, Rd: 2, Ra: 15, Imm: 3},
				{Op: isa.OpAddi, Rd: 2, Ra: 2, Imm: 5},
				{Op: isa.OpSt, Rb: 2, Ra: 15, Imm: 4},
				{Op: isa.OpHalt},
			},
			check: func(t *testing.T, p *CompiledProgram) {
				if p.blockAt[2] < 0 {
					t.Fatal("branch target pc 2 does not begin a block")
				}
				for _, b := range p.blocks {
					for _, u := range b.units {
						if u.nops > 1 {
							t.Fatalf("block at %d fused %d ops across a leader", b.start, u.nops)
						}
					}
				}
			},
		},
		{
			// An unfusable-at-pc-1 triple: the whole pattern is present and
			// fuses into one three-op unit.
			name: "fused triple",
			prog: isa.Program{
				{Op: isa.OpLd, Rd: 2, Ra: 15, Imm: 3},
				{Op: isa.OpAddi, Rd: 2, Ra: 2, Imm: 5},
				{Op: isa.OpSt, Rb: 2, Ra: 15, Imm: 4},
				{Op: isa.OpHalt},
			},
			check: func(t *testing.T, p *CompiledProgram) {
				b := p.blocks[0]
				if len(b.units) != 1 || b.units[0].nops != 3 {
					t.Fatalf("want one fused 3-op unit, got %d units", len(b.units))
				}
			},
		},
		{
			// The store of the triple faults: the load and ALU op retired,
			// the store did not — partial accounting must match the
			// interpreter exactly.
			name: "fault mid triple",
			prog: isa.Program{
				{Op: isa.OpLd, Rd: 2, Ra: 15, Imm: 3},
				{Op: isa.OpAddi, Rd: 2, Ra: 2, Imm: 5},
				{Op: isa.OpSt, Rb: 2, Ra: 15, Imm: bank + 7}, // out of bank
				{Op: isa.OpHalt},
			},
		},
		{
			name: "fault on triple load",
			prog: isa.Program{
				{Op: isa.OpLd, Rd: 2, Ra: 15, Imm: -1 - bank},
				{Op: isa.OpAddi, Rd: 2, Ra: 2, Imm: 5},
				{Op: isa.OpSt, Rb: 2, Ra: 15, Imm: 4},
				{Op: isa.OpHalt},
			},
		},
		{
			name: "division by zero mid block",
			prog: isa.Program{
				{Op: isa.OpLdi, Rd: 1, Imm: 9},
				{Op: isa.OpDiv, Rd: 2, Ra: 1, Rb: 3}, // r3 = 0
				{Op: isa.OpLdi, Rd: 4, Imm: 1},
				{Op: isa.OpHalt},
			},
		},
		{
			// A one-instruction self-loop: the smallest possible block, a
			// budget check per iteration, and a deadline that must match the
			// interpreter's cycle count exactly.
			name: "self-loop jmp",
			prog: isa.Program{{Op: isa.OpJmp, Imm: -1}},
			check: func(t *testing.T, p *CompiledProgram) {
				if len(p.blocks) != 1 || p.blocks[0].end != 1 {
					t.Fatalf("self-loop: want one 1-op block, got %+v", p.blocks)
				}
			},
		},
		{
			// jmp +0 falls through to pc+1: taken in form, but NextPC equals
			// pc+1 so the branch penalty must NOT apply.
			name: "jmp plus zero no penalty",
			prog: isa.Program{
				{Op: isa.OpJmp, Imm: 0},
				{Op: isa.OpHalt},
			},
		},
		{
			// Induction increment fused into the backward branch: the block
			// body is empty and the terminator does both.
			name: "fused induction loop",
			prog: isa.Program{
				{Op: isa.OpLdi, Rd: 2, Imm: 10},
				{Op: isa.OpAddi, Rd: 1, Ra: 1, Imm: 1},
				{Op: isa.OpBlt, Ra: 1, Rb: 2, Imm: -2},
				{Op: isa.OpHalt},
			},
			check: func(t *testing.T, p *CompiledProgram) {
				b := p.blocks[p.blockAt[1]]
				if len(b.units) != 0 {
					t.Fatalf("induction pair not fused: %d units remain", len(b.units))
				}
			},
		},
		{
			// addi that is not an induction increment (Rd != Ra) must not
			// fuse into the branch.
			name: "non-induction addi before branch",
			prog: isa.Program{
				{Op: isa.OpAddi, Rd: 1, Ra: 2, Imm: 1},
				{Op: isa.OpBlt, Ra: 1, Rb: 3, Imm: -2},
				{Op: isa.OpHalt},
			},
			check: func(t *testing.T, p *CompiledProgram) {
				if b := p.blocks[0]; len(b.units) != 1 {
					t.Fatalf("non-induction addi fused away: %d units", len(b.units))
				}
			},
		},
		{
			// Immediates at the int32 extremes: LDI loads them, ADDI/MULI
			// widen them, branches never see them. The widened Word
			// arithmetic must match Step's exactly.
			name: "max-imm sign extension",
			prog: isa.Program{
				{Op: isa.OpLdi, Rd: 1, Imm: math.MaxInt32},
				{Op: isa.OpLdi, Rd: 2, Imm: math.MinInt32},
				{Op: isa.OpAddi, Rd: 3, Ra: 1, Imm: math.MaxInt32},
				{Op: isa.OpAddi, Rd: 4, Ra: 2, Imm: math.MinInt32},
				{Op: isa.OpMuli, Rd: 5, Ra: 1, Imm: math.MinInt32},
				{Op: isa.OpSt, Rb: 3, Ra: 15, Imm: 0},
				{Op: isa.OpHalt},
			},
		},
		{
			name: "trailing fallthrough without halt",
			prog: isa.Program{
				{Op: isa.OpLdi, Rd: 1, Imm: 7},
				{Op: isa.OpSt, Rb: 1, Ra: 15, Imm: 2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.prog.Validate(); err != nil {
				t.Fatalf("invalid case program: %v", err)
			}
			for _, bp := range []int64{0, 3} {
				memRef := make(Memory, bank)
				memCmp := make(Memory, bank)
				for i := range memRef {
					memRef[i] = isa.Word(i * 3)
					memCmp[i] = isa.Word(i * 3)
				}
				budget := int64(100)
				regsRef, statsRef, errRef := refRun(tc.prog, memRef, 0, bp, budget)
				regsCmp, statsCmp, errCmp := compiledRun(tc.prog, memCmp, 0, bp, budget)
				diffRuns(t, fmt.Sprintf("%s (bp=%d)", tc.name, bp),
					regsRef, regsCmp, statsRef, statsCmp, memRef, memCmp, errRef, errCmp)
			}
			if tc.check != nil {
				tc.check(t, Compile(isa.Predecode(tc.prog), CompileOptions{}))
			}
		})
	}
}

// TestCompileZeroLength pins the degenerate input: compiling an empty
// program must yield a chain whose Run halts immediately with zero Stats.
func TestCompileZeroLength(t *testing.T) {
	p := Compile(nil, CompileOptions{})
	if p.Len() != 0 || len(p.Ops()) != 0 || len(p.blocks) != 0 {
		t.Fatalf("empty program compiled to %d ops, %d blocks", len(p.Ops()), len(p.blocks))
	}
	c := CPU{Mem: make(Memory, 4)}
	failPC, err := p.Run(&c, 100)
	if err != nil || failPC != 0 {
		t.Fatalf("empty Run: failPC %d err %v", failPC, err)
	}
	if c.Stats != (Stats{}) {
		t.Fatalf("empty Run produced stats %+v", c.Stats)
	}
}

// TestBackendParse pins the flag spellings, the default resolution and the
// ablation order.
func TestBackendParse(t *testing.T) {
	for _, b := range append(Backends(), BackendDefault) {
		spelled := b.String()
		if b == BackendDefault {
			spelled = ""
		}
		got, err := ParseBackend(spelled)
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", spelled, got, err, b)
		}
	}
	if _, err := ParseBackend("jit"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
	if BackendDefault.Resolve() != BackendCompiled {
		t.Fatalf("default backend resolves to %v, want compiled", BackendDefault.Resolve())
	}
	if got := Backends(); len(got) != 3 || got[0] != BackendInterp || got[1] != BackendDecoded || got[2] != BackendCompiled {
		t.Fatalf("Backends() = %v", got)
	}
	if s := Backend(250).String(); s != "Backend(250)" {
		t.Fatalf("stray backend String() = %q", s)
	}
}
