// Package machine provides the shared execution substrate of the
// machine-class simulators: register files, bounds-checked data memories,
// the single-instruction step function that implements the ISA semantics,
// and the statistics every simulator reports. The per-class packages
// (internal/uniproc, internal/simd, internal/mimd, internal/spatial,
// internal/dataflow, internal/fabric) wire these pieces together according
// to the block counts and switch kinds of their taxonomy class.
package machine

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
)

// Stats aggregates what one simulation run did.
type Stats struct {
	// Cycles is the simulated wall-clock of the run (makespan).
	Cycles int64
	// Instructions counts executed (retired) instructions across all
	// processors.
	Instructions int64
	// ALUOps counts arithmetic/logic operations.
	ALUOps int64
	// MemReads and MemWrites count DP-DM traffic.
	MemReads, MemWrites int64
	// Messages counts DP-DP (and IP-IP) network words.
	Messages int64
	// Barriers counts completed synchronizations.
	Barriers int64
	// NetConflictCycles sums the cycles lost to interconnect contention.
	NetConflictCycles int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Instructions += other.Instructions
	s.ALUOps += other.ALUOps
	s.MemReads += other.MemReads
	s.MemWrites += other.MemWrites
	s.Messages += other.Messages
	s.Barriers += other.Barriers
	s.NetConflictCycles += other.NetConflictCycles
	if other.Cycles > s.Cycles {
		s.Cycles = other.Cycles
	}
}

// IPC is instructions per cycle, 0 when no cycles elapsed.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// ErrDeadline is returned when a run exceeds its cycle budget, which almost
// always means the guest program loops forever or deadlocks on RECV/SYNC.
var ErrDeadline = errors.New("machine: cycle budget exhausted (livelock or deadlock in guest program)")

// DefaultMaxCycles bounds runs that do not choose their own budget.
const DefaultMaxCycles = 10_000_000

// Memory is a bounds-checked word-addressed data memory (one DM bank).
type Memory []isa.Word

// NewMemory allocates a zeroed bank of the given number of words.
func NewMemory(words int) (Memory, error) {
	if words < 0 {
		return nil, fmt.Errorf("machine: memory size %d is negative", words)
	}
	return make(Memory, words), nil
}

// Load reads the word at addr.
func (m Memory) Load(addr isa.Word) (isa.Word, error) {
	if addr < 0 || addr >= isa.Word(len(m)) {
		return 0, fmt.Errorf("machine: load address %d outside bank of %d words", addr, len(m))
	}
	return m[addr], nil
}

// Store writes the word at addr.
func (m Memory) Store(addr, val isa.Word) error {
	if addr < 0 || addr >= isa.Word(len(m)) {
		return fmt.Errorf("machine: store address %d outside bank of %d words", addr, len(m))
	}
	m[addr] = val
	return nil
}

// CopyIn writes vals into the bank starting at base. The bounds check is
// phrased as a subtraction so a huge base cannot overflow base+len(vals)
// into an accepted negative value.
func (m Memory) CopyIn(base int, vals []isa.Word) error {
	if base < 0 || base > len(m) || len(vals) > len(m)-base {
		return fmt.Errorf("machine: copy of %d words at %d outside bank of %d words", len(vals), base, len(m))
	}
	copy(m[base:], vals)
	return nil
}

// CopyOut reads n words starting at base. Like CopyIn, the bounds check
// avoids the base+n overflow.
func (m Memory) CopyOut(base, n int) ([]isa.Word, error) {
	if base < 0 || n < 0 || base > len(m) || n > len(m)-base {
		return nil, fmt.Errorf("machine: read of %d words at %d outside bank of %d words", n, base, len(m))
	}
	out := make([]isa.Word, n)
	copy(out, m[base:base+n])
	return out, nil
}

// Regs is one data processor's register file.
type Regs [isa.NumRegs]isa.Word

// Env supplies the machine-specific behaviour of the memory, network and
// synchronization operations to Step. Machines leave callbacks nil for
// connection sites their class does not have; executing the corresponding
// instruction is then a guest error, which is exactly how an architecture
// without a DP-DP switch "cannot" communicate.
type Env struct {
	// Lane is the value OpLane loads: the processor or lane index.
	Lane isa.Word
	// Load and Store implement the DP-DM site.
	Load  func(addr isa.Word) (isa.Word, error)
	Store func(addr, val isa.Word) error
	// SendTo and RecvFrom implement the DP-DP site. RecvFrom may return
	// ErrWouldBlock to stall the processor without consuming the cycle.
	SendTo   func(peer int, val isa.Word) error
	RecvFrom func(peer int) (isa.Word, error)
	// Barrier implements OpSync; it may return ErrWouldBlock to stall.
	Barrier func() error
	// Tracer, when non-nil, receives the fine-grained events only Step
	// sees: memory reads/writes with their addresses and network
	// sends/receives with their peers. Simulators emit instruction-retire,
	// barrier and stall events at their loop level, where cycle timing is
	// known. Leave nil to disable tracing; the hooks then cost a nil check
	// and nothing else.
	Tracer obs.Tracer
	// Now is the issue cycle Step stamps on emitted events.
	Now int64
	// Track is the processor/lane/core index stamped on emitted events.
	Track int32
}

// ErrWouldBlock signals that a RECV or SYNC cannot complete this cycle; the
// simulator keeps the PC on the instruction and retries later.
var ErrWouldBlock = errors.New("machine: operation would block")

// Outcome is the control-flow result of one executed instruction.
type Outcome struct {
	// NextPC is the program counter after the instruction.
	NextPC int
	// Halted reports that the processor executed HALT.
	Halted bool
	// Blocked reports that the instruction could not complete (RECV/SYNC);
	// the PC did not advance and no work was done.
	Blocked bool
	// Mem reports that the instruction used the DP-DM switch.
	Mem bool
	// Comm reports that the instruction used the DP-DP network.
	Comm bool
}

// Step executes one instruction against a register file and an environment,
// implementing the ISA semantics shared by all instruction-flow simulators.
func Step(regs *Regs, pc int, ins isa.Instruction, env Env) (Outcome, error) {
	out := Outcome{NextPC: pc + 1}
	switch ins.Op {
	case isa.OpNop:
	case isa.OpHalt:
		out.Halted = true
	case isa.OpLdi:
		regs[ins.Rd] = isa.Word(ins.Imm)
	case isa.OpMov:
		regs[ins.Rd] = regs[ins.Ra]
	case isa.OpAdd:
		regs[ins.Rd] = regs[ins.Ra] + regs[ins.Rb]
	case isa.OpSub:
		regs[ins.Rd] = regs[ins.Ra] - regs[ins.Rb]
	case isa.OpMul:
		regs[ins.Rd] = regs[ins.Ra] * regs[ins.Rb]
	case isa.OpDiv:
		if regs[ins.Rb] == 0 {
			return out, fmt.Errorf("machine: division by zero at pc %d", pc)
		}
		regs[ins.Rd] = regs[ins.Ra] / regs[ins.Rb]
	case isa.OpRem:
		if regs[ins.Rb] == 0 {
			return out, fmt.Errorf("machine: remainder by zero at pc %d", pc)
		}
		regs[ins.Rd] = regs[ins.Ra] % regs[ins.Rb]
	case isa.OpAnd:
		regs[ins.Rd] = regs[ins.Ra] & regs[ins.Rb]
	case isa.OpOr:
		regs[ins.Rd] = regs[ins.Ra] | regs[ins.Rb]
	case isa.OpXor:
		regs[ins.Rd] = regs[ins.Ra] ^ regs[ins.Rb]
	case isa.OpShl:
		regs[ins.Rd] = regs[ins.Ra] << uint(regs[ins.Rb]&63)
	case isa.OpShr:
		regs[ins.Rd] = regs[ins.Ra] >> uint(regs[ins.Rb]&63)
	case isa.OpSlt:
		regs[ins.Rd] = boolWord(regs[ins.Ra] < regs[ins.Rb])
	case isa.OpSeq:
		regs[ins.Rd] = boolWord(regs[ins.Ra] == regs[ins.Rb])
	case isa.OpMin:
		regs[ins.Rd] = minWord(regs[ins.Ra], regs[ins.Rb])
	case isa.OpMax:
		regs[ins.Rd] = maxWord(regs[ins.Ra], regs[ins.Rb])
	case isa.OpAddi:
		regs[ins.Rd] = regs[ins.Ra] + isa.Word(ins.Imm)
	case isa.OpMuli:
		regs[ins.Rd] = regs[ins.Ra] * isa.Word(ins.Imm)
	case isa.OpLd:
		if env.Load == nil {
			return out, fmt.Errorf("machine: no DP-DM path for load at pc %d", pc)
		}
		addr := regs[ins.Ra] + isa.Word(ins.Imm)
		v, err := env.Load(addr)
		if err != nil {
			return out, err
		}
		regs[ins.Rd] = v
		out.Mem = true
		if env.Tracer != nil {
			env.Tracer.Emit(obs.Event{Kind: obs.KindMemRead, Track: env.Track, Cycle: env.Now, Arg: int64(addr)})
		}
	case isa.OpSt:
		if env.Store == nil {
			return out, fmt.Errorf("machine: no DP-DM path for store at pc %d", pc)
		}
		addr := regs[ins.Ra] + isa.Word(ins.Imm)
		if err := env.Store(addr, regs[ins.Rb]); err != nil {
			return out, err
		}
		out.Mem = true
		if env.Tracer != nil {
			env.Tracer.Emit(obs.Event{Kind: obs.KindMemWrite, Track: env.Track, Cycle: env.Now, Arg: int64(addr)})
		}
	case isa.OpBeq:
		if regs[ins.Ra] == regs[ins.Rb] {
			out.NextPC = pc + 1 + int(ins.Imm)
		}
	case isa.OpBne:
		if regs[ins.Ra] != regs[ins.Rb] {
			out.NextPC = pc + 1 + int(ins.Imm)
		}
	case isa.OpBlt:
		if regs[ins.Ra] < regs[ins.Rb] {
			out.NextPC = pc + 1 + int(ins.Imm)
		}
	case isa.OpBge:
		if regs[ins.Ra] >= regs[ins.Rb] {
			out.NextPC = pc + 1 + int(ins.Imm)
		}
	case isa.OpJmp:
		out.NextPC = pc + 1 + int(ins.Imm)
	case isa.OpSend:
		if env.SendTo == nil {
			return out, fmt.Errorf("machine: no DP-DP network for send at pc %d (this class has DP-DP: none)", pc)
		}
		if err := env.SendTo(int(regs[ins.Rb]), regs[ins.Ra]); err != nil {
			return out, err
		}
		out.Comm = true
		if env.Tracer != nil {
			env.Tracer.Emit(obs.Event{Kind: obs.KindSend, Track: env.Track, Cycle: env.Now, Arg: int64(regs[ins.Rb])})
		}
	case isa.OpRecv:
		if env.RecvFrom == nil {
			return out, fmt.Errorf("machine: no DP-DP network for recv at pc %d (this class has DP-DP: none)", pc)
		}
		peer := int(regs[ins.Rb])
		v, err := env.RecvFrom(peer)
		if errors.Is(err, ErrWouldBlock) {
			out.NextPC = pc
			out.Blocked = true
			return out, nil
		}
		if err != nil {
			return out, err
		}
		regs[ins.Rd] = v
		out.Comm = true
		if env.Tracer != nil {
			env.Tracer.Emit(obs.Event{Kind: obs.KindRecv, Track: env.Track, Cycle: env.Now, Arg: int64(peer)})
		}
	case isa.OpSync:
		if env.Barrier == nil {
			return out, fmt.Errorf("machine: no barrier support at pc %d", pc)
		}
		if err := env.Barrier(); errors.Is(err, ErrWouldBlock) {
			out.NextPC = pc
			out.Blocked = true
			return out, nil
		} else if err != nil {
			return out, err
		}
	case isa.OpLane:
		regs[ins.Rd] = env.Lane
	default:
		return out, fmt.Errorf("machine: unimplemented opcode %v at pc %d", ins.Op, pc)
	}
	return out, nil
}

// IsALU reports whether the op counts as an ALU operation in Stats.
func IsALU(op isa.Op) bool { return op.IsALU() }

func boolWord(b bool) isa.Word {
	if b {
		return 1
	}
	return 0
}

func minWord(a, b isa.Word) isa.Word {
	if a < b {
		return a
	}
	return b
}

func maxWord(a, b isa.Word) isa.Word {
	if a > b {
		return a
	}
	return b
}
