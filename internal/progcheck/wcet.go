package progcheck

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/report"
)

// This file computes the worst-case cycle/instruction budget: Tarjan SCC
// loop discovery (recursively, so nests decompose innermost-first), trip
// bounds inferred from the induction pattern (a single counter stepped by
// one addi — or doubled by add r,r,r — tested against a loop-invariant
// bound), and a longest path over the condensed DAG. Loops with no
// inferable bound make the whole verdict "unbounded" with a reason; the
// bound itself is a sound over-approximation the differential pin test
// (bounded programs must finish within it on the interp backend) keeps
// honest.

// costCap saturates cost arithmetic far below int64 overflow.
const costCap = int64(1) << 60

func satAddC(a, b int64) int64 {
	if a > costCap-b {
		return costCap
	}
	return a + b
}

func satMulC(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > costCap/b {
		return costCap
	}
	return a * b
}

// wcetCtx carries the immutable inputs of one budget computation.
type wcetCtx struct {
	dec    isa.DecodedProgram
	g      *isa.CFG
	st     *absResult
	t      Target
	cycles []int64   // static cycle cost per block
	instrs []int64   // instruction count per block
	preds  [][]int32 // global predecessor lists
	loops  int
}

// computeBudget derives the Report budget and its findings.
func computeBudget(dec isa.DecodedProgram, g *isa.CFG, reach []bool, st *absResult, t Target, r *Report) {
	nb := len(g.Blocks)
	w := &wcetCtx{dec: dec, g: g, st: st, t: t,
		cycles: make([]int64, nb), instrs: make([]int64, nb), preds: make([][]int32, nb)}
	comm := false
	for b := 0; b < nb; b++ {
		blk := &g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			d := &dec[pc]
			w.cycles[b]++
			if d.IsMemory() {
				w.cycles[b] += t.MemLatency
			}
			if st.visited[b] && (d.Op == isa.OpRecv || d.Op == isa.OpSync) {
				comm = true
			}
		}
		w.instrs[b] = int64(blk.End - blk.Start)
		var succs [2]int32
		for _, s := range blk.Succs(succs[:0]) {
			w.preds[s] = append(w.preds[s], int32(b))
		}
	}

	member := make([]bool, nb)
	for b := 0; b < nb; b++ {
		member[b] = st.visited[b]
	}
	cyc, ins, ok, reason := w.solve(member, 0, -1)
	r.Loops = w.loops
	if !ok {
		r.Budget = Budget{Bounded: false, Reason: reason, CommStalls: comm}
		r.add(CheckBudget, report.SevWarn, -1, -1, "execution is not provably bounded: "+reason)
		return
	}
	r.Budget = Budget{Bounded: true, MaxCycles: cyc, MaxInstructions: ins, CommStalls: comm}
	if cyc > t.MaxCycles {
		r.add(CheckBudget, report.SevWarn, -1, -1,
			fmt.Sprintf("worst-case cycle bound %d exceeds the run budget of %d cycles", cyc, t.MaxCycles))
	}
}

// penalty returns the cycle penalty of one edge of block b: taken branches
// whose target is not the fall-through pc pay the branch penalty.
func (w *wcetCtx) penalty(b int32, taken bool) int64 {
	if !taken {
		return 0
	}
	d := &w.dec[w.g.Blocks[b].End-1]
	if d.IsBranch() && d.Target != w.g.Blocks[b].End {
		return w.t.BranchPenalty
	}
	return 0
}

// eachSucc visits block b's in-region successors (fall first, then taken),
// skipping edges into skipTo (used to cut a loop's back edges).
func (w *wcetCtx) eachSucc(b int32, member []bool, skipTo int32, fn func(to int32, pen int64)) {
	blk := &w.g.Blocks[b]
	if blk.Fall >= 0 && member[blk.Fall] && blk.Fall != skipTo {
		fn(blk.Fall, w.penalty(b, false))
	}
	if blk.Taken >= 0 && member[blk.Taken] && blk.Taken != skipTo && blk.Taken != blk.Fall {
		fn(blk.Taken, w.penalty(b, true))
	}
}

// tarjan computes SCCs of the member-induced subgraph with edges into
// skipTo removed. comps come out in reverse topological order.
func (w *wcetCtx) tarjan(member []bool, skipTo int32) (comp []int32, comps [][]int32) {
	nb := len(w.g.Blocks)
	comp = make([]int32, nb)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, nb)
	low := make([]int32, nb)
	onStack := make([]bool, nb)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var next int32
	var strong func(v int32)
	strong = func(v int32) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		w.eachSucc(v, member, skipTo, func(to int32, _ int64) {
			if index[to] < 0 {
				strong(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		})
		if low[v] == index[v] {
			var members []int32
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				comp[u] = int32(len(comps))
				members = append(members, u)
				if u == v {
					break
				}
			}
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			comps = append(comps, members)
		}
	}
	for v := 0; v < nb; v++ {
		if member[v] && index[v] < 0 {
			strong(int32(v))
		}
	}
	return comp, comps
}

// solve bounds the longest execution path through the member-induced
// subgraph entered at entry (with edges into skipTo removed — the caller
// cuts back edges when solving a loop body). It returns cycle and
// instruction bounds, or ok=false with a reason.
func (w *wcetCtx) solve(member []bool, entry, skipTo int32) (cyc, ins int64, ok bool, reason string) {
	if !member[entry] {
		return 0, 0, true, ""
	}
	comp, comps := w.tarjan(member, skipTo)

	// Per-SCC weights, topologically (comps is reverse topological, so
	// walk it backwards).
	weightC := make([]int64, len(comps))
	weightI := make([]int64, len(comps))
	for ci := len(comps) - 1; ci >= 0; ci-- {
		members := comps[ci]
		if len(members) == 1 && !w.hasSelfEdge(members[0], member, skipTo) {
			b := members[0]
			weightC[ci] = w.cycles[b]
			weightI[ci] = w.instrs[b]
			continue
		}
		lc, li, lok, lreason := w.solveLoop(members, member, entry, skipTo)
		if !lok {
			return 0, 0, false, lreason
		}
		weightC[ci] = lc
		weightI[ci] = li
	}

	// Longest path over the condensation from entry's component.
	distC := make([]int64, len(comps))
	distI := make([]int64, len(comps))
	seen := make([]bool, len(comps))
	ec := comp[entry]
	distC[ec] = weightC[ec]
	distI[ec] = weightI[ec]
	seen[ec] = true
	for ci := len(comps) - 1; ci >= 0; ci-- {
		if !seen[ci] {
			continue
		}
		for _, b := range comps[ci] {
			w.eachSucc(b, member, skipTo, func(to int32, pen int64) {
				tc := comp[to]
				if tc == int32(ci) {
					return
				}
				dc := satAddC(satAddC(distC[ci], pen), weightC[tc])
				di := satAddC(distI[ci], weightI[tc])
				if !seen[tc] {
					distC[tc], distI[tc], seen[tc] = dc, di, true
				} else {
					distC[tc] = max64(distC[tc], dc)
					distI[tc] = max64(distI[tc], di)
				}
			})
		}
	}
	for ci := range comps {
		if seen[ci] {
			cyc = max64(cyc, distC[ci])
			ins = max64(ins, distI[ci])
		}
	}
	// A branch that exits the program (target == program end) pays its
	// penalty after the last block; one slack term keeps the bound sound.
	cyc = satAddC(cyc, w.exitPenalty(member))
	return cyc, ins, true, ""
}

// hasSelfEdge reports whether b has an edge to itself in the subgraph.
func (w *wcetCtx) hasSelfEdge(b int32, member []bool, skipTo int32) bool {
	self := false
	w.eachSucc(b, member, skipTo, func(to int32, _ int64) {
		if to == b {
			self = true
		}
	})
	return self
}

// exitPenalty is the worst penalty a program-exiting branch can pay.
func (w *wcetCtx) exitPenalty(member []bool) int64 {
	for b := range w.g.Blocks {
		if !member[b] || !w.g.Blocks[b].FallsOff {
			continue
		}
		d := &w.dec[w.g.Blocks[b].End-1]
		if d.IsBranch() && d.Target != w.g.Blocks[b].End {
			return w.t.BranchPenalty
		}
	}
	return 0
}

// solveLoop bounds one loop SCC: find its unique header and latch, infer a
// trip bound, recursively solve one iteration's body, and multiply.
func (w *wcetCtx) solveLoop(members []int32, member []bool, entry, skipTo int32) (cyc, ins int64, ok bool, reason string) {
	w.loops++
	inSCC := make([]bool, len(w.g.Blocks))
	for _, b := range members {
		inSCC[b] = true
	}
	// Header: the unique block entered from outside the SCC (the region
	// entry counts as externally entered).
	var headers []int32
	for _, b := range members {
		external := b == entry
		for _, p := range w.preds[b] {
			if member[p] && !inSCC[p] && w.edgeExists(p, b, member, skipTo) {
				external = true
			}
		}
		if external {
			headers = append(headers, b)
		}
	}
	if len(headers) != 1 {
		return 0, 0, false, fmt.Sprintf("irreducible loop over blocks %v (%d entry blocks)", members, len(headers))
	}
	header := headers[0]
	// Latches: in-SCC sources of back edges to the header.
	var latches []int32
	for _, b := range members {
		if w.edgeExists(b, header, member, skipTo) {
			latches = append(latches, b)
		}
	}
	if len(latches) != 1 {
		return 0, 0, false, fmt.Sprintf("loop at block %d has %d back edges (need exactly one for trip inference)", header, len(latches))
	}
	latch := latches[0]

	trips, treason := w.tripBound(inSCC, members, header, latch, member, skipTo)
	if trips < 0 {
		return 0, 0, false, treason
	}
	// One iteration: the loop body with back edges to the header cut.
	bodyMember := make([]bool, len(w.g.Blocks))
	for _, b := range members {
		bodyMember[b] = true
	}
	bc, bi, bok, breason := w.solve(bodyMember, header, header)
	if !bok {
		return 0, 0, false, breason
	}
	backPen := int64(0)
	blk := &w.g.Blocks[latch]
	if blk.Taken == header {
		backPen = w.penalty(latch, true)
	}
	cyc = satMulC(trips, satAddC(bc, backPen))
	ins = satMulC(trips, bi)
	return cyc, ins, true, ""
}

// edgeExists reports a subgraph edge from b to target.
func (w *wcetCtx) edgeExists(b, target int32, member []bool, skipTo int32) bool {
	found := false
	w.eachSucc(b, member, skipTo, func(to int32, _ int64) {
		if to == target {
			found = true
		}
	})
	return found
}
