package progcheck

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// checkBounded asserts the program gets a bounded budget and returns it.
func checkBounded(t *testing.T, src string) Budget {
	t.Helper()
	r := Check(isa.MustAssemble(src), Target{MemWords: 64})
	if !r.Budget.Bounded {
		t.Fatalf("unbounded: %s\n%s", r.Budget.Reason, r.Text())
	}
	return r.Budget
}

// checkUnbounded asserts the verdict is unbounded for the given reason.
func checkUnbounded(t *testing.T, src, reason string) {
	t.Helper()
	r := Check(isa.MustAssemble(src), Target{MemWords: 64})
	if r.Budget.Bounded {
		t.Fatalf("bounded (<= %d cycles), want unbounded with %q", r.Budget.MaxCycles, reason)
	}
	if !strings.Contains(r.Budget.Reason, reason) {
		t.Fatalf("reason = %q, want substring %q", r.Budget.Reason, reason)
	}
}

func TestTripDownCountingGE(t *testing.T) {
	// Stays while ctr >= bound with a negative stride: the relGE arm.
	b := checkBounded(t, `
        ldi  r1, 8
        ldi  r2, 1
loop:   addi r1, r1, -1
        bge  r1, r2, loop
        halt
`)
	// Counter 8 -> 0, at most 8 + slack header executions.
	if b.MaxCycles < 8 || b.MaxCycles > 64 {
		t.Errorf("down-counting bound = %d cycles, want a small finite bound", b.MaxCycles)
	}
}

func TestTripMirroredGT(t *testing.T) {
	// blt bound, ctr stays while bound < ctr: the counter sits on the rb
	// side, so the relation must mirror (relLT -> relGT).
	checkBounded(t, `
        ldi  r1, 8
        ldi  r2, 0
loop:   addi r1, r1, -1
        blt  r2, r1, loop
        halt
`)
}

func TestTripFallthroughStays(t *testing.T) {
	// The taken edge exits, so the stay relation is the negation of the
	// branch: bge exits => relLT stays; bne exits => relEQ stays (2 trips).
	checkBounded(t, `
        ldi  r1, 0
        ldi  r2, 8
loop:   addi r1, r1, 1
        bge  r1, r2, done
        jmp  loop
done:   halt
`)
	b := checkBounded(t, `
        ldi  r1, 0
        ldi  r2, 0
loop:   addi r1, r1, 1
        bne  r1, r2, done
        jmp  loop
done:   halt
`)
	// Stays only while equal: one step breaks equality, so the loop body
	// runs at most twice.
	if b.MaxCycles > 32 {
		t.Errorf("equality-stay bound = %d cycles, want <= 32", b.MaxCycles)
	}
}

func TestTripEqualityExit(t *testing.T) {
	// beq exits (stay relation NE): needs exact start/bound and a stride
	// that lands on the bound.
	checkBounded(t, `
        ldi  r1, 0
        ldi  r2, 8
loop:   addi r1, r1, 2
        beq  r1, r2, done
        jmp  loop
done:   halt
`)
	// Negative stride toward a lower bound.
	checkBounded(t, `
        ldi  r1, 8
        ldi  r2, 0
loop:   addi r1, r1, -2
        beq  r1, r2, done
        jmp  loop
done:   halt
`)
	// A stride that steps over the bound never exits.
	checkUnbounded(t, `
        ldi  r1, 0
        ldi  r2, 8
loop:   addi r1, r1, 3
        beq  r1, r2, done
        jmp  loop
done:   halt
`, "steps over its bound")
}

func TestTripDoublingCounter(t *testing.T) {
	// add r,r,r doubles: log-bounded while ctr < bound.
	b := checkBounded(t, `
        ldi  r1, 1
        ldi  r2, 64
loop:   add  r1, r1, r1
        blt  r1, r2, loop
        halt
`)
	if b.MaxCycles > 64 {
		t.Errorf("doubling bound = %d cycles, want logarithmic (<= 64)", b.MaxCycles)
	}
	// Starting at zero never grows.
	checkUnbounded(t, `
        ldi  r1, 0
        ldi  r2, 64
loop:   add  r1, r1, r1
        blt  r1, r2, loop
        halt
`, "never grows")
	// Equality exits cannot bound a doubling counter.
	checkUnbounded(t, `
        ldi  r1, 1
        ldi  r2, 64
loop:   add  r1, r1, r1
        beq  r1, r2, done
        jmp  loop
done:   halt
`, "equality exit on doubling counter")
	// Neither can a lower bound.
	checkUnbounded(t, `
        ldi  r1, 8
        ldi  r2, 1
loop:   add  r1, r1, r1
        bge  r1, r2, loop
        halt
`, "doubling counter")
	// Equality stay-condition: a doubling counter stuck at zero satisfies
	// `ctr == 0` forever (here both registers start at the machine zero
	// state, so the loop never exits).
	checkUnbounded(t, `
loop:   add  r1, r1, r1
        beq  r1, r2, loop
        halt
`, "possibly-zero bound")
	// With a provably nonzero bound the stuck case is impossible: one
	// doubling step breaks the equality, so two trips still bound it.
	b = checkBounded(t, `
        ldi  r1, 5
        ldi  r2, 5
loop:   add  r1, r1, r1
        beq  r1, r2, loop
        halt
`)
	if b.MaxCycles > 32 {
		t.Errorf("nonzero-bound equality stay = %d cycles, want <= 32", b.MaxCycles)
	}
}

func TestTripStrideFightsBound(t *testing.T) {
	// Counting up against a lower bound (and down against an upper bound)
	// never reaches the exit.
	checkUnbounded(t, `
        ldi  r1, 8
        ldi  r2, 1
loop:   addi r1, r1, 1
        bge  r1, r2, loop
        halt
`, "never reaches its lower bound")
	checkUnbounded(t, `
        ldi  r1, 0
        ldi  r2, 8
loop:   addi r1, r1, -1
        blt  r1, r2, loop
        halt
`, "never reaches its upper bound")
}

func TestTripStartPastBound(t *testing.T) {
	// Counter starts beyond the bound: the loop body still runs once
	// (do-while shape), so the bound is small but nonzero.
	b := checkBounded(t, `
        ldi  r1, 10
        ldi  r2, 5
loop:   addi r1, r1, 1
        blt  r1, r2, loop
        halt
`)
	if b.MaxCycles > 16 {
		t.Errorf("start-past-bound = %d cycles, want a tiny bound", b.MaxCycles)
	}
}

func TestTripLoopAtProgramEntry(t *testing.T) {
	// The loop header is the program's first block: the entry state is the
	// machine zero state (all registers zero), so the bound register reads
	// as the singleton 0 and the loop exits immediately.
	r := Check(isa.MustAssemble(`
loop:   addi r1, r1, 1
        blt  r1, r2, loop
        halt
`), Target{MemWords: 64})
	if !r.Budget.Bounded {
		t.Fatalf("entry-header loop unbounded: %s", r.Budget.Reason)
	}
}

func TestTripEnteredByJump(t *testing.T) {
	// The header's outside predecessor arrives on a taken edge, not a
	// fallthrough: the entry state must flow across it.
	checkBounded(t, `
        ldi  r1, 0
        ldi  r2, 8
        jmp  loop
        halt
loop:   addi r1, r1, 1
        blt  r1, r2, loop
        halt
`)
}

func TestSaturatingCostArithmetic(t *testing.T) {
	if got := satAddC(costCap-1, 5); got != costCap {
		t.Errorf("satAddC near cap = %d, want %d", got, costCap)
	}
	if got := satAddC(1, 2); got != 3 {
		t.Errorf("satAddC(1,2) = %d", got)
	}
	if got := satMulC(costCap/2, 4); got != costCap {
		t.Errorf("satMulC overflow = %d, want %d", got, costCap)
	}
	if got := satMulC(0, 99); got != 0 {
		t.Errorf("satMulC(0,99) = %d", got)
	}
	if got := satMulC(6, 7); got != 42 {
		t.Errorf("satMulC(6,7) = %d", got)
	}
}

func TestNonnegDiv(t *testing.T) {
	if got := nonnegDiv(-3, 2); got != 0 {
		t.Errorf("nonnegDiv(-3,2) = %d, want 0", got)
	}
	if got := nonnegDiv(7, 2); got != 3 {
		t.Errorf("nonnegDiv(7,2) = %d, want 3", got)
	}
}

func TestRelationHelpers(t *testing.T) {
	negPairs := [][2]stayRel{
		{relEQ, relNE}, {relNE, relEQ},
		{relLT, relGE}, {relGE, relLT},
		{relLE, relGT}, {relGT, relLE},
	}
	for _, p := range negPairs {
		if got := negateRel(p[0]); got != p[1] {
			t.Errorf("negateRel(%d) = %d, want %d", p[0], got, p[1])
		}
	}
	mirPairs := [][2]stayRel{
		{relLT, relGT}, {relGT, relLT},
		{relLE, relGE}, {relGE, relLE},
		{relEQ, relEQ}, {relNE, relNE},
	}
	for _, p := range mirPairs {
		if got := mirrorRel(p[0]); got != p[1] {
			t.Errorf("mirrorRel(%d) = %d, want %d", p[0], got, p[1])
		}
	}
}
