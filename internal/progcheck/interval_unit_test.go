package progcheck

import (
	"testing"

	"repro/internal/isa"
)

func TestIntervalOverflowWidensToTop(t *testing.T) {
	big := itv{posInf - 2, posInf - 1}
	if got := addII(big, itv{10, 10}); got != topItv {
		t.Errorf("addII overflow = %v, want top", got)
	}
	if got := subII(itv{negInf + 2, negInf + 3}, itv{10, 10}); got != topItv {
		t.Errorf("subII overflow = %v, want top", got)
	}
	if got := mulII(itv{1 << 40, 1 << 40}, itv{1 << 40, 1 << 40}); got != topItv {
		t.Errorf("mulII overflow = %v, want top", got)
	}
	if got := addII(topItv, itv{1, 1}); got != topItv {
		t.Errorf("addII(top, x) = %v, want top", got)
	}
}

func TestOverflowHelpers(t *testing.T) {
	if _, ok := addOv(posInf, 1); ok {
		t.Error("addOv(max, 1) did not overflow")
	}
	if _, ok := addOv(negInf+1, -2); ok {
		t.Error("addOv(min+1, -2) did not overflow")
	}
	if v, ok := addOv(3, 4); !ok || v != 7 {
		t.Errorf("addOv(3,4) = %d,%v", v, ok)
	}
	if _, ok := mulOv(1<<40, 1<<40); ok {
		t.Error("mulOv(2^40, 2^40) did not overflow")
	}
	if v, ok := mulOv(0, 99); !ok || v != 0 {
		t.Errorf("mulOv(0,99) = %d,%v", v, ok)
	}
	if v, ok := subOv(5, 2); !ok || v != 3 {
		t.Errorf("subOv(5,2) = %d,%v", v, ok)
	}
}

func TestThresholdSearch(t *testing.T) {
	ts := []int64{0, 4, 16, 64}
	cases := []struct{ v, le, ge int64 }{
		{-5, negInf, 0},
		{0, 0, 0},
		{5, 4, 16},
		{64, 64, 64},
		{100, 64, posInf},
	}
	for _, c := range cases {
		if got := thresholdLE(ts, c.v); got != c.le {
			t.Errorf("thresholdLE(%d) = %d, want %d", c.v, got, c.le)
		}
		if got := thresholdGE(ts, c.v); got != c.ge {
			t.Errorf("thresholdGE(%d) = %d, want %d", c.v, got, c.ge)
		}
	}
}

func TestWidenState(t *testing.T) {
	ts := []int64{0, 8, 32}
	var old, next astate
	for i := range old {
		old[i] = itv{0, 4}
		next[i] = itv{0, 4}
	}
	next[1] = itv{-3, 9}  // both endpoints moved
	next[2] = itv{0, 100} // hi past the largest threshold

	soft := widenState(&old, &next, ts, false)
	if soft[0] != (itv{0, 4}) {
		t.Errorf("unchanged register widened: %v", soft[0])
	}
	if soft[1] != (itv{negInf, 32}) {
		t.Errorf("soft widen r1 = %v, want [-inf, 32]", soft[1])
	}
	if soft[2] != (itv{0, posInf}) {
		t.Errorf("soft widen r2 = %v, want [0, +inf]", soft[2])
	}

	hard := widenState(&old, &next, ts, true)
	if hard[1] != (itv{negInf, posInf}) {
		t.Errorf("hard widen r1 = %v, want top", hard[1])
	}
	if hard[0] != (itv{0, 4}) {
		t.Errorf("hard widen unchanged r0 = %v", hard[0])
	}
}

func TestSettleTopClosesVisited(t *testing.T) {
	// After the widening backstop, blocks whose incoming edges looked
	// infeasible under the pre-backstop states must rejoin the analysis:
	// with every visited block at top, no edge can be refined away, so
	// visited must close over successor edges (here the chain 0 -> 1 -> 2).
	g := &isa.CFG{Blocks: []isa.BasicBlock{
		{Fall: 1, Taken: -1},
		{Fall: 2, Taken: -1},
		{Fall: -1, Taken: -1},
		{Fall: -1, Taken: -1}, // disconnected: must stay unvisited
	}}
	st := &absResult{in: make([]astate, 4), visited: make([]bool, 4)}
	st.visited[0] = true
	for r := range st.in[0] {
		st.in[0][r] = topItv
	}
	reach := []bool{true, true, true, true}
	settleTop(st, g, reach)
	for b := 0; b < 3; b++ {
		if !st.visited[b] {
			t.Fatalf("block %d not visited after settle", b)
		}
		for r := range st.in[b] {
			if st.in[b][r] != topItv {
				t.Errorf("block %d r%d = %v, want top", b, r, st.in[b][r])
			}
		}
	}
	if st.visited[3] {
		t.Error("disconnected block 3 marked visited")
	}
}

func TestIntervalString(t *testing.T) {
	cases := []struct {
		v    itv
		want string
	}{
		{itv{3, 3}, "3"},
		{itv{0, 8}, "0..8"},
		{topItv, "-inf..+inf"},
		{itv{negInf, 5}, "-inf..5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}
