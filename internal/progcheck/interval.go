package progcheck

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
)

// This file is the abstract interpreter: an interval domain over the 16
// registers, a transfer function per op, branch-edge refinement, and a
// widening fixpoint whose thresholds are the program's own immediates — so
// counted loops stabilize at their literal bounds (`ldi r2, m` makes m a
// threshold, and the exit test's refinement then trims the counter to
// [init, m-1] inside the loop body) instead of widening to infinity.

// negInf/posInf are the unbounded interval endpoints. Arithmetic that
// could overflow int64 (where the concrete machines wrap) goes to top, so
// the marker values are never produced by saturation-by-accident.
const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// itv is the closed interval [lo, hi] of possible register values.
type itv struct{ lo, hi int64 }

var topItv = itv{negInf, posInf}

func (v itv) String() string {
	lo, hi := "-inf", "+inf"
	if v.lo != negInf {
		lo = fmt.Sprintf("%d", v.lo)
	}
	if v.hi != posInf {
		hi = fmt.Sprintf("%d", v.hi)
	}
	if lo == hi {
		return lo
	}
	return lo + ".." + hi
}

func (v itv) singleton() bool { return v.lo == v.hi }
func (v itv) empty() bool     { return v.lo > v.hi }

// joinII is the interval union (smallest interval containing both).
func joinII(a, b itv) itv {
	return itv{min64(a.lo, b.lo), max64(a.hi, b.hi)}
}

// meetII is the interval intersection; may be empty.
func meetII(a, b itv) itv {
	return itv{max64(a.lo, b.lo), min64(a.hi, b.hi)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// addOv adds with overflow detection.
func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// mulOv multiplies with overflow detection.
func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// bounded reports both endpoints are finite (safe for endpoint arithmetic).
func (v itv) bounded() bool { return v.lo != negInf && v.hi != posInf }

// addII adds two intervals; any endpoint overflow (the machines wrap)
// widens to top.
func addII(a, b itv) itv {
	if !a.bounded() || !b.bounded() {
		return topItv
	}
	lo, ok1 := addOv(a.lo, b.lo)
	hi, ok2 := addOv(a.hi, b.hi)
	if !ok1 || !ok2 {
		return topItv
	}
	return itv{lo, hi}
}

// subII subtracts b from a with the same top-on-overflow rule.
func subII(a, b itv) itv {
	if !a.bounded() || !b.bounded() {
		return topItv
	}
	lo, ok1 := addOv(a.lo, -b.hi)
	hi, ok2 := addOv(a.hi, -b.lo)
	if !ok1 || !ok2 {
		return topItv
	}
	return itv{lo, hi}
}

// mulII multiplies via the four corner products.
func mulII(a, b itv) itv {
	if !a.bounded() || !b.bounded() {
		return topItv
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, x := range [2]int64{a.lo, a.hi} {
		for _, y := range [2]int64{b.lo, b.hi} {
			p, ok := mulOv(x, y)
			if !ok {
				return topItv
			}
			lo = min64(lo, p)
			hi = max64(hi, p)
		}
	}
	return itv{lo, hi}
}

// astate is the abstract register file.
type astate [isa.NumRegs]itv

// zeroState is the machine-entry state: every register zero-initialized.
func zeroState() astate {
	var s astate
	for i := range s {
		s[i] = itv{0, 0}
	}
	return s
}

func joinState(a, b *astate) astate {
	var r astate
	for i := range r {
		r[i] = joinII(a[i], b[i])
	}
	return r
}

// transfer applies one op's abstract semantics to the state in place.
// Ops with no interval semantics (division, bitwise, shifts — the machines
// wrap and fault in ways intervals cannot track precisely) widen their
// destination to top, which is always sound.
func transfer(d *isa.DecodedOp, s *astate, t Target) {
	switch d.Op {
	case isa.OpNop, isa.OpHalt, isa.OpSt, isa.OpSend, isa.OpSync,
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpJmp:
		// No register writes.
	case isa.OpLdi:
		s[d.Rd] = itv{d.Imm, d.Imm}
	case isa.OpMov:
		s[d.Rd] = s[d.Ra]
	case isa.OpAdd:
		s[d.Rd] = addII(s[d.Ra], s[d.Rb])
	case isa.OpSub:
		s[d.Rd] = subII(s[d.Ra], s[d.Rb])
	case isa.OpMul:
		s[d.Rd] = mulII(s[d.Ra], s[d.Rb])
	case isa.OpAddi:
		s[d.Rd] = addII(s[d.Ra], itv{d.Imm, d.Imm})
	case isa.OpMuli:
		s[d.Rd] = mulII(s[d.Ra], itv{d.Imm, d.Imm})
	case isa.OpSlt:
		s[d.Rd] = cmpItv(s[d.Ra].hi < s[d.Rb].lo, s[d.Ra].lo >= s[d.Rb].hi)
	case isa.OpSeq:
		a, b := s[d.Ra], s[d.Rb]
		s[d.Rd] = cmpItv(a.singleton() && b.singleton() && a.lo == b.lo, a.hi < b.lo || b.hi < a.lo)
	case isa.OpMin:
		s[d.Rd] = itv{min64(s[d.Ra].lo, s[d.Rb].lo), min64(s[d.Ra].hi, s[d.Rb].hi)}
	case isa.OpMax:
		s[d.Rd] = itv{max64(s[d.Ra].lo, s[d.Rb].lo), max64(s[d.Ra].hi, s[d.Rb].hi)}
	case isa.OpLane:
		s[d.Rd] = itv{0, int64(t.Procs) - 1}
	case isa.OpLd, isa.OpRecv,
		isa.OpDiv, isa.OpRem, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr:
		s[d.Rd] = topItv
	default:
		if d.Op.WritesRd() {
			s[d.Rd] = topItv
		}
	}
}

// cmpItv builds the {0,1} interval of a comparison: [1,1] when provably
// true, [0,0] when provably false, [0,1] otherwise.
func cmpItv(provablyTrue, provablyFalse bool) itv {
	switch {
	case provablyTrue:
		return itv{1, 1}
	case provablyFalse:
		return itv{0, 0}
	default:
		return itv{0, 1}
	}
}

// refine narrows the state along one edge of a conditional branch
// `op ra, rb`: taken means the condition held. It reports false when the
// edge is infeasible under the current state (empty refinement).
func refine(op isa.Op, taken bool, s *astate, ra, rb uint8) bool {
	a, b := s[ra], s[rb]
	eq := (op == isa.OpBeq && taken) || (op == isa.OpBne && !taken)
	ne := (op == isa.OpBeq && !taken) || (op == isa.OpBne && taken)
	lt := (op == isa.OpBlt && taken) || (op == isa.OpBge && !taken)
	ge := (op == isa.OpBge && taken) || (op == isa.OpBlt && !taken)
	switch {
	case eq:
		m := meetII(a, b)
		if m.empty() {
			return false
		}
		s[ra], s[rb] = m, m
	case ne:
		a = trimNE(a, b)
		b = trimNE(b, a)
		if a.empty() || b.empty() {
			return false
		}
		s[ra], s[rb] = a, b
	case lt:
		// a < b: a.hi <= b.hi-1, b.lo >= a.lo+1.
		if b.hi != posInf {
			a.hi = min64(a.hi, b.hi-1)
		}
		if a.lo != negInf {
			b.lo = max64(b.lo, a.lo+1)
		}
		if a.empty() || b.empty() {
			return false
		}
		s[ra], s[rb] = a, b
	case ge:
		// a >= b: a.lo >= b.lo, b.hi <= a.hi.
		a.lo = max64(a.lo, b.lo)
		b.hi = min64(b.hi, a.hi)
		if a.empty() || b.empty() {
			return false
		}
		s[ra], s[rb] = a, b
	}
	return true
}

// trimNE removes a singleton other-operand from a's endpoints (the only
// sound interval refinement for "not equal").
func trimNE(a, other itv) itv {
	if !other.singleton() {
		return a
	}
	v := other.lo
	if a.singleton() && a.lo == v {
		return itv{1, 0} // empty
	}
	if a.lo == v {
		a.lo = v + 1
	}
	if a.hi == v {
		a.hi = v - 1
	}
	return a
}

// absResult carries the fixpoint: the joined abstract state at each block
// entry, and which blocks the analysis actually reached (edge feasibility
// can prune blocks plain reachability keeps).
type absResult struct {
	in      []astate
	visited []bool
}

// edgeOut computes the post-state along one edge of block b: the transfer
// of the whole block followed by the branch refinement for that edge. It
// reports false when the edge is infeasible.
func (st *absResult) edgeOut(dec isa.DecodedProgram, g *isa.CFG, b int, taken bool, t Target) (astate, bool) {
	s := st.in[b]
	blk := &g.Blocks[b]
	for pc := blk.Start; pc < blk.End; pc++ {
		transfer(&dec[pc], &s, t)
	}
	d := &dec[blk.End-1]
	if d.IsBranch() && d.Op != isa.OpJmp {
		if !refine(d.Op, taken, &s, d.Ra, d.Rb) {
			return s, false
		}
	}
	return s, true
}

// analysis fixpoint tuning: joins at a block are exact for the first
// stableJoins changes, threshold-widened after, and fully widened once the
// pass counter passes hardPass (guaranteeing termination).
const (
	stableJoins = 2
	softPasses  = 60
	maxPasses   = 4000
)

// analyze runs the interval fixpoint over the reachable CFG.
func analyze(dec isa.DecodedProgram, g *isa.CFG, reach []bool, t Target) *absResult {
	nb := len(g.Blocks)
	st := &absResult{in: make([]astate, nb), visited: make([]bool, nb)}
	if nb == 0 {
		return st
	}
	st.in[0] = zeroState()
	st.visited[0] = true
	thresholds := collectThresholds(dec, t)
	joins := make([]int, nb)

	propagate := func(to int32, s astate, hard bool) bool {
		ti := int(to)
		if !st.visited[ti] {
			st.in[ti] = s
			st.visited[ti] = true
			return true
		}
		joined := joinState(&st.in[ti], &s)
		if joined == st.in[ti] {
			return false
		}
		joins[ti]++
		if joins[ti] > stableJoins {
			joined = widenState(&st.in[ti], &joined, thresholds, hard)
		}
		if joined == st.in[ti] {
			return false
		}
		st.in[ti] = joined
		return true
	}

	for pass := 0; pass < maxPasses; pass++ {
		hard := pass >= softPasses
		changed := false
		for b := 0; b < nb; b++ {
			if !reach[b] || !st.visited[b] {
				continue
			}
			blk := &g.Blocks[b]
			if blk.Fall >= 0 {
				if s, ok := st.edgeOut(dec, g, b, false, t); ok {
					if propagate(blk.Fall, s, hard) {
						changed = true
					}
				}
			}
			if blk.Taken >= 0 {
				if s, ok := st.edgeOut(dec, g, b, true, t); ok {
					if propagate(blk.Taken, s, hard) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return st
		}
	}
	// The cap is a backstop for a convergence bug, not a normal exit: give
	// every visited block the sound top state, then settle visited itself.
	for b := 0; b < nb; b++ {
		if st.visited[b] {
			for r := range st.in[b] {
				st.in[b][r] = topItv
			}
		}
	}
	settleTop(st, g, reach)
	return st
}

// settleTop closes visited under successor edges after the backstop widened
// every visited block to top. Under top states no edge can be refined to
// infeasible, so blocks that looked unreachable under the pre-backstop
// states must rejoin the analysis — bounds checks and the WCET path only
// cover visited blocks, and leaving them out would under-approximate.
func settleTop(st *absResult, g *isa.CFG, reach []bool) {
	for changed := true; changed; {
		changed = false
		for b := range g.Blocks {
			if !reach[b] || !st.visited[b] {
				continue
			}
			blk := &g.Blocks[b]
			var succs [2]int32
			for _, to := range blk.Succs(succs[:0]) {
				if !st.visited[to] {
					st.visited[to] = true
					for r := range st.in[to] {
						st.in[to][r] = topItv
					}
					changed = true
				}
			}
		}
	}
}

// widenState accelerates a growing join: endpoints that moved are pushed
// to the next program threshold (hard: straight to infinity).
func widenState(old, next *astate, thresholds []int64, hard bool) astate {
	var r astate
	for i := range r {
		v := next[i]
		if v.lo < old[i].lo {
			if hard {
				v.lo = negInf
			} else {
				v.lo = thresholdLE(thresholds, v.lo)
			}
		}
		if v.hi > old[i].hi {
			if hard {
				v.hi = posInf
			} else {
				v.hi = thresholdGE(thresholds, v.hi)
			}
		}
		r[i] = v
	}
	return r
}

// collectThresholds gathers the widening thresholds: every immediate in
// the program (±1, so strict bounds land exactly), the memory size, and
// the processor count.
func collectThresholds(dec isa.DecodedProgram, t Target) []int64 {
	var ts []int64
	add := func(v int64) {
		if v != negInf && v != posInf {
			ts = append(ts, v)
		}
	}
	add(0)
	add(1)
	if t.MemWords > 0 {
		add(int64(t.MemWords))
		add(int64(t.MemWords) - 1)
	}
	add(int64(t.Procs))
	add(int64(t.Procs) - 1)
	for pc := range dec {
		d := &dec[pc]
		if d.Op.UsesImm() {
			add(d.Imm)
			if d.Imm > negInf+1 {
				add(d.Imm - 1)
			}
			if d.Imm < posInf-1 {
				add(d.Imm + 1)
			}
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	// Dedupe in place.
	out := ts[:0]
	for i, v := range ts {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// thresholdGE returns the smallest threshold >= v, or posInf.
func thresholdGE(ts []int64, v int64) int64 {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ts) {
		return ts[lo]
	}
	return posInf
}

// thresholdLE returns the largest threshold <= v, or negInf.
func thresholdLE(ts []int64, v int64) int64 {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		return ts[lo-1]
	}
	return negInf
}
