; The loop counter is squared, not stepped by a recognized induction
; pattern, so the budget verdict is an explicit "unbounded".
;; target mem=8
;; unbounded not stepped by a recognized induction pattern
;; want budget warn "not provably bounded"
;; loops=1
        ldi r1, 0
        ldi r2, 10
loop:   beq r1, r2, done
        mul r1, r1, r1
        jmp loop
done:   halt
