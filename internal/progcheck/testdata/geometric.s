; A doubling counter (add r1, r1, r1) against an upper bound: the trip
; count is logarithmic and still inferable.
;; target mem=16
;; bounded
;; cycles=31
;; instrs=31
;; loops=1
        ldi r1, 1
        ldi r2, 100
loop:   blt r1, r2, body
        jmp done
body:   add r1, r1, r1
        jmp loop
done:   halt
