; A matmul-shaped nest: 4x4 outer/inner counted loops. Both trip bounds are
; inferred and multiplied through.
;; target mem=64
;; bounded
;; cycles=198
;; instrs=148
;; loops=2
        ldi  r1, 0          ; i
        ldi  r3, 4          ; n
outer:  beq  r1, r3, done
        ldi  r2, 0          ; j
inner:  beq  r2, r3, iend
        ld   r4, [r2+0]
        st   r4, [r2+16]
        addi r2, r2, 1
        jmp  inner
iend:   addi r1, r1, 1
        jmp  outer
done:   halt
