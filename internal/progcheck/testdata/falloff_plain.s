; A straight-line program with no halt at all.
;; target mem=8
;; bounded
;; cycles=2
        ldi  r1, 1
        addi r1, r1, 1      ; want fallthrough warn "missing halt"
