; Two distinct back edges to the same header defeat trip inference.
;; target mem=8
;; unbounded back edges
;; want budget warn "not provably bounded"
;; loops=1
        ldi  r1, 0
        ldi  r2, 8
loop:   beq  r1, r2, done
        addi r1, r1, 1
        beq  r1, r2, loop
        jmp  loop
done:   halt
