; Same do-while as dowhile.s under SIMD-ish timing knobs: 2-cycle memory,
; 3-cycle taken-branch penalty. Only the cycle bound moves.
;; target mem=16 memlat=2 penalty=3
;; bounded
;; cycles=75
;; instrs=30
;; loops=1
        ldi  r1, 0
        ldi  r2, 8
loop:   st   r1, [r1+0]
        addi r1, r1, 1
        bne  r1, r2, loop
        halt
