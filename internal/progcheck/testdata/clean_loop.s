; A vecadd-shaped counted loop: c[i] = a[i] + b[i] over 8 elements.
; Everything is clean; the cycle bound is pinned so precision regressions
; (interval widening, trip inference) show up as a changed number.
;; target mem=32
;; bounded
;; cycles=93
;; instrs=66
;; loops=1
        ldi  r1, 0          ; i = 0
        ldi  r2, 8          ; n = 8
loop:   beq  r1, r2, done
        ld   r3, [r1+0]     ; a[i]
        ld   r4, [r1+8]     ; b[i]
        add  r5, r3, r4
        st   r5, [r1+16]    ; c[i]
        addi r1, r1, 1
        jmp  loop
done:   halt
