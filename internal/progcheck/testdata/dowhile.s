; A do-while loop: the exit test sits at the latch (bne), not the header.
;; target mem=16
;; bounded
;; cycles=39
;; instrs=30
;; loops=1
        ldi  r1, 0
        ldi  r2, 8
loop:   st   r1, [r1+0]
        addi r1, r1, 1
        bne  r1, r2, loop
        halt
