; Code after an unconditional jump that nothing targets is unreachable.
;; target mem=8
;; bounded
;; cycles=3
        ldi r1, 1
        jmp end
        ldi r2, 2           ; want unreachable info "unreachable code (2 ops)"
        add r3, r1, r2
end:    halt
