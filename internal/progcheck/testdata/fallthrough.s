; Missing halt: plain fall-off is a warning; a trailing conditional branch
; whose taken edge is the legal implicit halt still leaks its not-taken path.
;; target mem=8
;; bounded
        ldi  r1, 1
        beq  r1, r1, 0      ; want branch-target info "implicit halt" ; want fallthrough warn "not-taken path falls off the end"
