; Memory-bounds grading: provable violations are errors, possible ones
; (address from an unconstrained load) are warnings.
;; target mem=8
;; bounded
;; cycles=11
        ldi r1, 10
        ld  r2, [r1+0]      ; want memory-bounds error "provably out of bounds"
        ldi r3, 5
        st  r2, [r3+4]      ; want memory-bounds error "provably out of bounds"
        ld  r4, [r0+0]      ; want def-before-use info "reads r0 before any write"
        st  r1, [r4+0]      ; want memory-bounds warn "may be out of bounds"
        halt
