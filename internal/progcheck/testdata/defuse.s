; Reads of registers no write reaches rely on the machines' zero-init.
;; target mem=8
;; bounded
;; cycles=5
        ldi r1, 1
        add r2, r1, r3      ; want def-before-use info "reads r3 before any write"
        st  r2, [r0+4]      ; want def-before-use info "reads r0 before any write"
        halt
