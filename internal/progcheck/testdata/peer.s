; With a network present, peer indices are graded against the processor
; count: provably-out-of-range peers are errors.
;; target mem=8 procs=4 network barrier
;; bounded
        ldi  r1, 7
        send r1, r1         ; want comm-shape error "provably out of range"
        ldi  r2, 3
        recv r3, r2
        sync
        halt
