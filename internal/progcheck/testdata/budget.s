; Bounded, but the worst-case bound exceeds the target's cycle budget.
;; target mem=32 budget=50
;; bounded
;; cycles=93
;; loops=1
;; want budget warn "exceeds the run budget"
        ldi  r1, 0
        ldi  r2, 8
loop:   beq  r1, r2, done
        ld   r3, [r1+0]
        ld   r4, [r1+8]
        add  r5, r3, r4
        st   r5, [r1+16]
        addi r1, r1, 1
        jmp  loop
done:   halt
