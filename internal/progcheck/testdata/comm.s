; SEND/RECV need a DP-DP network and SYNC needs a barrier; this target
; (a plain uni-processor) has neither.
;; target mem=8 procs=4
;; bounded
        lane r1
        send r1, r1         ; want comm-shape error "needs a DP-DP network"
        recv r2, r1         ; want comm-shape error "needs a DP-DP network"
        sync                ; want comm-shape error "needs a barrier"
        halt
