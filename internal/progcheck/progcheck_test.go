package progcheck

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/report"
)

// Cases the assembler cannot express (it validates on the way out) are
// constructed as raw isa.Program values here.

func findingWith(r *Report, check string, sev report.Severity, substr string) *Finding {
	for i := range r.Findings {
		f := &r.Findings[i]
		if f.Check == check && f.Severity == sev && strings.Contains(f.Message, substr) {
			return f
		}
	}
	return nil
}

func TestCheckBranchOutOfRange(t *testing.T) {
	prog := isa.Program{
		{Op: isa.OpBeq, Ra: 1, Rb: 2, Imm: 100},
		{Op: isa.OpHalt},
	}
	r := Check(prog, Target{})
	f := findingWith(r, CheckBranch, report.SevError, "outside program")
	if f == nil {
		t.Fatalf("no branch-target error:\n%s", r.Text())
	}
	if f.PC != 0 {
		t.Errorf("finding at pc %d, want 0", f.PC)
	}

	prog[0].Imm = -100
	r = Check(prog, Target{})
	if findingWith(r, CheckBranch, report.SevError, "outside program") == nil {
		t.Fatalf("no branch-target error for negative target:\n%s", r.Text())
	}
}

func TestCheckInvalidEncoding(t *testing.T) {
	prog := isa.Program{
		{Op: isa.Op(200)},
		{Op: isa.OpHalt},
	}
	r := Check(prog, Target{})
	if findingWith(r, CheckEncoding, report.SevError, "") == nil {
		t.Fatalf("no encoding error:\n%s", r.Text())
	}
	if r.Budget.Bounded {
		t.Error("invalid encodings must not claim a bounded budget")
	}
	if !strings.Contains(r.Budget.Reason, "invalid encodings") {
		t.Errorf("budget reason = %q", r.Budget.Reason)
	}
	// Deep analyses are gated: the only findings are structural.
	for _, f := range r.Findings {
		if f.Check != CheckEncoding && f.Check != CheckBranch && f.Check != CheckComm {
			t.Errorf("deep-analysis finding on an undecodable program: %+v", f)
		}
	}

	bad := isa.Program{{Op: isa.OpAdd, Rd: 99, Ra: 0, Rb: 0}}
	r = Check(bad, Target{})
	if findingWith(r, CheckEncoding, report.SevError, "") == nil {
		t.Fatalf("no encoding error for bad register:\n%s", r.Text())
	}
}

func TestCheckEmptyProgram(t *testing.T) {
	r := Check(nil, Target{})
	if len(r.Findings) != 0 {
		t.Errorf("empty program has findings: %+v", r.Findings)
	}
	if !r.Budget.Bounded || r.Budget.MaxCycles != 0 {
		t.Errorf("empty budget = %+v", r.Budget)
	}
}

func TestCheckDeterministicJSON(t *testing.T) {
	prog := isa.MustAssemble(`
        ldi  r1, 0
        ldi  r2, 8
loop:   beq  r1, r2, done
        ld   r3, [r1+0]
        st   r3, [r1+64]
        addi r1, r1, 1
        jmp  loop
done:   send r1, r9
        halt
`)
	tgt := Target{MemWords: 32, Procs: 4}
	first, err := Check(prog, tgt).JSON()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Check(prog, tgt).JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("run %d: JSON differs:\n%s\nvs\n%s", i, first, again)
		}
	}
}

func TestCleanAndMaxSeverity(t *testing.T) {
	r := &Report{}
	if !r.Clean(report.SevInfo) {
		t.Error("empty report is not clean")
	}
	if got := r.MaxSeverity(); got != report.Severity(-1) {
		t.Errorf("empty MaxSeverity = %v", got)
	}
	r.add(CheckDefUse, report.SevInfo, 0, 0, "x")
	r.add(CheckBounds, report.SevWarn, 1, 0, "y")
	if r.Clean(report.SevWarn) {
		t.Error("warn finding not counted against SevWarn threshold")
	}
	if !r.Clean(report.SevError) {
		t.Error("warn finding counted against SevError threshold")
	}
	if got := r.MaxSeverity(); got != report.SevWarn {
		t.Errorf("MaxSeverity = %v, want warn", got)
	}
}

func TestUnknownMemSizeSkipsBounds(t *testing.T) {
	prog := isa.MustAssemble(`
        ldi r1, 1000000
        ld  r2, [r1+0]
        halt
`)
	r := Check(prog, Target{}) // MemWords 0: size unknown
	if f := findingWith(r, CheckBounds, report.SevError, ""); f != nil {
		t.Errorf("bounds finding with unknown memory size: %+v", f)
	}
}

func TestRenderText(t *testing.T) {
	prog := isa.MustAssemble(`
        ldi r1, 10
        ld  r2, [r1+0]
        halt
`)
	r := Check(prog, Target{MemWords: 8})
	text := r.Text()
	for _, want := range []string{"memory-bounds", "provably out of bounds", "budget: bounded"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	clean := Check(isa.MustAssemble("halt"), Target{})
	if !strings.Contains(clean.Text(), "no findings") {
		t.Errorf("clean Text() missing 'no findings':\n%s", clean.Text())
	}
}
