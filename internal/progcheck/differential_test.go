package progcheck_test

import (
	"math/rand"
	"testing"

	"repro/internal/conformance"
	"repro/internal/progcheck"
	"repro/internal/report"
	"repro/internal/uniproc"
)

// TestGeneratorCheckClean sweeps the conformance random-program generator
// through the checker: every generated program must be check-clean (no Warn
// or Error; Info is allowed — generated code deliberately reads
// zero-initialised registers) and provably bounded. The generator is the
// adversarial half of this pin: it emits every operand shape the checker's
// transfer functions must interpret, so a widening or trip-inference
// regression surfaces here as an unbounded verdict or a spurious warning.
func TestGeneratorCheckClean(t *testing.T) {
	seeds := 5000
	if testing.Short() {
		seeds = 500
	}
	cfg := conformance.DefaultGenConfig()
	tgt := progcheck.Target{MemWords: cfg.MemWords(), Procs: 1}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		prog, err := conformance.RandomProgram(rng, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := progcheck.Check(prog, tgt)
		if !rep.Clean(report.SevWarn) {
			t.Fatalf("seed %d not check-clean:\n%s", seed, rep.Text())
		}
		if !rep.Budget.Bounded {
			t.Fatalf("seed %d not provably bounded: %s", seed, rep.Budget.Reason)
		}
	}
}

// TestDifferentialBudgetPin is the soundness pin: when the checker says
// "clean and bounded", the machine must agree. For thousands of generated
// programs, the uni-processor executes without a guest fault and retires
// within the statically predicted worst-case cycle and instruction bounds.
// A checker bound below a real execution is a soundness bug, the worst kind
// this subsystem can have — this test makes that class of bug loud.
func TestDifferentialBudgetPin(t *testing.T) {
	seeds := 2000
	if testing.Short() {
		seeds = 200
	}
	cfg := conformance.DefaultGenConfig()
	bank := cfg.MemWords()
	tgt := progcheck.Target{MemWords: bank, Procs: 1}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) * 7919))
		prog, err := conformance.RandomProgram(rng, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := progcheck.Check(prog, tgt)
		if !rep.Clean(report.SevWarn) || !rep.Budget.Bounded {
			t.Fatalf("seed %d: generated program not clean+bounded:\n%s", seed, rep.Text())
		}

		m, err := uniproc.New(uniproc.Config{MemWords: bank}, prog)
		if err != nil {
			t.Fatalf("seed %d: uniproc.New: %v", seed, err)
		}
		_, stats, err := m.RunWithInput(nil, 0, bank)
		m.Release()
		if err != nil {
			t.Fatalf("seed %d: checker said clean but the machine faulted: %v", seed, err)
		}
		if stats.Cycles > rep.Budget.MaxCycles {
			t.Fatalf("seed %d: measured %d cycles exceed static bound %d", seed, stats.Cycles, rep.Budget.MaxCycles)
		}
		if stats.Instructions > rep.Budget.MaxInstructions {
			t.Fatalf("seed %d: retired %d instructions exceed static bound %d",
				seed, stats.Instructions, rep.Budget.MaxInstructions)
		}
	}
}
