package progcheck

import (
	"fmt"

	"repro/internal/isa"
)

// This file infers loop trip bounds from the induction pattern every
// workload kernel (and every bounded guest program the generator emits)
// uses: a counter register stepped by exactly one `addi ctr, ctr, c` (or
// doubled by `add ctr, ctr, ctr`) per iteration, tested at the loop header
// or latch against a loop-invariant bound. Everything else is reported as
// "unbounded" — an explicit verdict, never a guess.

// stay relations: how the counter compares to the bound on the edge that
// stays in the loop.
type stayRel int

const (
	relEQ stayRel = iota
	relNE
	relLT
	relLE
	relGT
	relGE
)

// negateRel flips a relation to its complement (the other branch edge).
func negateRel(r stayRel) stayRel {
	switch r {
	case relEQ:
		return relNE
	case relNE:
		return relEQ
	case relLT:
		return relGE
	case relGE:
		return relLT
	case relLE:
		return relGT
	case relGT:
		return relLE
	}
	return r
}

// mirrorRel swaps the sides of a relation (bound REL ctr -> ctr REL' bound).
func mirrorRel(r stayRel) stayRel {
	switch r {
	case relLT:
		return relGT
	case relGT:
		return relLT
	case relGE:
		return relLE
	case relLE:
		return relGE
	case relEQ, relNE:
		return r
	}
	return r
}

// subOv subtracts with overflow detection (operands must be > MinInt64).
func subOv(a, b int64) (int64, bool) {
	return addOv(a, -b)
}

// tripBound bounds how many times the loop's header can execute per entry
// into the loop. A negative result means no bound could be inferred; the
// reason explains the closest miss.
func (w *wcetCtx) tripBound(inSCC []bool, members []int32, header, latch int32, member []bool, skipTo int32) (int64, string) {
	// Register writers inside the loop.
	var writeCount [isa.NumRegs]int
	var writerPC, writerBlock [isa.NumRegs]int32
	for _, b := range members {
		blk := &w.g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			d := &w.dec[pc]
			if d.Op.WritesRd() {
				writeCount[d.Rd]++
				writerPC[d.Rd] = pc
				writerBlock[d.Rd] = b
			}
		}
	}
	// Blocks still on a cycle once back edges to the header are cut: an
	// induction step there may run several times per iteration, which
	// breaks the equality-exit arithmetic.
	nb := len(w.g.Blocks)
	bodyMember := make([]bool, nb)
	for _, b := range members {
		bodyMember[b] = true
	}
	_, bcomps := w.tarjan(bodyMember, header)
	innerCyclic := make([]bool, nb)
	for _, bm := range bcomps {
		if len(bm) > 1 {
			for _, b := range bm {
				innerCyclic[b] = true
			}
		}
	}
	for _, b := range members {
		if !innerCyclic[b] && w.hasSelfEdge(b, bodyMember, header) {
			innerCyclic[b] = true
		}
	}

	exits := []int32{header}
	if latch != header {
		exits = append(exits, latch)
	}
	best := int64(-1)
	reason := fmt.Sprintf("no exit test at the header or latch of the loop at block %d", header)
	for _, e := range exits {
		t, why := w.inferExit(e, inSCC, &writeCount, &writerPC, &writerBlock, innerCyclic, header, latch, member, skipTo)
		if t >= 0 {
			if best < 0 || t < best {
				best = t
			}
		} else if why != "" {
			reason = fmt.Sprintf("loop at block %d: %s", header, why)
		}
	}
	if best < 0 {
		return -1, reason
	}
	return best, ""
}

// inferExit bounds header executions via the exit branch at block e, or
// returns -1 (with a reason when the block looked like a candidate).
func (w *wcetCtx) inferExit(e int32, inSCC []bool, writeCount *[isa.NumRegs]int, writerPC, writerBlock *[isa.NumRegs]int32, innerCyclic []bool, header, latch int32, member []bool, skipTo int32) (int64, string) {
	blk := &w.g.Blocks[e]
	d := &w.dec[blk.End-1]
	if !d.IsBranch() || d.Op == isa.OpJmp {
		return -1, ""
	}
	fallIn := blk.Fall >= 0 && inSCC[blk.Fall]
	takenIn := blk.Taken >= 0 && inSCC[blk.Taken]
	if fallIn == takenIn {
		return -1, "" // both edges stay in (or leave) the loop: not an exit test
	}
	stayTaken := takenIn

	ra, rb := d.Ra, d.Rb
	var ctr, bound uint8
	switch {
	case writeCount[ra] > 0 && writeCount[rb] == 0:
		ctr, bound = ra, rb
	case writeCount[rb] > 0 && writeCount[ra] == 0:
		ctr, bound = rb, ra
	default:
		return -1, fmt.Sprintf("exit test at pc %d has no loop-invariant bound operand", blk.End-1)
	}
	if writeCount[ctr] != 1 {
		return -1, fmt.Sprintf("counter r%d has %d writers in the loop", ctr, writeCount[ctr])
	}
	wb := writerBlock[ctr]
	if wb != header && wb != latch {
		return -1, fmt.Sprintf("counter r%d is not stepped on every iteration", ctr)
	}
	if innerCyclic[wb] {
		return -1, fmt.Sprintf("counter r%d steps inside an inner loop", ctr)
	}
	wop := &w.dec[writerPC[ctr]]
	var stride int64
	geometric := false
	switch {
	case wop.Op == isa.OpAddi && wop.Rd == ctr && wop.Ra == ctr && wop.Imm != 0:
		stride = wop.Imm
	case wop.Op == isa.OpAdd && wop.Rd == ctr && wop.Ra == ctr && wop.Rb == ctr:
		geometric = true
	default:
		return -1, fmt.Sprintf("counter r%d is not stepped by a recognized induction pattern", ctr)
	}

	// Bound interval at the exit test; counter interval at loop entry.
	if !w.st.visited[e] {
		return -1, ""
	}
	s := w.st.in[e]
	for pc := blk.Start; pc < blk.End-1; pc++ {
		transfer(&w.dec[pc], &s, w.t)
	}
	bItv := s[bound]
	c0, ok := w.entryState(header, inSCC, member, skipTo)
	if !ok {
		return -1, "loop entry state unknown"
	}
	c0Itv := c0[ctr]

	// Relation of ctr to bound on the staying edge.
	var rel stayRel
	switch d.Op {
	case isa.OpBeq:
		rel = relEQ
	case isa.OpBne:
		rel = relNE
	case isa.OpBlt:
		rel = relLT
	case isa.OpBge:
		rel = relGE
	default:
		return -1, ""
	}
	if !stayTaken {
		rel = negateRel(rel)
	}
	if ctr == rb {
		rel = mirrorRel(rel)
	}

	switch rel {
	case relEQ:
		// Stays only while ctr equals the bound. A nonzero stride breaks
		// the equality after one step, but a doubling counter stuck at zero
		// never moves — and the stay condition permits ctr = 0 whenever the
		// bound can be zero, so that loop would spin forever. Only a
		// provably nonzero bound rules the stuck case out.
		if geometric && bItv.lo <= 0 && bItv.hi >= 0 {
			return -1, fmt.Sprintf("equality stay-condition on doubling counter r%d with a possibly-zero bound", ctr)
		}
		return 2, ""
	case relNE:
		if geometric {
			return -1, fmt.Sprintf("equality exit on doubling counter r%d", ctr)
		}
		if !c0Itv.singleton() || !bItv.singleton() {
			return -1, fmt.Sprintf("equality exit needs exact counter start and bound (have r%d=[%s], bound=[%s])", ctr, c0Itv, bItv)
		}
		diff, ok := subOv(bItv.lo, c0Itv.lo)
		if !ok {
			return -1, "counter range overflows"
		}
		if stride > 0 {
			if diff < 0 || diff%stride != 0 {
				return -1, fmt.Sprintf("counter r%d steps over its bound without hitting it", ctr)
			}
			return diff/stride + 1, ""
		}
		if diff > 0 || diff%stride != 0 {
			return -1, fmt.Sprintf("counter r%d steps over its bound without hitting it", ctr)
		}
		return diff/stride + 1, ""
	case relLT, relLE:
		// Stays while ctr < limit (LE: <= bound, so limit = bound+1).
		if bItv.hi == posInf || c0Itv.lo == negInf {
			return -1, fmt.Sprintf("counter r%d start or bound is unbounded", ctr)
		}
		limit := bItv.hi
		if rel == relLE {
			var ok bool
			limit, ok = addOv(limit, 1)
			if !ok {
				return -1, "counter range overflows"
			}
		}
		if geometric {
			return doublingExecs(c0Itv.lo, limit, ctr)
		}
		if stride <= 0 {
			return -1, fmt.Sprintf("counter r%d never reaches its upper bound (stride %d)", ctr, stride)
		}
		span, ok := subOv(limit-1, c0Itv.lo)
		if !ok {
			return -1, "counter range overflows"
		}
		return nonnegDiv(span, stride) + 2, ""
	case relGT, relGE:
		// Stays while ctr > floor (GE: >= bound, so floor = bound).
		if bItv.lo == negInf || c0Itv.hi == posInf {
			return -1, fmt.Sprintf("counter r%d start or bound is unbounded", ctr)
		}
		floor := bItv.lo
		if rel == relGT {
			var ok bool
			floor, ok = addOv(floor, 1)
			if !ok {
				return -1, "counter range overflows"
			}
		}
		if geometric {
			return -1, fmt.Sprintf("doubling counter r%d with a lower bound", ctr)
		}
		if stride >= 0 {
			return -1, fmt.Sprintf("counter r%d never reaches its lower bound (stride %d)", ctr, stride)
		}
		span, ok := subOv(c0Itv.hi, floor)
		if !ok {
			return -1, "counter range overflows"
		}
		return nonnegDiv(span, -stride) + 2, ""
	}
	return -1, ""
}

// nonnegDiv is floor(num/den) clamped at zero (den > 0).
func nonnegDiv(num, den int64) int64 {
	if num < 0 {
		return 0
	}
	return num / den
}

// doublingExecs counts header executions of a doubling counter staying
// while ctr < limit.
func doublingExecs(start, limit int64, ctr uint8) (int64, string) {
	if start < 1 {
		return -1, fmt.Sprintf("doubling counter r%d starts at %d (never grows)", ctr, start)
	}
	v, execs := start, int64(1)
	for v < limit {
		if v > costCap {
			break
		}
		v *= 2
		execs++
	}
	return execs + 1, ""
}

// entryState joins the abstract states flowing into the loop header from
// outside the loop (plus the machine zero state when the header is the
// program entry).
func (w *wcetCtx) entryState(header int32, inSCC []bool, member []bool, skipTo int32) (astate, bool) {
	var s astate
	have := false
	if header == 0 {
		s = zeroState()
		have = true
	}
	for _, p := range w.preds[header] {
		if !member[p] || inSCC[p] || !w.st.visited[p] {
			continue
		}
		blk := &w.g.Blocks[p]
		if blk.Fall == header {
			if es, ok := w.st.edgeOut(w.dec, w.g, int(p), false, w.t); ok {
				if have {
					s = joinState(&s, &es)
				} else {
					s, have = es, true
				}
			}
		}
		if blk.Taken == header && blk.Taken != blk.Fall {
			if es, ok := w.st.edgeOut(w.dec, w.g, int(p), true, w.t); ok {
				if have {
					s = joinState(&s, &es)
				} else {
					s, have = es, true
				}
			}
		}
	}
	return s, have
}
