package progcheck

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/report"
)

// Text renders the report as an aligned findings table plus the budget
// verdict, in the internal/report house style.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d instructions, %d blocks, %d loops\n", r.Instructions, r.Blocks, r.Loops)
	if len(r.Findings) == 0 {
		sb.WriteString("no findings\n")
	} else {
		t := report.Table{Headers: []string{"severity", "check", "pc", "block", "message"}}
		for _, f := range r.Findings {
			pc, blk := "-", "-"
			if f.PC >= 0 {
				pc = fmt.Sprintf("%d", f.PC)
			}
			if f.Block >= 0 {
				blk = fmt.Sprintf("%d", f.Block)
			}
			t.AddRow(f.Severity.String(), f.Check, pc, blk, f.Message)
		}
		sb.WriteString(t.Text())
	}
	b := r.Budget
	if b.Bounded {
		fmt.Fprintf(&sb, "budget: bounded, <= %d cycles, <= %d instructions", b.MaxCycles, b.MaxInstructions)
		if b.CommStalls {
			sb.WriteString(" (excluding recv/sync stalls)")
		}
		sb.WriteString("\n")
	} else {
		fmt.Fprintf(&sb, "budget: unbounded — %s\n", b.Reason)
	}
	return sb.String()
}

// JSON renders the report deterministically (byte-identical for identical
// inputs, which CI checks across worker counts).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
