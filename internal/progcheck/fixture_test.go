package progcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/report"
)

// The fixture harness mirrors internal/analysis: each testdata/*.s file is
// assembled and checked, `; want <check> <severity> "<substring>"` comments
// pin findings to the instruction on their line, and `;;` directive lines
// pin the target shape and the budget verdict. Matching is bidirectional —
// an unexpected finding fails the same way a missing one does.

// wantFinding is one expectation parsed from a fixture comment.
type wantFinding struct {
	pc     int
	check  string
	sev    report.Severity
	substr string
}

var wantRe = regexp.MustCompile(`want\s+(\S+)\s+(info|warn|error)\s+"([^"]*)"`)

// fixtureSpec is one parsed fixture file.
type fixtureSpec struct {
	target      Target
	wants       []wantFinding
	wantBounded *bool
	unboundedIn string
	cycles      int64
	instrs      int64
	loops       int
}

func parseFixture(t *testing.T, src string) *fixtureSpec {
	t.Helper()
	spec := &fixtureSpec{cycles: -1, instrs: -1, loops: -1}
	pc := -1
	for lineNum, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, ";;") {
			parseDirective(t, spec, lineNum+1, strings.TrimSpace(trimmed[2:]))
			continue
		}
		code, comment, hasComment := strings.Cut(line, ";")
		// Replicate the assembler's line rules to track the pc: strip
		// label prefixes, and any remaining text is one instruction.
		rest := strings.TrimSpace(code)
		for {
			head, tail, found := strings.Cut(rest, ":")
			if !found || strings.ContainsAny(head, " \t") {
				break
			}
			rest = strings.TrimSpace(tail)
		}
		if rest != "" {
			pc++
		}
		if !hasComment {
			continue
		}
		for _, m := range wantRe.FindAllStringSubmatch(comment, -1) {
			if rest == "" {
				t.Fatalf("line %d: want comment on a line with no instruction", lineNum+1)
			}
			sev, err := report.ParseSeverity(m[2])
			if err != nil {
				t.Fatalf("line %d: %v", lineNum+1, err)
			}
			spec.wants = append(spec.wants, wantFinding{pc: pc, check: m[1], sev: sev, substr: m[3]})
		}
	}
	return spec
}

func parseDirective(t *testing.T, spec *fixtureSpec, lineNum int, text string) {
	t.Helper()
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return
	}
	bad := func(err error) { t.Fatalf("line %d: directive %q: %v", lineNum, text, err) }
	num := func(s string) int64 {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			bad(err)
		}
		return v
	}
	switch fields[0] {
	case "target":
		for _, f := range fields[1:] {
			key, val, _ := strings.Cut(f, "=")
			switch key {
			case "mem":
				spec.target.MemWords = int(num(val))
			case "procs":
				spec.target.Procs = int(num(val))
			case "memlat":
				spec.target.MemLatency = num(val)
			case "penalty":
				spec.target.BranchPenalty = num(val)
			case "budget":
				spec.target.MaxCycles = num(val)
			case "network":
				spec.target.HasNetwork = true
			case "barrier":
				spec.target.HasBarrier = true
			default:
				bad(fmt.Errorf("unknown target knob %q", key))
			}
		}
	case "want":
		// Program-level findings (pc -1), e.g. budget verdicts.
		ms := wantRe.FindAllStringSubmatch(text, -1)
		if len(ms) == 0 {
			bad(fmt.Errorf("malformed want clause"))
		}
		for _, m := range ms {
			sev, err := report.ParseSeverity(m[2])
			if err != nil {
				bad(err)
			}
			spec.wants = append(spec.wants, wantFinding{pc: -1, check: m[1], sev: sev, substr: m[3]})
		}
	case "bounded":
		v := true
		spec.wantBounded = &v
	case "unbounded":
		v := false
		spec.wantBounded = &v
		spec.unboundedIn = strings.Join(fields[1:], " ")
	default:
		key, val, found := strings.Cut(fields[0], "=")
		if !found {
			bad(fmt.Errorf("unknown directive"))
		}
		switch key {
		case "cycles":
			spec.cycles = num(val)
		case "instrs":
			spec.instrs = num(val)
		case "loops":
			spec.loops = int(num(val))
		default:
			bad(fmt.Errorf("unknown directive key %q", key))
		}
	}
}

func TestFixtures(t *testing.T) {
	files, err := filepath.Glob("testdata/*.s")
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			spec := parseFixture(t, string(src))
			prog, err := isa.Assemble(string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			rep := Check(prog, spec.target)

			used := make([]bool, len(spec.wants))
			for _, f := range rep.Findings {
				matched := false
				for i, w := range spec.wants {
					if used[i] || w.pc != f.PC || w.check != f.Check || w.sev != f.Severity {
						continue
					}
					if !strings.Contains(f.Message, w.substr) {
						continue
					}
					used[i] = true
					matched = true
					break
				}
				if !matched {
					t.Errorf("unexpected finding: pc=%d block=%d %s %s: %s", f.PC, f.Block, f.Severity, f.Check, f.Message)
				}
			}
			for i, w := range spec.wants {
				if !used[i] {
					t.Errorf("missing finding: pc=%d %s %s %q", w.pc, w.sev, w.check, w.substr)
				}
			}
			if spec.wantBounded != nil {
				if rep.Budget.Bounded != *spec.wantBounded {
					t.Errorf("Bounded = %v (reason %q), want %v", rep.Budget.Bounded, rep.Budget.Reason, *spec.wantBounded)
				}
				if !*spec.wantBounded && !strings.Contains(rep.Budget.Reason, spec.unboundedIn) {
					t.Errorf("unbounded reason %q does not contain %q", rep.Budget.Reason, spec.unboundedIn)
				}
			}
			if spec.cycles >= 0 && rep.Budget.MaxCycles != spec.cycles {
				t.Errorf("MaxCycles = %d, want %d", rep.Budget.MaxCycles, spec.cycles)
			}
			if spec.instrs >= 0 && rep.Budget.MaxInstructions != spec.instrs {
				t.Errorf("MaxInstructions = %d, want %d", rep.Budget.MaxInstructions, spec.instrs)
			}
			if spec.loops >= 0 && rep.Loops != spec.loops {
				t.Errorf("Loops = %d, want %d", rep.Loops, spec.loops)
			}
			if t.Failed() {
				t.Logf("report:\n%s", rep.Text())
			}
		})
	}
}
