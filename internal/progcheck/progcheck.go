// Package progcheck statically verifies guest ISA programs before they
// reach a simulator. It builds the same basic-block CFG the compiled
// backend lowers (isa.BuildCFG), then runs a pluggable set of checks:
// structural validity (encodings, branch targets), unreachable code,
// control falling off the end of the program, register def-before-use,
// memory bounds via abstract interpretation over an interval domain,
// communication-shape legality for the target machine class, and a
// worst-case cycle/step budget with loop trip-count inference — "unbounded"
// is an explicit verdict, not a timeout.
//
// The checker is the front line for user-submitted programs (ROADMAP item
// 1): /v1/simulate rejects programs with structured findings instead of
// letting them fault a simulator at runtime, and the conformance random-
// program generator differentially validates the checker over thousands of
// seeds (its output must always be clean).
package progcheck

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/report"
)

// Target describes the machine shape a program is checked against. The
// zero value means: memory size unknown (bounds checks that need a size
// are skipped), one processor, no DP-DP network, no barrier, default
// uniproc timing, and the default run budget.
type Target struct {
	// MemWords is the data-memory size in words visible to the program
	// (per bank for SPMD programs); 0 means unknown.
	MemWords int
	// Procs is the number of processors or lanes the program runs on;
	// 0 means 1 (uni-processor).
	Procs int
	// HasNetwork reports whether the target has a DP-DP network, making
	// SEND/RECV legal; HasBarrier likewise for SYNC.
	HasNetwork bool
	HasBarrier bool
	// MemLatency and BranchPenalty mirror the simulator timing knobs the
	// cycle bound is computed under; MemLatency 0 means the default
	// single-cycle DP-DM traversal.
	MemLatency    int64
	BranchPenalty int64
	// MaxCycles is the cycle budget the worst-case bound is compared
	// against; 0 means machine.DefaultMaxCycles.
	MaxCycles int64
}

// withDefaults resolves the zero-value conventions.
func (t Target) withDefaults() Target {
	if t.MemLatency == 0 {
		t.MemLatency = 1
	}
	if t.Procs <= 0 {
		t.Procs = 1
	}
	if t.MaxCycles <= 0 {
		t.MaxCycles = machine.DefaultMaxCycles
	}
	return t
}

// Check names, one per analysis; Finding.Check holds one of these.
const (
	CheckEncoding    = "encoding"
	CheckBranch      = "branch-target"
	CheckFallOff     = "fallthrough"
	CheckUnreachable = "unreachable"
	CheckDefUse      = "def-before-use"
	CheckBounds      = "memory-bounds"
	CheckComm        = "comm-shape"
	CheckBudget      = "budget"
)

// Finding is one checker diagnosis, anchored to an op index and its basic
// block (-1 for program-level findings).
type Finding struct {
	// Check names the analysis that produced the finding.
	Check string `json:"check"`
	// Severity grades it; see report.Severity.
	Severity report.Severity `json:"severity"`
	// PC is the op index, -1 for program-level findings.
	PC int `json:"pc"`
	// Block is the basic-block index containing PC, -1 when not tied to
	// a block.
	Block int `json:"block"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Budget is the worst-case execution verdict.
type Budget struct {
	// Bounded reports whether every loop has an inferable trip bound; a
	// false value is an explicit verdict, carried with Reason.
	Bounded bool `json:"bounded"`
	// MaxCycles and MaxInstructions bound any execution when Bounded.
	MaxCycles       int64 `json:"max_cycles,omitempty"`
	MaxInstructions int64 `json:"max_instructions,omitempty"`
	// CommStalls reports the program blocks on RECV/SYNC, whose stall
	// cycles the bound excludes (they depend on peer timing).
	CommStalls bool `json:"comm_stalls,omitempty"`
	// Reason explains an unbounded verdict.
	Reason string `json:"reason,omitempty"`
}

// Report is the result of checking one program against one target.
type Report struct {
	Findings []Finding `json:"findings"`
	Budget   Budget    `json:"budget"`
	// Instructions, Blocks and Loops are CFG statistics.
	Instructions int `json:"instructions"`
	Blocks       int `json:"blocks"`
	Loops        int `json:"loops"`
}

// Clean reports whether the program has no findings at or above min.
func (r *Report) Clean(min report.Severity) bool {
	for _, f := range r.Findings {
		if f.Severity >= min {
			return false
		}
	}
	return true
}

// MaxSeverity returns the highest finding severity, or SevInfo-1 (-1 as
// int) when there are no findings.
func (r *Report) MaxSeverity() report.Severity {
	max := report.Severity(-1)
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// add records one finding.
func (r *Report) add(check string, sev report.Severity, pc, block int, msg string) {
	r.Findings = append(r.Findings, Finding{Check: check, Severity: sev, PC: pc, Block: block, Message: msg})
}

// finish sorts findings into the deterministic report order: by op index,
// then check name, then severity, then message.
func (r *Report) finish() {
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		return a.Message < b.Message
	})
}

// Check verifies one program against one target and returns the report.
// It never panics and is deterministic: the same program and target always
// produce the identical report, byte-for-byte in JSON.
func Check(p isa.Program, t Target) *Report {
	t = t.withDefaults()
	r := &Report{Instructions: len(p)}
	decodable := checkStructure(p, t, r)
	if !decodable {
		// Undefined opcodes or register fields: the deeper analyses have
		// no semantics to interpret, so stop at the structural findings.
		r.Budget = Budget{Bounded: false, Reason: "program has invalid encodings"}
		r.finish()
		return r
	}
	if len(p) == 0 {
		r.Budget = Budget{Bounded: true}
		r.finish()
		return r
	}
	dec := isa.Predecode(p)
	g := isa.BuildCFG(dec)
	r.Blocks = len(g.Blocks)
	reach := reachableBlocks(g)
	checkUnreachable(g, reach, r)
	checkFallOff(dec, g, reach, r)
	checkDefUse(dec, g, reach, r)
	st := analyze(dec, g, reach, t)
	checkBounds(dec, g, reach, st, t, r)
	checkPeers(dec, g, reach, st, t, r)
	computeBudget(dec, g, reach, st, t, r)
	r.finish()
	return r
}

// checkStructure validates encodings, branch-target ranges, and the
// communication shape against the target. It returns false when the
// program has ops the simulators have no semantics for (invalid opcode or
// register field), which gates the deeper analyses.
func checkStructure(p isa.Program, t Target, r *Report) bool {
	decodable := true
	n := len(p)
	for pc, ins := range p {
		if err := ins.Validate(); err != nil {
			r.add(CheckEncoding, report.SevError, pc, -1, err.Error())
			decodable = false
			continue
		}
		if ins.Op.IsBranch() {
			target := pc + 1 + int(ins.Imm)
			switch {
			case target < 0 || target > n:
				r.add(CheckBranch, report.SevError, pc, -1,
					fmt.Sprintf("branch target %d outside program of length %d", target, n))
			case target == n:
				r.add(CheckBranch, report.SevInfo, pc, -1,
					fmt.Sprintf("branch target %d is the program end (implicit halt)", target))
			}
		}
		if ins.Op.IsComm() && !t.HasNetwork {
			r.add(CheckComm, report.SevError, pc, -1,
				fmt.Sprintf("%s needs a DP-DP network the target class does not have", ins.Op))
		}
		if ins.Op == isa.OpSync && !t.HasBarrier {
			r.add(CheckComm, report.SevError, pc, -1,
				"sync needs a barrier the target class does not have")
		}
	}
	return decodable
}

// reachableBlocks marks every block reachable from the entry block.
func reachableBlocks(g *isa.CFG) []bool {
	reach := make([]bool, len(g.Blocks))
	if len(g.Blocks) == 0 {
		return reach
	}
	stack := []int32{0}
	reach[0] = true
	var succs [2]int32
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs(succs[:0]) {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reach
}

// checkUnreachable reports blocks no path from the entry reaches.
func checkUnreachable(g *isa.CFG, reach []bool, r *Report) {
	for i := range g.Blocks {
		if !reach[i] {
			b := &g.Blocks[i]
			r.add(CheckUnreachable, report.SevInfo, int(b.Start), i,
				fmt.Sprintf("unreachable code (%d ops)", b.End-b.Start))
		}
	}
}

// checkFallOff reports reachable blocks from which control can run off the
// end of the program without an explicit halt. A branch whose target is
// exactly the program length is the legal implicit halt and already
// carries an Info finding from checkStructure.
func checkFallOff(dec isa.DecodedProgram, g *isa.CFG, reach []bool, r *Report) {
	n := int32(len(dec))
	for i := range g.Blocks {
		b := &g.Blocks[i]
		if !reach[i] || !b.FallsOff {
			continue
		}
		d := &dec[b.End-1]
		pc := int(b.End - 1)
		switch {
		case d.IsBranch():
			// A taken edge to n is the implicit halt (Info elsewhere);
			// only flag the fall-through running off the end.
			if d.Op != isa.OpJmp && b.End == n && b.Fall < 0 {
				r.add(CheckFallOff, report.SevWarn, pc, i,
					"conditional branch at the last instruction: the not-taken path falls off the end of the program")
			}
		default:
			r.add(CheckFallOff, report.SevWarn, pc, i,
				"control falls off the end of the program (missing halt; the machines halt implicitly)")
		}
	}
}

// checkDefUse runs a must-be-defined forward dataflow over registers and
// reports reads that no write dominates. The machines zero-initialize
// registers, so this is advisory: it flags reliance on implicit zeros.
func checkDefUse(dec isa.DecodedProgram, g *isa.CFG, reach []bool, r *Report) {
	nb := len(g.Blocks)
	// in[b] is the definitely-written register mask at block entry; the
	// meet over predecessors is AND, so unvisited preds start at all-ones.
	in := make([]uint16, nb)
	for i := range in {
		in[i] = 0xFFFF
	}
	in[0] = 0
	// Predecessor-free reachable blocks other than the entry cannot exist
	// (reachability implies a pred path), so the fixpoint below is sound.
	out := func(b int) uint16 {
		mask := in[b]
		blk := &g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			if dec[pc].Op.WritesRd() {
				mask |= 1 << dec[pc].Rd
			}
		}
		return mask
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < nb; b++ {
			if !reach[b] {
				continue
			}
			m := out(b)
			blk := &g.Blocks[b]
			var succs [2]int32
			for _, s := range blk.Succs(succs[:0]) {
				if nm := in[s] & m; nm != in[s] {
					in[s] = nm
					changed = true
				}
			}
		}
	}
	for b := 0; b < nb; b++ {
		if !reach[b] {
			continue
		}
		mask := in[b]
		blk := &g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			d := &dec[pc]
			if d.Op.ReadsRa() && mask&(1<<d.Ra) == 0 {
				r.add(CheckDefUse, report.SevInfo, int(pc), b,
					fmt.Sprintf("reads r%d before any write reaches it (relies on zero-initialized registers)", d.Ra))
			}
			if d.Op.ReadsRb() && mask&(1<<d.Rb) == 0 {
				r.add(CheckDefUse, report.SevInfo, int(pc), b,
					fmt.Sprintf("reads r%d before any write reaches it (relies on zero-initialized registers)", d.Rb))
			}
			if d.Op.WritesRd() {
				mask |= 1 << d.Rd
			}
		}
	}
}

// checkBounds walks every reachable memory op with the interval results
// and grades its address range against the target memory size.
func checkBounds(dec isa.DecodedProgram, g *isa.CFG, reach []bool, st *absResult, t Target, r *Report) {
	if t.MemWords <= 0 {
		return
	}
	mem := int64(t.MemWords)
	for b := range g.Blocks {
		if !reach[b] || !st.visited[b] {
			continue
		}
		s := st.in[b]
		blk := &g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			d := &dec[pc]
			if d.Op == isa.OpLd || d.Op == isa.OpSt {
				addr := addII(s[d.Ra], itv{d.Imm, d.Imm})
				switch {
				case addr.hi < 0 || addr.lo >= mem:
					r.add(CheckBounds, report.SevError, int(pc), b,
						fmt.Sprintf("address r%d%+d is provably out of bounds: [%s] vs memory 0..%d", d.Ra, d.Imm, addr, mem-1))
				case addr.lo < 0 || addr.hi >= mem:
					r.add(CheckBounds, report.SevWarn, int(pc), b,
						fmt.Sprintf("address r%d%+d may be out of bounds: [%s] vs memory 0..%d", d.Ra, d.Imm, addr, mem-1))
				}
			}
			transfer(d, &s, t)
		}
	}
}

// checkPeers grades SEND/RECV peer indices against the processor count;
// only provably-out-of-range peers are errors (possible ranges are left to
// the runtime, which faults deterministically).
func checkPeers(dec isa.DecodedProgram, g *isa.CFG, reach []bool, st *absResult, t Target, r *Report) {
	if !t.HasNetwork || t.Procs <= 0 {
		return
	}
	procs := int64(t.Procs)
	for b := range g.Blocks {
		if !reach[b] || !st.visited[b] {
			continue
		}
		s := st.in[b]
		blk := &g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			d := &dec[pc]
			if d.Op == isa.OpSend || d.Op == isa.OpRecv {
				peer := s[d.Rb]
				if peer.hi < 0 || peer.lo >= procs {
					r.add(CheckComm, report.SevError, int(pc), b,
						fmt.Sprintf("%s peer index in r%d is provably out of range: [%s] vs processors 0..%d", d.Op, d.Rb, peer, procs-1))
				}
			}
			transfer(d, &s, t)
		}
	}
}
