package fabric

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNew_Rejects(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("0 cells accepted")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative pins accepted")
	}
}

func TestConfigure_Validation(t *testing.T) {
	f, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(make([]CellConfig, 1)); err == nil {
		t.Error("short bitstream accepted")
	}
	bad := make([]CellConfig, 2)
	bad[0].Inputs[0] = Source{Kind: SourceCell, Index: 9}
	if err := f.Configure(bad); err == nil {
		t.Error("bad cell source accepted")
	}
	bad = make([]CellConfig, 2)
	bad[0].Inputs[0] = Source{Kind: SourceInput, Index: 3}
	if err := f.Configure(bad); err == nil {
		t.Error("bad pin source accepted")
	}
	bad = make([]CellConfig, 2)
	bad[0].Inputs[0] = Source{Kind: SourceKind(9)}
	if err := f.Configure(bad); err == nil {
		t.Error("bad source kind accepted")
	}
}

func TestConfigure_RejectsCombinationalCycle(t *testing.T) {
	f, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := make([]CellConfig, 2)
	cfg[0] = CellConfig{Truth: truthBUF, Inputs: [4]Source{{Kind: SourceCell, Index: 1}}}
	cfg[1] = CellConfig{Truth: truthBUF, Inputs: [4]Source{{Kind: SourceCell, Index: 0}}}
	if err := f.Configure(cfg); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("combinational loop: %v", err)
	}
	// The same loop through a flip-flop is legal (it is state, not a loop).
	cfg[1].UseFF = true
	if err := f.Configure(cfg); err != nil {
		t.Errorf("registered loop rejected: %v", err)
	}
}

func TestStep_Preconditions(t *testing.T) {
	f, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Step([]bool{true}); err == nil {
		t.Error("step before configure accepted")
	}
	if err := f.Configure(make([]CellConfig, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Step(nil); err == nil {
		t.Error("wrong pin count accepted")
	}
	if _, err := f.Output(5); err == nil {
		t.Error("out-of-range output read accepted")
	}
}

func TestAdderOverlay(t *testing.T) {
	const width = 8
	f, err := New(2*width, 2*width)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := BuildAdder(f, width)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(ov.Bitstream); err != nil {
		t.Fatal(err)
	}
	cases := [][2]uint64{{0, 0}, {1, 1}, {3, 5}, {100, 155}, {255, 255}, {200, 56}, {255, 1}}
	for _, c := range cases {
		sum, err := ov.Add(f, c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if sum != c[0]+c[1] {
			t.Errorf("%d + %d = %d on the fabric, want %d", c[0], c[1], sum, c[0]+c[1])
		}
	}
}

func TestAdderOverlay_Property(t *testing.T) {
	const width = 16
	f, err := New(2*width, 2*width)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := BuildAdder(f, width)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(ov.Bitstream); err != nil {
		t.Fatal(err)
	}
	fn := func(a, b uint16) bool {
		sum, err := ov.Add(f, uint64(a), uint64(b))
		return err == nil && sum == uint64(a)+uint64(b)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildAdder_Rejects(t *testing.T) {
	f, _ := New(4, 4)
	if _, err := BuildAdder(f, 0); err == nil {
		t.Error("0-width adder accepted")
	}
	if _, err := BuildAdder(f, 8); err == nil {
		t.Error("adder larger than fabric accepted")
	}
	small, _ := New(64, 2)
	if _, err := BuildAdder(small, 8); err == nil {
		t.Error("adder with too few pins accepted")
	}
}

func TestCounterOverlay(t *testing.T) {
	const bits = 6
	f, err := New(2*bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := BuildCounter(f, bits)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(ov.Bitstream); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 70; i++ {
		if err := f.Step(nil); err != nil {
			t.Fatal(err)
		}
		// Output reflects the pre-edge state; after i steps the counter
		// shows i-1... check: after the first Step, FFs captured 1 but the
		// visible output was the pre-clock value 0.
		want := uint64(i-1) % (1 << bits)
		got, err := ov.Value(f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("after %d steps counter shows %d, want %d", i, got, want)
		}
	}
}

func TestBuildCounter_Rejects(t *testing.T) {
	f, _ := New(2, 0)
	if _, err := BuildCounter(f, 0); err == nil {
		t.Error("0-bit counter accepted")
	}
	if _, err := BuildCounter(f, 4); err == nil {
		t.Error("oversized counter accepted")
	}
}

func TestSequencerOverlay(t *testing.T) {
	for states := 2; states <= 4; states++ {
		f, err := New(4, 0)
		if err != nil {
			t.Fatal(err)
		}
		ov, err := BuildSequencer(f, states)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Configure(ov.Bitstream); err != nil {
			t.Fatal(err)
		}
		// Before any step, no phase fires.
		if p, err := ov.Phase(f); err != nil || p != -1 {
			t.Errorf("states=%d: initial phase = (%d, %v), want -1", states, p, err)
		}
		// Visible output lags the clock edge by one step: after step i the
		// phase is (i-2) mod states for i >= 2.
		for i := 1; i <= 3*states+1; i++ {
			if err := f.Step(nil); err != nil {
				t.Fatal(err)
			}
			p, err := ov.Phase(f)
			if err != nil {
				t.Fatalf("states=%d step %d: %v", states, i, err)
			}
			var want int
			if i == 1 {
				want = -1 // FFs still show reset state
			} else {
				want = (i - 2) % states
			}
			if p != want {
				t.Fatalf("states=%d: after %d steps phase = %d, want %d", states, i, p, want)
			}
		}
	}
}

func TestBuildSequencer_Rejects(t *testing.T) {
	f, _ := New(8, 0)
	if _, err := BuildSequencer(f, 1); err == nil {
		t.Error("1-state sequencer accepted")
	}
	if _, err := BuildSequencer(f, 5); err == nil {
		t.Error("5-state sequencer accepted")
	}
	tiny, _ := New(2, 0)
	if _, err := BuildSequencer(tiny, 4); err == nil {
		t.Error("sequencer larger than fabric accepted")
	}
}

func TestReconfiguration_MorphsRoles(t *testing.T) {
	// One fabric, three roles, three bitstreams: the universal-flow claim.
	f, err := New(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	adder, err := BuildAdder(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(adder.Bitstream); err != nil {
		t.Fatal(err)
	}
	if sum, err := adder.Add(f, 77, 23); err != nil || sum != 100 {
		t.Fatalf("DP role: %d, %v", sum, err)
	}

	counter, err := BuildCounter(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(counter.Bitstream); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if err := f.Step(make([]bool, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := counter.Value(f); err != nil || v != 10 {
		t.Fatalf("memory/state role: %d, %v", v, err)
	}

	seq, err := BuildSequencer(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(seq.Bitstream); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := f.Step(make([]bool, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if p, err := seq.Phase(f); err != nil || p != 0 {
		t.Fatalf("IP role: phase %d, %v (want 0 after 6 steps)", p, err)
	}

	if f.Reconfigs() != 3 {
		t.Errorf("reconfigs = %d, want 3", f.Reconfigs())
	}
}

func TestConfigBits_ScaleWithFabric(t *testing.T) {
	small, _ := New(16, 4)
	large, _ := New(1024, 64)
	if small.ConfigBits() <= 0 {
		t.Error("no config bits")
	}
	if large.ConfigBits() <= small.ConfigBits() {
		t.Error("config bits do not grow with the fabric")
	}
	if large.ConfigBitsPerCell() <= small.ConfigBitsPerCell() {
		t.Error("per-cell bits do not grow with routing richness")
	}
	// Per-cell cost: 16 truth + 1 FF + 4 mux selects.
	want := 16 + 1 + 4*selectBits(16+4+2)
	if small.ConfigBitsPerCell() != want {
		t.Errorf("per-cell bits = %d, want %d", small.ConfigBitsPerCell(), want)
	}
}

func TestSelectBits(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := selectBits(n); got != want {
			t.Errorf("selectBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	f, _ := New(8, 3)
	if f.Cells() != 8 || f.Inputs() != 3 {
		t.Error("accessors wrong")
	}
	if err := f.Configure(make([]CellConfig, 8)); err != nil {
		t.Fatal(err)
	}
	if f.Steps() != 0 {
		t.Error("steps not reset")
	}
	if err := f.Step(make([]bool, 3)); err != nil {
		t.Fatal(err)
	}
	if f.Steps() != 1 {
		t.Error("steps not counted")
	}
}
