package fabric

import "fmt"

// This file builds the overlays that demonstrate the universal-flow claim
// of §II.C: the same fabric, reconfigured, acts as a data processor (a
// ripple-carry adder), as a memory element (a register), or as an
// instruction processor (a self-starting one-hot micro-sequencer emitting
// control phases). Each builder returns the bitstream plus the cell
// indices to observe; load it with Fabric.Configure.

// Truth tables used by the overlays.
const (
	truthXOR3 = 0x9696 // parity of inputs 0..2 (replicated over input 3)
	truthMAJ3 = 0xE8E8 // majority of inputs 0..2
	truthXOR2 = 0x6666 // inputs 0,1
	truthAND2 = 0x8888 // inputs 0,1
	truthBUF  = 0xAAAA // copy input 0
)

// AdderOverlay describes a configured ripple-carry adder.
type AdderOverlay struct {
	// Bitstream is the cell configuration to load.
	Bitstream []CellConfig
	// Sum lists the sum-bit cells, least significant first.
	Sum []int
	// CarryOut is the final carry cell.
	CarryOut int
	// Width is the operand width; pins 0..Width-1 are operand A and pins
	// Width..2*Width-1 are operand B.
	Width int
}

// BuildAdder returns a width-bit ripple-carry adder overlay for a fabric
// with at least 2*width cells and exactly >= 2*width input pins. The fabric
// acts purely as a data processor: no state, data flows through LUTs.
func BuildAdder(f *Fabric, width int) (AdderOverlay, error) {
	if width < 1 {
		return AdderOverlay{}, fmt.Errorf("fabric: adder width must be >= 1, got %d", width)
	}
	needCells := 2 * width
	if f.Cells() < needCells {
		return AdderOverlay{}, fmt.Errorf("fabric: %d-bit adder needs %d cells, fabric has %d",
			width, needCells, f.Cells())
	}
	if f.Inputs() < 2*width {
		return AdderOverlay{}, fmt.Errorf("fabric: %d-bit adder needs %d input pins, fabric has %d",
			width, 2*width, f.Inputs())
	}
	cfg := make([]CellConfig, f.Cells())
	ov := AdderOverlay{Width: width}
	carry := Source{Kind: SourceZero}
	for bit := 0; bit < width; bit++ {
		a := Source{Kind: SourceInput, Index: bit}
		b := Source{Kind: SourceInput, Index: width + bit}
		sumCell := 2 * bit
		carryCell := 2*bit + 1
		cfg[sumCell] = CellConfig{
			Truth:  truthXOR3,
			Inputs: [4]Source{a, b, carry, {Kind: SourceZero}},
		}
		cfg[carryCell] = CellConfig{
			Truth:  truthMAJ3,
			Inputs: [4]Source{a, b, carry, {Kind: SourceZero}},
		}
		ov.Sum = append(ov.Sum, sumCell)
		carry = Source{Kind: SourceCell, Index: carryCell}
		ov.CarryOut = carryCell
	}
	ov.Bitstream = cfg
	return ov, nil
}

// Add drives a configured adder overlay with two operands and reads back
// the sum. The fabric must already hold ov.Bitstream.
func (ov AdderOverlay) Add(f *Fabric, a, b uint64) (uint64, error) {
	pins := make([]bool, f.Inputs())
	for bit := 0; bit < ov.Width; bit++ {
		pins[bit] = a>>uint(bit)&1 == 1
		pins[ov.Width+bit] = b>>uint(bit)&1 == 1
	}
	if err := f.Step(pins); err != nil {
		return 0, err
	}
	var sum uint64
	for bit, cell := range ov.Sum {
		v, err := f.Output(cell)
		if err != nil {
			return 0, err
		}
		if v {
			sum |= 1 << uint(bit)
		}
	}
	cout, err := f.Output(ov.CarryOut)
	if err != nil {
		return 0, err
	}
	if cout {
		sum |= 1 << uint(ov.Width)
	}
	return sum, nil
}

// CounterOverlay describes a configured binary up-counter: the fabric in
// its memory-element/state role.
type CounterOverlay struct {
	Bitstream []CellConfig
	// Bits lists the counter state cells, least significant first.
	Bits []int
}

// BuildCounter returns a bits-wide synchronous binary counter overlay. It
// needs 2*bits cells and no input pins.
func BuildCounter(f *Fabric, bits int) (CounterOverlay, error) {
	if bits < 1 {
		return CounterOverlay{}, fmt.Errorf("fabric: counter width must be >= 1, got %d", bits)
	}
	if f.Cells() < 2*bits {
		return CounterOverlay{}, fmt.Errorf("fabric: %d-bit counter needs %d cells, fabric has %d",
			bits, 2*bits, f.Cells())
	}
	cfg := make([]CellConfig, f.Cells())
	ov := CounterOverlay{}
	// Cell layout: state FF cells at 2k, carry-chain AND cells at 2k+1.
	// carry(0) = 1; carry(k) = carry(k-1) AND q(k-1); q(k)' = q(k) XOR carry(k).
	carry := Source{Kind: SourceOne}
	for k := 0; k < bits; k++ {
		ff := 2 * k
		cfg[ff] = CellConfig{
			Truth:  truthXOR2,
			UseFF:  true,
			Inputs: [4]Source{{Kind: SourceCell, Index: ff}, carry, {Kind: SourceZero}, {Kind: SourceZero}},
		}
		ov.Bits = append(ov.Bits, ff)
		andCell := 2*k + 1
		cfg[andCell] = CellConfig{
			Truth:  truthAND2,
			Inputs: [4]Source{carry, {Kind: SourceCell, Index: ff}, {Kind: SourceZero}, {Kind: SourceZero}},
		}
		carry = Source{Kind: SourceCell, Index: andCell}
	}
	ov.Bitstream = cfg
	return ov, nil
}

// Value reads the counter state after the last Step.
func (ov CounterOverlay) Value(f *Fabric) (uint64, error) {
	var v uint64
	for bit, cell := range ov.Bits {
		b, err := f.Output(cell)
		if err != nil {
			return 0, err
		}
		if b {
			v |= 1 << uint(bit)
		}
	}
	return v, nil
}

// SequencerOverlay describes a configured one-hot micro-sequencer: the
// fabric in its instruction-processor role, emitting control phases the
// way a tiny hardwired IP sequences a data path.
type SequencerOverlay struct {
	Bitstream []CellConfig
	// Phases lists the one-hot phase cells in firing order.
	Phases []int
}

// BuildSequencer returns a self-starting one-hot ring sequencer with the
// given number of states (2..4; the restart LUT watches all states with a
// single LUT4). After the first Step, phase 0 fires, then 1, 2, ... and
// wraps around forever.
func BuildSequencer(f *Fabric, states int) (SequencerOverlay, error) {
	if states < 2 || states > 4 {
		return SequencerOverlay{}, fmt.Errorf("fabric: sequencer supports 2..4 states, got %d", states)
	}
	if f.Cells() < states {
		return SequencerOverlay{}, fmt.Errorf("fabric: %d-state sequencer needs %d cells, fabric has %d",
			states, states, f.Cells())
	}
	cfg := make([]CellConfig, f.Cells())
	ov := SequencerOverlay{}
	// Phase 0 fires when every phase is low (self-start out of reset) or
	// when the last phase was high (ring wrap); phase k follows phase k-1.
	// All phase cells are flip-flops, so after the first Step phase 0 is
	// high and each further Step advances the one-hot token by one.
	watch := [4]Source{{Kind: SourceZero}, {Kind: SourceZero}, {Kind: SourceZero}, {Kind: SourceZero}}
	for s := 0; s < states; s++ {
		watch[s] = Source{Kind: SourceCell, Index: s}
	}
	var truth uint16
	for idx := 0; idx < 16; idx++ {
		allLow := idx&(1<<uint(states)-1) == 0
		lastHigh := idx>>uint(states-1)&1 == 1
		if allLow || lastHigh {
			truth |= 1 << uint(idx)
		}
	}
	cfg[0] = CellConfig{Truth: truth, UseFF: true, Inputs: watch}
	ov.Phases = append(ov.Phases, 0)
	for s := 1; s < states; s++ {
		cfg[s] = CellConfig{
			Truth:  truthBUF,
			UseFF:  true,
			Inputs: [4]Source{{Kind: SourceCell, Index: s - 1}, {Kind: SourceZero}, {Kind: SourceZero}, {Kind: SourceZero}},
		}
		ov.Phases = append(ov.Phases, s)
	}
	ov.Bitstream = cfg
	return ov, nil
}

// Phase returns the index of the currently-high phase, or -1 when none is
// high (the self-start cycle).
func (ov SequencerOverlay) Phase(f *Fabric) (int, error) {
	phase := -1
	for i, cell := range ov.Phases {
		b, err := f.Output(cell)
		if err != nil {
			return 0, err
		}
		if b {
			if phase >= 0 {
				return 0, fmt.Errorf("fabric: sequencer not one-hot: phases %d and %d both high", phase, i)
			}
			phase = i
		}
	}
	return phase, nil
}
