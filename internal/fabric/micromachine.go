package fabric

import "fmt"

// This file builds the strongest form of the universal-flow claim: a whole
// stored-program (instruction-flow) machine synthesised onto the fabric —
// instruction memory, program counter (IP) and accumulator datapath (DP)
// all made of LUT4+FF cells. The taxonomy calls the fabric 'USP' precisely
// because it can become this; the overlay makes "become" literal.
//
// The machine: a 4-bit accumulator processor with a 3-bit program counter
// (8-entry instruction ROM) and a 6-bit instruction word (2-bit opcode +
// 4-bit immediate). Per cycle it executes ROM[PC] and increments PC (mod
// 8, so programs either terminate in NOPs or loop by design).

// MicroOp is the 2-bit opcode of the fabric micro-machine.
type MicroOp uint8

const (
	// MicroNop leaves the accumulator unchanged.
	MicroNop MicroOp = 0
	// MicroLdi loads the 4-bit immediate into the accumulator.
	MicroLdi MicroOp = 1
	// MicroAdd adds the immediate (mod 16).
	MicroAdd MicroOp = 2
	// MicroXor xors the immediate in.
	MicroXor MicroOp = 3
)

// String returns the mnemonic.
func (o MicroOp) String() string {
	switch o {
	case MicroNop:
		return "nop"
	case MicroLdi:
		return "ldi"
	case MicroAdd:
		return "add"
	case MicroXor:
		return "xor"
	default:
		return fmt.Sprintf("microop(%d)", uint8(o))
	}
}

// MicroInstr is one instruction of the micro-machine.
type MicroInstr struct {
	Op  MicroOp
	Imm uint8 // 4 bits
}

// MicroProgramLen is the instruction ROM depth.
const MicroProgramLen = 8

// MicroMachineCells is the number of fabric cells the overlay occupies.
const MicroMachineCells = 34

// MicroMachine describes a configured micro-machine overlay.
type MicroMachine struct {
	// Bitstream is the cell configuration to load.
	Bitstream []CellConfig
	// AccBits are the accumulator state cells, LSB first.
	AccBits [4]int
	// PCBits are the program-counter state cells, LSB first.
	PCBits [3]int
	// Program is the synthesised instruction ROM contents.
	Program [MicroProgramLen]MicroInstr
}

// BuildMicroMachine synthesises the micro-machine with the given program
// baked into its instruction ROM. The fabric needs at least
// MicroMachineCells cells; no input pins are used.
func BuildMicroMachine(f *Fabric, program [MicroProgramLen]MicroInstr) (MicroMachine, error) {
	if f.Cells() < MicroMachineCells {
		return MicroMachine{}, fmt.Errorf("fabric: micro-machine needs %d cells, fabric has %d",
			MicroMachineCells, f.Cells())
	}
	for i, ins := range program {
		if ins.Op > MicroXor {
			return MicroMachine{}, fmt.Errorf("fabric: instruction %d has invalid opcode %d", i, ins.Op)
		}
		if ins.Imm > 15 {
			return MicroMachine{}, fmt.Errorf("fabric: instruction %d immediate %d exceeds 4 bits", i, ins.Imm)
		}
	}

	cfg := make([]CellConfig, f.Cells())
	next := 0
	alloc := func() int {
		c := next
		next++
		return c
	}
	cellSrc := func(c int) Source { return Source{Kind: SourceCell, Index: c} }
	zero := Source{Kind: SourceZero}

	mm := MicroMachine{Program: program}

	// --- Program counter: 3-bit synchronous binary counter.
	// carry(0) = 1; pc(k)' = pc(k) XOR carry(k); carry(k+1) = carry(k) AND pc(k).
	var pcFF [3]int
	carry := Source{Kind: SourceOne}
	for k := 0; k < 3; k++ {
		ff := alloc()
		pcFF[k] = ff
		cfg[ff] = CellConfig{
			Truth: truthXOR2, UseFF: true,
			Inputs: [4]Source{cellSrc(ff), carry, zero, zero},
		}
		if k < 2 {
			andCell := alloc()
			cfg[andCell] = CellConfig{
				Truth:  truthAND2,
				Inputs: [4]Source{carry, cellSrc(ff), zero, zero},
			}
			carry = cellSrc(andCell)
		}
		mm.PCBits[k] = ff
	}

	// --- Instruction ROM: one LUT per instruction-word bit, addressed by
	// the PC. ROM bit layout: 0..3 immediate, 4 op0, 5 op1.
	romBit := func(bit int) uint16 {
		var truth uint16
		for pc := 0; pc < MicroProgramLen; pc++ {
			word := uint16(program[pc].Imm&0xF) | uint16(program[pc].Op&0x3)<<4
			if word>>uint(bit)&1 == 1 {
				truth |= 1 << uint(pc) // PC occupies LUT inputs 0..2
			}
		}
		return truth
	}
	var imm [4]Source
	for b := 0; b < 4; b++ {
		c := alloc()
		cfg[c] = CellConfig{
			Truth:  romBit(b),
			Inputs: [4]Source{cellSrc(pcFF[0]), cellSrc(pcFF[1]), cellSrc(pcFF[2]), zero},
		}
		imm[b] = cellSrc(c)
	}
	op0Cell := alloc()
	cfg[op0Cell] = CellConfig{
		Truth:  romBit(4),
		Inputs: [4]Source{cellSrc(pcFF[0]), cellSrc(pcFF[1]), cellSrc(pcFF[2]), zero},
	}
	op1Cell := alloc()
	cfg[op1Cell] = CellConfig{
		Truth:  romBit(5),
		Inputs: [4]Source{cellSrc(pcFF[0]), cellSrc(pcFF[1]), cellSrc(pcFF[2]), zero},
	}
	op0, op1 := cellSrc(op0Cell), cellSrc(op1Cell)

	// --- Accumulator datapath, bit-sliced. Allocate the FF cells first so
	// every slice can reference any accumulator bit.
	var accFF [4]int
	for b := 0; b < 4; b++ {
		accFF[b] = alloc()
		mm.AccBits[b] = accFF[b]
	}
	const (
		truthMuxSel0 = 0xCACA // in2 ? in1 : in0  (select on input 2)
	)
	addCarry := zero
	for b := 0; b < 4; b++ {
		acc := cellSrc(accFF[b])
		// xor_b = acc XOR imm (also the half-add partial sum).
		xorCell := alloc()
		cfg[xorCell] = CellConfig{Truth: truthXOR2, Inputs: [4]Source{acc, imm[b], zero, zero}}
		// sum_b = xor_b XOR carry.
		sumCell := alloc()
		cfg[sumCell] = CellConfig{Truth: truthXOR2, Inputs: [4]Source{cellSrc(xorCell), addCarry, zero, zero}}
		// m0 = op0 ? imm : acc   (covers NOP and LDI)
		m0 := alloc()
		cfg[m0] = CellConfig{Truth: truthMuxSel0, Inputs: [4]Source{acc, imm[b], op0, zero}}
		// m1 = op0 ? xor : sum   (covers ADD and XOR)
		m1 := alloc()
		cfg[m1] = CellConfig{Truth: truthMuxSel0, Inputs: [4]Source{cellSrc(sumCell), cellSrc(xorCell), op0, zero}}
		// acc' = op1 ? m1 : m0 — the registered accumulator bit.
		cfg[accFF[b]] = CellConfig{
			Truth: truthMuxSel0, UseFF: true,
			Inputs: [4]Source{cellSrc(m0), cellSrc(m1), op1, zero},
		}
		// carry out = MAJ(acc, imm, carry in) for the adder chain.
		if b < 3 {
			carryCell := alloc()
			cfg[carryCell] = CellConfig{Truth: truthMAJ3, Inputs: [4]Source{acc, imm[b], addCarry, zero}}
			addCarry = cellSrc(carryCell)
		}
	}

	if next != MicroMachineCells {
		return MicroMachine{}, fmt.Errorf("fabric: micro-machine used %d cells, expected %d", next, MicroMachineCells)
	}
	mm.Bitstream = cfg
	return mm, nil
}

// Acc reads the accumulator after the last Step.
func (mm MicroMachine) Acc(f *Fabric) (uint8, error) {
	var v uint8
	for b, cell := range mm.AccBits {
		bit, err := f.Output(cell)
		if err != nil {
			return 0, err
		}
		if bit {
			v |= 1 << uint(b)
		}
	}
	return v, nil
}

// PC reads the program counter after the last Step.
func (mm MicroMachine) PC(f *Fabric) (uint8, error) {
	var v uint8
	for b, cell := range mm.PCBits {
		bit, err := f.Output(cell)
		if err != nil {
			return 0, err
		}
		if bit {
			v |= 1 << uint(b)
		}
	}
	return v, nil
}

// SimulateMicroProgram is the pure-Go reference semantics of the
// micro-machine: the accumulator value after `steps` executed instructions
// (the ROM wraps modulo MicroProgramLen).
func SimulateMicroProgram(program [MicroProgramLen]MicroInstr, steps int) uint8 {
	var acc uint8
	for s := 0; s < steps; s++ {
		ins := program[s%MicroProgramLen]
		switch ins.Op {
		case MicroLdi:
			acc = ins.Imm & 0xF
		case MicroAdd:
			acc = (acc + ins.Imm) & 0xF
		case MicroXor:
			acc = (acc ^ ins.Imm) & 0xF
		}
	}
	return acc
}
