package fabric

import (
	"testing"
	"testing/quick"
)

// runMicro configures a fresh fabric with the program and executes `steps`
// instructions, returning the visible accumulator (which lags the clock
// edge by one Step, like every FF output in this simulator).
func runMicro(t *testing.T, program [MicroProgramLen]MicroInstr, steps int) uint8 {
	t.Helper()
	f, err := New(MicroMachineCells, 0)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := BuildMicroMachine(f, program)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(mm.Bitstream); err != nil {
		t.Fatal(err)
	}
	// steps+1 clocks: after the extra clock the visible output equals the
	// architectural state after `steps` executed instructions.
	for i := 0; i < steps+1; i++ {
		if err := f.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := mm.Acc(f)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestMicroMachine_BasicProgram(t *testing.T) {
	program := [MicroProgramLen]MicroInstr{
		{Op: MicroLdi, Imm: 5},
		{Op: MicroAdd, Imm: 7},
		{Op: MicroXor, Imm: 3},
		{Op: MicroAdd, Imm: 1},
		{Op: MicroNop}, {Op: MicroNop}, {Op: MicroNop}, {Op: MicroNop},
	}
	wantTrace := []uint8{0, 5, 12, 15, 0, 0, 0, 0, 0}
	for steps, want := range wantTrace {
		if got := runMicro(t, program, steps); got != want {
			t.Errorf("after %d instructions acc = %d, want %d", steps, got, want)
		}
		if ref := SimulateMicroProgram(program, steps); ref != want {
			t.Errorf("reference after %d instructions = %d, want %d", steps, ref, want)
		}
	}
}

func TestMicroMachine_PCWrapsAndReexecutes(t *testing.T) {
	program := [MicroProgramLen]MicroInstr{
		{Op: MicroAdd, Imm: 1},
		{Op: MicroNop}, {Op: MicroNop}, {Op: MicroNop},
		{Op: MicroNop}, {Op: MicroNop}, {Op: MicroNop}, {Op: MicroNop},
	}
	// Each full ROM pass adds 1; after 3 passes (24 instructions) acc = 3.
	if got := runMicro(t, program, 24); got != 3 {
		t.Errorf("acc after 3 loop passes = %d, want 3", got)
	}
	f, err := New(MicroMachineCells, 0)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := BuildMicroMachine(f, program)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(mm.Bitstream); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ { // visible PC after 11 clocks = 10 mod 8 = 2
		if err := f.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	pc, err := mm.PC(f)
	if err != nil {
		t.Fatal(err)
	}
	if pc != 2 {
		t.Errorf("visible PC = %d, want 2", pc)
	}
}

func TestMicroMachine_MatchesReference_Property(t *testing.T) {
	// Arbitrary programs agree with the pure-Go reference semantics.
	f := func(raw [MicroProgramLen]uint8, stepsRaw uint8) bool {
		var program [MicroProgramLen]MicroInstr
		for i, r := range raw {
			program[i] = MicroInstr{Op: MicroOp(r >> 4 & 3), Imm: r & 0xF}
		}
		steps := int(stepsRaw % 32)
		fab, err := New(MicroMachineCells, 0)
		if err != nil {
			return false
		}
		mm, err := BuildMicroMachine(fab, program)
		if err != nil {
			return false
		}
		if err := fab.Configure(mm.Bitstream); err != nil {
			return false
		}
		for i := 0; i < steps+1; i++ {
			if err := fab.Step(nil); err != nil {
				return false
			}
		}
		got, err := mm.Acc(fab)
		if err != nil {
			return false
		}
		return got == SimulateMicroProgram(program, steps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildMicroMachine_Rejects(t *testing.T) {
	small, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	var program [MicroProgramLen]MicroInstr
	if _, err := BuildMicroMachine(small, program); err == nil {
		t.Error("undersized fabric accepted")
	}
	big, err := New(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := program
	bad[0] = MicroInstr{Op: MicroOp(7)}
	if _, err := BuildMicroMachine(big, bad); err == nil {
		t.Error("invalid opcode accepted")
	}
	bad = program
	bad[0] = MicroInstr{Op: MicroAdd, Imm: 99}
	if _, err := BuildMicroMachine(big, bad); err == nil {
		t.Error("oversized immediate accepted")
	}
}

func TestMicroOpString(t *testing.T) {
	cases := map[MicroOp]string{MicroNop: "nop", MicroLdi: "ldi", MicroAdd: "add", MicroXor: "xor"}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d prints %q", op, op.String())
		}
	}
	if MicroOp(9).String() == "" {
		t.Error("invalid op prints empty")
	}
}
