package fabric

import (
	"testing"
	"testing/quick"
)

// TestConfigure_RandomBitstreamsNeverPanic feeds arbitrary (valid-source)
// bitstreams: Configure either rejects them (combinational loop) or the
// fabric steps deterministically — never a panic, never an inconsistent
// state. This is the failure-injection test for the configuration path.
func TestConfigure_RandomBitstreamsNeverPanic(t *testing.T) {
	const cells, pins = 12, 4
	f := func(truths [12]uint16, srcRaw [12][4]uint16, ffMask uint16) bool {
		fab, err := New(cells, pins)
		if err != nil {
			return false
		}
		cfg := make([]CellConfig, cells)
		for c := range cfg {
			cfg[c].Truth = truths[c]
			cfg[c].UseFF = ffMask>>uint(c)&1 == 1
			for i := range cfg[c].Inputs {
				sel := srcRaw[c][i]
				switch sel % 4 {
				case 0:
					cfg[c].Inputs[i] = Source{Kind: SourceZero}
				case 1:
					cfg[c].Inputs[i] = Source{Kind: SourceOne}
				case 2:
					cfg[c].Inputs[i] = Source{Kind: SourceCell, Index: int(sel/4) % cells}
				default:
					cfg[c].Inputs[i] = Source{Kind: SourceInput, Index: int(sel/4) % pins}
				}
			}
		}
		if err := fab.Configure(cfg); err != nil {
			return true // rejected: fine (combinational loop)
		}
		// Accepted: two identical step sequences give identical outputs.
		pinsA := make([]bool, pins)
		for i := 0; i < 4; i++ {
			if err := fab.Step(pinsA); err != nil {
				return false
			}
		}
		var outsA [cells]bool
		for c := 0; c < cells; c++ {
			v, err := fab.Output(c)
			if err != nil {
				return false
			}
			outsA[c] = v
		}
		// Reconfigure with the same bitstream and replay.
		if err := fab.Configure(cfg); err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			if err := fab.Step(pinsA); err != nil {
				return false
			}
		}
		for c := 0; c < cells; c++ {
			v, err := fab.Output(c)
			if err != nil || v != outsA[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInvalidSourceBitstreamsRejectedNotPanicking covers the out-of-range
// source paths explicitly.
func TestInvalidSourceBitstreamsRejectedNotPanicking(t *testing.T) {
	fab, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][4]Source{
		{{Kind: SourceCell, Index: -1}},
		{{Kind: SourceCell, Index: 4}},
		{{Kind: SourceInput, Index: -1}},
		{{Kind: SourceInput, Index: 2}},
		{{Kind: SourceKind(42)}},
	}
	for i, inputs := range bad {
		cfg := make([]CellConfig, 4)
		cfg[0].Inputs = inputs
		if err := fab.Configure(cfg); err == nil {
			t.Errorf("bad source set %d accepted", i)
		}
	}
}
