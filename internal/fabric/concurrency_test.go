package fabric

import (
	"sync"
	"testing"
)

// TestStepsSampledWhileStepping clocks a fabric on one goroutine while a
// monitor samples Steps and Reconfigs on another; under -race this pins
// the documented guarantee that the counters are safe to read mid-run.
func TestStepsSampledWhileStepping(t *testing.T) {
	f, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := make([]CellConfig, 4)
	for i := range cfg {
		cfg[i] = CellConfig{Truth: 0xAAAA, Inputs: [4]Source{{Kind: SourceInput, Index: 0}}, UseFF: true}
	}
	if err := f.Configure(cfg); err != nil {
		t.Fatal(err)
	}

	const cycles = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // monitor
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := f.Steps()
			if s < last {
				t.Errorf("Steps went backwards: %d after %d", s, last)
				return
			}
			last = s
			if r := f.Reconfigs(); r != 1 {
				t.Errorf("Reconfigs = %d mid-run", r)
				return
			}
		}
	}()
	pins := []bool{true}
	for i := 0; i < cycles; i++ {
		if err := f.Step(pins); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := f.Steps(); got != cycles {
		t.Fatalf("Steps = %d, want %d", got, cycles)
	}
}

// TestConfigureReusesBuffers pins that reconfiguration clears rather than
// leaks state: registered outputs from the previous bitstream must not be
// visible after Configure.
func TestConfigureReusesBuffers(t *testing.T) {
	f, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := []CellConfig{
		{Truth: 0xFFFF, UseFF: true}, // constant 1 into FF
		{Truth: 0xFFFF, UseFF: true},
	}
	if err := f.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := f.Step([]bool{false}); err != nil {
		t.Fatal(err)
	}
	if err := f.Step([]bool{false}); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Output(0); !v {
		t.Fatal("FF should hold 1 before reconfigure")
	}
	if err := f.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	// Before any post-reconfigure Step, all state must read as reset.
	if v, _ := f.Output(0); v {
		t.Fatal("reconfigure must clear registered state")
	}
	if f.Steps() != 0 {
		t.Fatalf("Steps = %d after reconfigure", f.Steps())
	}
	if f.Reconfigs() != 2 {
		t.Fatalf("Reconfigs = %d", f.Reconfigs())
	}
}
