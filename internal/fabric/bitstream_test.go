package fabric

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBitstream_RoundTrip(t *testing.T) {
	f, err := New(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := BuildAdder(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalBitstream(16, 16, ov.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	cells, inputs, cfg, err := UnmarshalBitstream(data)
	if err != nil {
		t.Fatal(err)
	}
	if cells != 16 || inputs != 16 || len(cfg) != 16 {
		t.Fatalf("decoded shape %dx%d, %d cells", cells, inputs, len(cfg))
	}
	for i := range cfg {
		if cfg[i] != ov.Bitstream[i] {
			t.Fatalf("cell %d changed: %+v -> %+v", i, ov.Bitstream[i], cfg[i])
		}
	}
	// Loading the serialized form behaves identically to the original.
	if err := f.ConfigureFromBitstream(data); err != nil {
		t.Fatal(err)
	}
	sum, err := ov.Add(f, 100, 55)
	if err != nil || sum != 155 {
		t.Errorf("adder through bitstream = (%d, %v)", sum, err)
	}
}

func TestBitstream_RejectsCorruption(t *testing.T) {
	f, _ := New(8, 0)
	ov, err := BuildCounter(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalBitstream(8, 0, ov.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit anywhere: the checksum must catch it.
	for _, pos := range []int{0, 5, 12, len(data) / 2, len(data) - 5} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		if _, _, _, err := UnmarshalBitstream(bad); err == nil {
			t.Errorf("corruption at byte %d undetected", pos)
		}
	}
	// Truncation.
	if _, _, _, err := UnmarshalBitstream(data[:10]); err == nil {
		t.Error("truncated bitstream accepted")
	}
	if _, _, _, err := UnmarshalBitstream(nil); err == nil {
		t.Error("empty bitstream accepted")
	}
}

func TestBitstream_RejectsInvalidConfigs(t *testing.T) {
	// A combinational loop cannot be serialized.
	loop := make([]CellConfig, 2)
	loop[0] = CellConfig{Truth: truthBUF, Inputs: [4]Source{{Kind: SourceCell, Index: 1}}}
	loop[1] = CellConfig{Truth: truthBUF, Inputs: [4]Source{{Kind: SourceCell, Index: 0}}}
	if _, err := MarshalBitstream(2, 0, loop); err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Errorf("loop serialized: %v", err)
	}
	// Shape mismatch at load time.
	good := make([]CellConfig, 2)
	data, err := MarshalBitstream(2, 0, good)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := New(4, 0)
	if err := other.ConfigureFromBitstream(data); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := MarshalBitstream(3, 0, good); err == nil {
		t.Error("count mismatch accepted")
	}
}

// TestBitstream_FuzzNeverPanics: arbitrary bytes are rejected or decode to
// a valid configuration, never panic.
func TestBitstream_FuzzNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _, _, _ = UnmarshalBitstream(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBitstream_SizeMatchesEq2Spirit(t *testing.T) {
	// The serialized size grows with the fabric, like Eq 2's bit count.
	small := make([]CellConfig, 4)
	large := make([]CellConfig, 64)
	sData, err := MarshalBitstream(4, 0, small)
	if err != nil {
		t.Fatal(err)
	}
	lData, err := MarshalBitstream(64, 0, large)
	if err != nil {
		t.Fatal(err)
	}
	if len(lData) <= len(sData) {
		t.Error("bitstream does not grow with the fabric")
	}
}
