// Package fabric simulates the taxonomy's universal-flow spatial processor
// (class USP, Table I row 47): a fine-grained fabric of LUT4+FF cells with
// rich 'vxv' interconnect, the FPGA-like machine whose building blocks are
// finer than an IP or DP and "can assume the role of either IP, DP or a
// memory element" upon reconfiguration.
//
// The simulator is a bit-level netlist engine: every cell owns a 16-bit
// truth table over four inputs, an optional output flip-flop, and four
// input multiplexers that can select any cell output, any external fabric
// input, or a constant. The configuration bitstream is therefore
// 16 + 1 + 4·ceil(log2(sources)) bits per cell — the "enormous
// reconfiguration overhead" of §III.B, which internal/cost's Eq 2 prices
// and the overlays below make concrete: the same machine morphs into a
// data-path (adder), a memory element (register file bit), or an
// instruction processor (a one-hot micro-sequencer) purely by reloading
// configuration bits.
package fabric

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// SourceKind selects what a cell input multiplexer listens to.
type SourceKind int

const (
	// SourceZero feeds constant 0.
	SourceZero SourceKind = iota
	// SourceOne feeds constant 1.
	SourceOne
	// SourceCell feeds the output of another cell.
	SourceCell
	// SourceInput feeds an external fabric input pin.
	SourceInput
)

// Source is one configured input connection.
type Source struct {
	Kind SourceKind
	// Index selects the cell or pin for SourceCell/SourceInput.
	Index int
}

// CellConfig is the configuration of one LUT4+FF cell.
type CellConfig struct {
	// Truth is the LUT4 truth table: output bit for input pattern i is
	// (Truth >> i) & 1, with input 0 the least-significant selector bit.
	Truth uint16
	// UseFF registers the LUT output behind a flip-flop clocked by Step.
	UseFF bool
	// Inputs configures the four input multiplexers.
	Inputs [4]Source
}

// Fabric is one configured universal-flow fabric instance.
type Fabric struct {
	numCells  int
	numInputs int
	cfg       []CellConfig
	// order is the evaluation order of combinational (non-FF) cells.
	order []int
	// q holds registered outputs, out the current cycle's cell outputs.
	q   []bool
	out []bool
	// configured reports that a bitstream has been loaded.
	configured bool
	// reconfigs counts bitstream loads, steps counts clock cycles since the
	// last Configure; totalSteps counts cycles across the fabric's lifetime
	// so traced reconfigurations land on a monotone timeline. They are
	// atomics so a monitoring goroutine may sample Reconfigs/Steps while a
	// Run loop is clocking the fabric; all other Fabric state remains
	// single-goroutine (Configure/Step/Output must not be called
	// concurrently).
	reconfigs, steps, totalSteps atomic.Int64
	// tracer receives reconfiguration events when non-nil.
	tracer obs.Tracer
}

// New builds an unconfigured fabric with the given cell and input-pin count.
func New(numCells, numInputs int) (*Fabric, error) {
	if numCells < 1 {
		return nil, fmt.Errorf("fabric: need at least one cell, got %d", numCells)
	}
	if numInputs < 0 {
		return nil, fmt.Errorf("fabric: negative input count %d", numInputs)
	}
	return &Fabric{
		numCells:  numCells,
		numInputs: numInputs,
		q:         make([]bool, numCells),
		out:       make([]bool, numCells),
	}, nil
}

// Cells returns the fabric's cell count.
func (f *Fabric) Cells() int { return f.numCells }

// Inputs returns the fabric's external input-pin count.
func (f *Fabric) Inputs() int { return f.numInputs }

// ConfigBitsPerCell is the bitstream cost of one cell on this fabric:
// 16 truth-table bits, 1 FF-enable bit, and four input multiplexers each
// selecting among all cells, all input pins and the two constants.
func (f *Fabric) ConfigBitsPerCell() int {
	return 16 + 1 + 4*selectBits(f.numCells+f.numInputs+2)
}

// ConfigBits is the total bitstream size of the fabric.
func (f *Fabric) ConfigBits() int { return f.numCells * f.ConfigBitsPerCell() }

// Reconfigs reports how many bitstreams have been loaded. Safe to call
// from a monitoring goroutine while another goroutine is stepping.
func (f *Fabric) Reconfigs() int64 { return f.reconfigs.Load() }

// SetTracer installs tr to receive a reconfiguration event on every
// Configure, stamped with the fabric's lifetime cycle count and carrying
// the bitstream size in bits. A nil tracer disables tracing.
func (f *Fabric) SetTracer(tr obs.Tracer) { f.tracer = tr }

// Configure loads a bitstream: one CellConfig per cell. It validates every
// source, rejects combinational cycles (loops must pass through a
// flip-flop), precomputes the evaluation order, and resets all state.
func (f *Fabric) Configure(cfg []CellConfig) error {
	if len(cfg) != f.numCells {
		return fmt.Errorf("fabric: bitstream configures %d cells, fabric has %d", len(cfg), f.numCells)
	}
	for ci, c := range cfg {
		for ii, src := range c.Inputs {
			switch src.Kind {
			case SourceZero, SourceOne:
			case SourceCell:
				if src.Index < 0 || src.Index >= f.numCells {
					return fmt.Errorf("fabric: cell %d input %d selects nonexistent cell %d", ci, ii, src.Index)
				}
			case SourceInput:
				if src.Index < 0 || src.Index >= f.numInputs {
					return fmt.Errorf("fabric: cell %d input %d selects nonexistent pin %d", ci, ii, src.Index)
				}
			default:
				return fmt.Errorf("fabric: cell %d input %d has invalid source kind %d", ci, ii, int(src.Kind))
			}
		}
	}

	// Topologically order the combinational cells: an edge c -> d exists
	// when combinational cell d reads combinational cell c. FF outputs are
	// state, not combinational dependencies.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, f.numCells)
	var order []int
	var visit func(int) error
	visit = func(c int) error {
		switch state[c] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("fabric: combinational cycle through cell %d (insert a flip-flop)", c)
		}
		state[c] = visiting
		for _, src := range cfg[c].Inputs {
			if src.Kind == SourceCell && !cfg[src.Index].UseFF {
				if err := visit(src.Index); err != nil {
					return err
				}
			}
		}
		state[c] = done
		order = append(order, c)
		return nil
	}
	for c := 0; c < f.numCells; c++ {
		if !cfg[c].UseFF && state[c] == unvisited {
			if err := visit(c); err != nil {
				return err
			}
		}
	}

	f.cfg = append([]CellConfig(nil), cfg...)
	f.order = order
	// Reuse the state buffers across reconfigurations: a USP workload
	// reconfigures per phase, and the buffers' size depends only on the
	// fabric geometry, which is fixed at New.
	clear(f.q)
	clear(f.out)
	f.configured = true
	f.reconfigs.Add(1)
	f.steps.Store(0)
	if f.tracer != nil {
		f.tracer.Emit(obs.Event{Kind: obs.KindReconfig, Track: obs.TrackMachine,
			Cycle: f.totalSteps.Load(), Arg: int64(f.ConfigBits())})
	}
	return nil
}

// resolve reads one configured source given current outputs and pins.
func (f *Fabric) resolve(src Source, pins []bool) bool {
	switch src.Kind {
	case SourceZero:
		return false
	case SourceOne:
		return true
	case SourceCell:
		return f.out[src.Index]
	default: // SourceInput, validated at Configure
		return pins[src.Index]
	}
}

// lut evaluates a cell's truth table over its four resolved inputs.
func lut(truth uint16, in [4]bool) bool {
	idx := 0
	for i, b := range in {
		if b {
			idx |= 1 << i
		}
	}
	return truth>>uint(idx)&1 == 1
}

// Step advances the fabric one clock cycle with the given input-pin values:
// combinational cells settle in dependency order, then every flip-flop
// captures its LUT value. It returns nothing; read results with Output.
func (f *Fabric) Step(pins []bool) error {
	if !f.configured {
		return fmt.Errorf("fabric: not configured")
	}
	if len(pins) != f.numInputs {
		return fmt.Errorf("fabric: got %d pin values, fabric has %d input pins", len(pins), f.numInputs)
	}
	// FF cells present their registered state.
	for c := 0; c < f.numCells; c++ {
		if f.cfg[c].UseFF {
			f.out[c] = f.q[c]
		}
	}
	// Combinational cells settle.
	for _, c := range f.order {
		var in [4]bool
		for i, src := range f.cfg[c].Inputs {
			in[i] = f.resolve(src, pins)
		}
		f.out[c] = lut(f.cfg[c].Truth, in)
	}
	// Clock edge: FFs capture.
	for c := 0; c < f.numCells; c++ {
		if f.cfg[c].UseFF {
			var in [4]bool
			for i, src := range f.cfg[c].Inputs {
				in[i] = f.resolve(src, pins)
			}
			f.q[c] = lut(f.cfg[c].Truth, in)
		}
	}
	f.steps.Add(1)
	f.totalSteps.Add(1)
	return nil
}

// Output reads a cell's output as of the last Step.
func (f *Fabric) Output(cell int) (bool, error) {
	if cell < 0 || cell >= f.numCells {
		return false, fmt.Errorf("fabric: cell %d out of range [0,%d)", cell, f.numCells)
	}
	return f.out[cell], nil
}

// Steps reports how many clock cycles have run since the last Configure.
// Safe to call from a monitoring goroutine while another goroutine is
// stepping.
func (f *Fabric) Steps() int64 { return f.steps.Load() }

// selectBits is ceil(log2(n)) for n >= 1: the multiplexer select width.
func selectBits(n int) int {
	if n <= 1 {
		return 0
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
