package fabric

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// This file serializes configurations into literal bitstream bytes — the
// artefact a real device's configuration port consumes and the quantity
// Eq 2 counts. The wire format is versioned and checksummed so corrupted
// bitstreams are rejected before they configure anything (failure
// injection for the configuration path).
//
// Layout (little-endian):
//
//	magic   uint32  "FAB1"
//	cells   uint32
//	inputs  uint32
//	per cell: truth uint16, flags uint8 (bit0 = FF),
//	          4 x (kind uint8, index uint32)
//	crc32   uint32  over everything above
const bitstreamMagic = 0x31424146 // "FAB1"

// MarshalBitstream serializes a configuration for a fabric of the given
// shape. The configuration is validated against the shape first.
func MarshalBitstream(numCells, numInputs int, cfg []CellConfig) ([]byte, error) {
	if len(cfg) != numCells {
		return nil, fmt.Errorf("fabric: bitstream for %d cells, got %d configs", numCells, len(cfg))
	}
	probe, err := New(numCells, numInputs)
	if err != nil {
		return nil, err
	}
	if err := probe.Configure(cfg); err != nil {
		return nil, fmt.Errorf("fabric: refusing to serialize an invalid configuration: %w", err)
	}
	buf := make([]byte, 0, 12+len(cfg)*23+4)
	le := binary.LittleEndian
	buf = le.AppendUint32(buf, bitstreamMagic)
	buf = le.AppendUint32(buf, uint32(numCells))
	buf = le.AppendUint32(buf, uint32(numInputs))
	for _, c := range cfg {
		buf = le.AppendUint16(buf, c.Truth)
		var flags uint8
		if c.UseFF {
			flags |= 1
		}
		buf = append(buf, flags)
		for _, src := range c.Inputs {
			buf = append(buf, uint8(src.Kind))
			buf = le.AppendUint32(buf, uint32(src.Index))
		}
	}
	buf = le.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalBitstream parses and validates a serialized bitstream, returning
// the fabric shape and configuration it encodes.
func UnmarshalBitstream(data []byte) (numCells, numInputs int, cfg []CellConfig, err error) {
	le := binary.LittleEndian
	if len(data) < 16 {
		return 0, 0, nil, fmt.Errorf("fabric: bitstream truncated (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-4], le.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, 0, nil, fmt.Errorf("fabric: bitstream checksum mismatch")
	}
	if le.Uint32(body[0:4]) != bitstreamMagic {
		return 0, 0, nil, fmt.Errorf("fabric: bad bitstream magic %#x", le.Uint32(body[0:4]))
	}
	numCells = int(le.Uint32(body[4:8]))
	numInputs = int(le.Uint32(body[8:12]))
	const perCell = 2 + 1 + 4*5
	if len(body) != 12+numCells*perCell {
		return 0, 0, nil, fmt.Errorf("fabric: bitstream length %d does not match %d cells", len(body), numCells)
	}
	cfg = make([]CellConfig, numCells)
	off := 12
	for i := range cfg {
		cfg[i].Truth = le.Uint16(body[off:])
		off += 2
		cfg[i].UseFF = body[off]&1 == 1
		off++
		for j := range cfg[i].Inputs {
			cfg[i].Inputs[j].Kind = SourceKind(body[off])
			off++
			cfg[i].Inputs[j].Index = int(le.Uint32(body[off:]))
			off += 4
		}
	}
	// Validate by configuring a probe fabric.
	probe, err := New(numCells, numInputs)
	if err != nil {
		return 0, 0, nil, err
	}
	if err := probe.Configure(cfg); err != nil {
		return 0, 0, nil, fmt.Errorf("fabric: bitstream decodes to an invalid configuration: %w", err)
	}
	return numCells, numInputs, cfg, nil
}

// ConfigureFromBitstream loads a serialized bitstream onto this fabric; the
// encoded shape must match the fabric's.
func (f *Fabric) ConfigureFromBitstream(data []byte) error {
	cells, inputs, cfg, err := UnmarshalBitstream(data)
	if err != nil {
		return err
	}
	if cells != f.numCells || inputs != f.numInputs {
		return fmt.Errorf("fabric: bitstream is for a %dx%d-pin fabric, this one is %dx%d",
			cells, inputs, f.numCells, f.numInputs)
	}
	return f.Configure(cfg)
}
