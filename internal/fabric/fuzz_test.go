package fabric

import (
	"reflect"
	"testing"
)

// FuzzBitstreamRoundTrip: any byte string UnmarshalBitstream accepts must
// re-marshal (the decoded configuration is valid by definition) and
// unmarshal again to the identical shape and configuration. Rejected
// inputs only assert that the parser fails cleanly — no panic, no
// unbounded allocation — which is the point of fuzzing a configuration
// port.
func FuzzBitstreamRoundTrip(f *testing.F) {
	// A valid 2-cell bitstream: an FF divider reading the inverter, the
	// inverter reading pin 0.
	cfg := []CellConfig{
		{Truth: 0x0002, UseFF: true, Inputs: [4]Source{{Kind: SourceCell, Index: 1}}},
		{Truth: 0x0001, Inputs: [4]Source{{Kind: SourceInput, Index: 0}, {Kind: SourceOne}}},
	}
	bs, err := MarshalBitstream(2, 1, cfg)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bs)
	bad := append([]byte(nil), bs...)
	bad[0] ^= 0xFF // breaks the magic and the checksum
	f.Add(bad)
	f.Add([]byte("FAB1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cells, inputs, cfg, err := UnmarshalBitstream(data)
		if err != nil {
			return // rejected; the parser survived is the property
		}
		out, err := MarshalBitstream(cells, inputs, cfg)
		if err != nil {
			t.Fatalf("accepted bitstream does not re-marshal: %v", err)
		}
		cells2, inputs2, cfg2, err := UnmarshalBitstream(out)
		if err != nil {
			t.Fatalf("re-marshaled bitstream rejected: %v", err)
		}
		if cells2 != cells || inputs2 != inputs {
			t.Fatalf("round trip changed the shape: %dx%d -> %dx%d", cells, inputs, cells2, inputs2)
		}
		if !reflect.DeepEqual(cfg2, cfg) {
			t.Fatalf("round trip changed the configuration:\n%v\n%v", cfg, cfg2)
		}
	})
}
