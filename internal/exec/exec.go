// Package exec is the batch-execution engine: a worker pool that runs
// independent simulations — conformance matrix cells, lockstep replicas,
// survey rows, artefact regenerations — across GOMAXPROCS OS threads while
// keeping every observable property of the serial runner:
//
//   - Determinism: results come back in submission order, indexed like the
//     job slice, regardless of the worker count or completion order. A
//     -workers 8 matrix run is byte-identical to -workers 1.
//   - Isolation: a panicking job is confined to its own Result as a
//     *PanicError carrying the recovered value and stack; the other jobs
//     and the caller are unaffected.
//   - Cancellation: when the context is cancelled, jobs not yet started
//     report ctx.Err() without running; in-flight jobs run to completion
//     (simulation steps are compute-bound and short).
//
// The package is deliberately dependency-free in both directions — it knows
// nothing about machines or kernels — so every layer (internal/conformance,
// internal/modelzoo, the CLIs, the benchmarks) can batch through the same
// engine. This is the reproduction practising what the paper classifies:
// the repo's own fleet of IP/DP organisations now executes as a
// data-parallel workload.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job is one unit of batch work. Jobs must be independent of each other:
// the engine gives no ordering guarantee between their executions, only
// between their results.
type Job[R any] func(ctx context.Context) (R, error)

// Result is one job's outcome, at the index the job was submitted at.
type Result[R any] struct {
	// Value is the job's return value; the zero value on error.
	Value R
	// Err is the job's error, a *PanicError if it panicked, or ctx.Err()
	// if the batch was cancelled before the job started.
	Err error
}

// PanicError wraps a panic recovered inside a job so one poisoned cell
// cannot take down a whole batch.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: job panicked: %v", e.Value)
}

// Observer receives one job's lifecycle timings after it finishes:
// queueWait is the delay between batch submission (the Run call) and the
// job starting on a worker — the time the job spent waiting for a pool
// slot — and run is the job's own execution time. err is the job's final
// verdict, including fenced panics. Observers are called concurrently from
// the worker goroutines and must be safe for that; jobs cancelled before
// any worker picked them up are not observed (they never entered the
// pool). The serving layer uses this to attribute a request's wall time
// between queueing and execution without the engine knowing anything about
// spans or metrics.
//
// An observer applies only to the batch whose Run (or Map) call sees it in
// the context: Run detaches it from the context it hands to jobs, so a job
// that itself fans out through exec reports nothing to the outer observer —
// its indices would be meaningless in the outer batch's frame.
type Observer func(index int, queueWait, run time.Duration, err error)

// observerKey carries a batch Observer through the context.
type observerKey struct{}

// WithObserver returns a context under which Run and Map report per-job
// timings to fn. A nil fn returns ctx unchanged.
func WithObserver(ctx context.Context, fn Observer) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, observerKey{}, fn)
}

// observerFrom extracts the batch observer, nil when none is attached.
func observerFrom(ctx context.Context) Observer {
	fn, _ := ctx.Value(observerKey{}).(Observer)
	return fn
}

// Workers resolves a worker-count setting: n itself when positive,
// otherwise GOMAXPROCS (the CLI flags pass runtime.NumCPU(), so 0 only
// means "pick for me" in library use).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the jobs on up to `workers` goroutines (clamped to the job
// count; <= 0 means GOMAXPROCS) and returns their results in submission
// order. It never returns an error itself: per-job failures, panics and
// cancellations are all in the Result slice, so a batch is always fully
// accounted for.
func Run[R any](ctx context.Context, workers int, jobs []Job[R]) []Result[R] {
	results := make([]Result[R], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers = Workers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	obs := observerFrom(ctx)
	var batchStart time.Time
	if obs != nil {
		batchStart = time.Now()
		// Detach the observer from the jobs' context so nested batches
		// don't report out-of-frame indices to it.
		ctx = context.WithValue(ctx, observerKey{}, Observer(nil))
	}

	if workers == 1 {
		// The serial fast path keeps single-worker batches on the caller's
		// goroutine: no channel traffic, easier profiles, same results.
		for i, job := range jobs {
			results[i] = runOne(ctx, i, job, obs, batchStart)
		}
		return results
	}

	// Feed indices through a channel; each worker writes only results[i]
	// for the indices it drew, so the slice needs no lock and the output
	// order is the submission order by construction.
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(ctx, i, jobs[i], obs, batchStart)
			}
		}()
	}
	// The feeder selects on ctx.Done() so a cancellation observed while the
	// workers are busy stops the submission immediately instead of queueing
	// the remaining indices behind in-flight jobs. Unsubmitted jobs report
	// ctx.Err() directly — the same verdict runOne would give them — so the
	// result slice stays fully accounted and the workers exit as soon as
	// their current job finishes, with no queued work left to drain.
	unsent := -1
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			unsent = i
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if unsent >= 0 {
		err := ctx.Err()
		for i := unsent; i < len(jobs); i++ {
			results[i] = Result[R]{Err: err}
		}
	}
	return results
}

// runOne executes a single job with cancellation check and panic fencing.
// The observer defer is registered before the recover defer so it runs
// after it and reports the fenced *PanicError, not a half-set result.
func runOne[R any](ctx context.Context, i int, job Job[R], obs Observer, batchStart time.Time) (res Result[R]) {
	if obs != nil {
		jobStart := time.Now()
		defer func() {
			obs(i, jobStart.Sub(batchStart), time.Since(jobStart), res.Err)
		}()
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	defer func() {
		if r := recover(); r != nil {
			stack := make([]byte, 16<<10)
			stack = stack[:runtime.Stack(stack, false)]
			res.Err = &PanicError{Value: r, Stack: stack}
		}
	}()
	res.Value, res.Err = job(ctx)
	return res
}

// Map runs fn over every item with Run's guarantees: results in item order,
// panics fenced per item, cancellation honoured between items.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, item T) (R, error)) []Result[R] {
	jobs := make([]Job[R], len(items))
	for i := range items {
		item := items[i]
		jobs[i] = func(ctx context.Context) (R, error) { return fn(ctx, item) }
	}
	return Run(ctx, workers, jobs)
}

// Values unwraps a result slice whose jobs cannot fail structurally: it
// returns the values in order plus the first error encountered (nil when
// the whole batch succeeded). Use it when one failure should fail the
// batch; inspect the Result slice directly for per-job verdicts.
func Values[R any](results []Result[R]) ([]R, error) {
	out := make([]R, len(results))
	var firstErr error
	for i, r := range results {
		out[i] = r.Value
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("exec: job %d: %w", i, r.Err)
		}
	}
	return out, firstErr
}
