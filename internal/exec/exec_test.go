package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunDeterministicOrder pins the engine's core guarantee: results land
// at their submission index for every worker count, even when jobs finish
// wildly out of order.
func TestRunDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const jobsN = 64
	for trial := 0; trial < 20; trial++ {
		workers := rng.Intn(12) - 2 // includes <=0 (GOMAXPROCS) and 1 (serial path)
		jobs := make([]Job[int], jobsN)
		for i := range jobs {
			i := i
			delay := time.Duration(rng.Intn(300)) * time.Microsecond
			jobs[i] = func(ctx context.Context) (int, error) {
				time.Sleep(delay)
				return i * i, nil
			}
		}
		results := Run(context.Background(), workers, jobs)
		if len(results) != jobsN {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), jobsN)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Value != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r.Value, i*i)
			}
		}
	}
}

// TestRunAllJobsRunOnce counts executions: every job runs exactly once no
// matter how many workers contend for the queue.
func TestRunAllJobsRunOnce(t *testing.T) {
	var counts [100]atomic.Int32
	jobs := make([]Job[struct{}], len(counts))
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (struct{}, error) {
			counts[i].Add(1)
			return struct{}{}, nil
		}
	}
	Run(context.Background(), 8, jobs)
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

// TestRunPanicIsolation checks a panicking job surfaces as *PanicError in
// its own slot while every other job completes normally.
func TestRunPanicIsolation(t *testing.T) {
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			if i == 4 {
				panic(fmt.Sprintf("poisoned cell %d", i))
			}
			return i, nil
		}
	}
	for _, workers := range []int{1, 4} {
		results := Run(context.Background(), workers, jobs)
		for i, r := range results {
			if i == 4 {
				var pe *PanicError
				if !errors.As(r.Err, &pe) {
					t.Fatalf("workers=%d: job 4 err = %v, want *PanicError", workers, r.Err)
				}
				if pe.Value != "poisoned cell 4" {
					t.Fatalf("workers=%d: panic value %v", workers, pe.Value)
				}
				if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "exec") {
					t.Fatalf("workers=%d: panic stack missing", workers)
				}
				if !strings.Contains(pe.Error(), "poisoned cell 4") {
					t.Fatalf("workers=%d: Error() = %q", workers, pe.Error())
				}
				continue
			}
			if r.Err != nil || r.Value != i {
				t.Fatalf("workers=%d: job %d = (%d, %v), want (%d, nil)", workers, i, r.Value, r.Err, i)
			}
		}
	}
}

// TestRunCancellation cancels mid-batch: started jobs complete, unstarted
// jobs report ctx.Err() without running, and Run still returns a fully
// populated slice.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job[int], 50)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			ran.Add(1)
			if i < 2 {
				<-release // hold the two workers until cancel lands
			}
			return i, nil
		}
	}
	var results []Result[int]
	done := make(chan struct{})
	go func() {
		results = Run(ctx, 2, jobs)
		close(done)
	}()
	for ran.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done

	var completed, cancelled int
	for i, r := range results {
		switch {
		case r.Err == nil:
			if r.Value != i {
				t.Fatalf("job %d value %d", i, r.Value)
			}
			completed++
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("job %d unexpected error %v", i, r.Err)
		}
	}
	if completed < 2 {
		t.Fatalf("held jobs should have completed, got %d", completed)
	}
	if cancelled == 0 {
		t.Fatal("expected some jobs cancelled before starting")
	}
	if int(ran.Load()) != completed {
		t.Fatalf("%d jobs ran but %d completed", ran.Load(), completed)
	}
}

// TestMapCancelMidSubmissionNoLeak is the regression pin for the feeder's
// cancellation path: with every worker held mid-job, a context cancelled
// during submission must (a) stop the feeder immediately instead of queueing
// the remaining indices behind the busy workers, (b) account every
// unsubmitted job with ctx.Err(), and (c) leave no worker goroutine behind
// once the in-flight jobs finish — the goroutine count returns to its
// pre-batch baseline.
func TestMapCancelMidSubmissionNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	const workers, n = 4, 256
	var started atomic.Int32
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	// Cancel once all the workers are pinned inside their first job, so the
	// feeder is observed blocked mid-submission.
	go func() {
		for started.Load() < workers {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	results := Map(ctx, workers, items, func(ctx context.Context, item int) (int, error) {
		started.Add(1)
		if item < workers {
			<-ctx.Done() // hold every worker until the cancel lands
		}
		return item * 2, nil
	})

	// Map is synchronous: by the time it returns the feeder has stopped and
	// the held jobs have completed. Every result must be accounted for.
	var completed, cancelled int
	for i, r := range results {
		switch {
		case r.Err == nil:
			if r.Value != i*2 {
				t.Fatalf("job %d value %d, want %d", i, r.Value, i*2)
			}
			completed++
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("job %d unexpected error %v", i, r.Err)
		}
	}
	if completed+cancelled != n {
		t.Fatalf("accounted %d+%d results, want %d", completed, cancelled, n)
	}
	if completed < workers {
		t.Fatalf("the %d held jobs must complete, got %d completions", workers, completed)
	}
	if cancelled == 0 {
		t.Fatal("expected queued jobs to be cancelled without running")
	}
	// Only jobs the feeder actually submitted may have started: the held
	// workers plus at most the handful drawn before the cancel was observed.
	if int(started.Load()) != completed {
		t.Fatalf("%d jobs started but %d completed: a job ran after cancellation", started.Load(), completed)
	}

	// Worker-goroutine leak check: poll until the count drops back to the
	// baseline (the runtime needs a moment to retire exited goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+1 { // +1: the cancel helper may still be retiring
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count %d did not return to baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunEmptyAndNil covers the degenerate inputs.
func TestRunEmptyAndNil(t *testing.T) {
	if got := Run[int](context.Background(), 4, nil); len(got) != 0 {
		t.Fatalf("nil jobs: %d results", len(got))
	}
	//lint:ignore SA1012 passing nil context is part of Run's documented contract
	if got := Run(nil, 0, []Job[int]{func(ctx context.Context) (int, error) { return 1, nil }}); got[0].Value != 1 {
		t.Fatalf("nil ctx: %+v", got[0])
	}
}

// TestWorkers pins the flag-resolution helper.
func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive passthrough")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("non-positive must resolve to at least one worker")
	}
}

// TestMap checks the item-slice adapter preserves order and item identity.
func TestMap(t *testing.T) {
	items := []string{"iup", "iap", "imp", "isp", "dmp", "usp"}
	results := Map(context.Background(), 3, items, func(ctx context.Context, s string) (string, error) {
		return strings.ToUpper(s), nil
	})
	for i, r := range results {
		if r.Err != nil || r.Value != strings.ToUpper(items[i]) {
			t.Fatalf("item %d: (%q, %v)", i, r.Value, r.Err)
		}
	}
}

// TestValues checks the unwrap helper: ordered values plus first error.
func TestValues(t *testing.T) {
	ok := []Result[int]{{Value: 1}, {Value: 2}}
	vals, err := Values(ok)
	if err != nil || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("ok batch: %v %v", vals, err)
	}
	bad := []Result[int]{{Value: 1}, {Err: errors.New("boom")}, {Err: errors.New("later")}}
	if _, err := Values(bad); err == nil || !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("want first error wrapped with index, got %v", err)
	}
}

// TestRunSharedStateRace is the -race canary: workers aggregating into a
// shared counter through atomics must be clean, and the results slice
// itself must not race despite being written by many goroutines.
func TestRunSharedStateRace(t *testing.T) {
	var total atomic.Int64
	var mu sync.Mutex
	seen := map[int]bool{}
	jobs := make([]Job[int], 200)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			total.Add(int64(i))
			mu.Lock()
			seen[i] = true
			mu.Unlock()
			return i, nil
		}
	}
	results := Run(context.Background(), 16, jobs)
	want := int64(len(jobs) * (len(jobs) - 1) / 2)
	if total.Load() != want {
		t.Fatalf("total %d, want %d", total.Load(), want)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("saw %d jobs", len(seen))
	}
	for i, r := range results {
		if r.Value != i {
			t.Fatalf("results[%d] = %d", i, r.Value)
		}
	}
}
