package mimd

import (
	"fmt"
	"testing"

	"repro/internal/isa"
)

// ringProgs builds per-core ring-exchange programs that send `rounds`
// values to the right neighbour and receive as many from the left.
func ringProgs(cores, rounds int) []isa.Program {
	progs := make([]isa.Program, cores)
	for i := range progs {
		progs[i] = isa.MustAssemble(fmt.Sprintf(`
        ldi  r1, %d          ; my value seed
        ldi  r2, %d          ; right neighbour
        ldi  r3, %d          ; left neighbour
        ldi  r4, 0           ; round
        ldi  r5, %d          ; rounds
loop:   beq  r4, r5, done
        send r1, r2
        recv r1, r3
        addi r4, r4, 1
        jmp  loop
done:   st   r1, [r0+0]
        halt
`, 100+i, (i+1)%cores, (i-1+cores)%cores, rounds))
	}
	return progs
}

// TestBusDPDP_SerializesRelativeToCrossbar is the RaPiD ablation: the same
// IMP-II machine with its 'x' switch realized as a shared bus is slower
// and records far more conflict cycles than with a full crossbar — "the
// buses are not scalable and so is the RaPiD" (§IV), measured.
func TestBusDPDP_SerializesRelativeToCrossbar(t *testing.T) {
	const cores, rounds = 8, 16
	run := func(bus bool) (cycles, conflicts int64) {
		cfg, err := ForSubtype(2, cores, 16)
		if err != nil {
			t.Fatal(err)
		}
		cfg.BusDPDP = bus
		m, err := New(cfg, ringProgs(cores, rounds))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Correctness: after `rounds` ring rotations each core holds the
		// value seeded rounds positions to its left.
		for core := 0; core < cores; core++ {
			out, err := m.ReadBank(core, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := isa.Word(100 + ((core-rounds)%cores+cores)%cores)
			if out[0] != want {
				t.Fatalf("bus=%v core %d holds %d, want %d", bus, core, out[0], want)
			}
		}
		return stats.Cycles, stats.NetConflictCycles
	}
	xbarCycles, xbarConf := run(false)
	busCycles, busConf := run(true)
	if busCycles <= xbarCycles {
		t.Errorf("bus (%d cycles) not slower than crossbar (%d cycles)", busCycles, xbarCycles)
	}
	if busConf <= xbarConf {
		t.Errorf("bus conflicts (%d) not above crossbar's (%d)", busConf, xbarConf)
	}
	// Ring traffic on a crossbar is a permutation: conflict-free.
	if xbarConf != 0 {
		t.Errorf("crossbar ring traffic conflicted: %d cycles", xbarConf)
	}
}

// TestBusDPDP_ClassUnchanged: the bus is still an 'x' switch to the
// taxonomy — the class and flexibility do not move.
func TestBusDPDP_ClassUnchanged(t *testing.T) {
	cfg, err := ForSubtype(2, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BusDPDP = true
	c, err := cfg.Class()
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "IMP-II" {
		t.Errorf("bus-based machine classifies as %s, want IMP-II", c)
	}
}
