// Package mimd simulates the taxonomy's instruction-flow multi-processors
// (classes IMP-I..XVI, Table I rows 15-30): n instruction processors each
// driving a data processor, with the sub-type's switch kinds deciding what
// the machine can do:
//
//   - IP-IM direct: each core fetches from its own program image (the
//     separate-Von-Neumann-machines shape of IMP-I); IP-IM crossbar lets any
//     core be pointed at any program image, so one image can drive all cores
//     (single-program-multiple-data without copying).
//   - DP-DM direct: each core addresses only its own bank; crossbar gives a
//     single global address space over all banks, with output contention.
//   - DP-DP none: cores cannot exchange words at all; crossbar carries
//     SEND/RECV messages with per-pair FIFO ordering.
//
// Cores run asynchronously (own program counters) and synchronize only via
// SYNC barriers or message waits — the property the paper uses to argue
// IMP-I is more flexible than IAP-I ("IMP-I can act as an array processor
// if all the processors are executing the same program. However, IAP-I
// cannot execute n different programs at the same time").
package mimd

import (
	"fmt"

	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/taxonomy"
)

// Config describes one multi-processor instance.
type Config struct {
	// Cores is the number of IP+DP pairs n.
	Cores int
	// BankWords is each core's data-memory bank size.
	BankWords int
	// IPDP is kept for classification completeness (direct in all IMP
	// sub-types I..VIII, crossbar in IX..XVI); it does not change timing.
	IPDP taxonomy.Link
	// IPIM selects private program images (direct) or an image crossbar.
	IPIM taxonomy.Link
	// DPDM selects local (direct) or global crossbar memory addressing.
	DPDM taxonomy.Link
	// DPDP selects the message network: none or crossbar.
	DPDP taxonomy.Link
	// BusDPDP realizes the DP-DP 'x' switch as a single shared bus instead
	// of a full crossbar: the cheap implementation RaPiD's row buses use,
	// whose serialization is the paper's §IV scalability complaint. The
	// taxonomy class is unchanged (a bus is still an 'x' switch); only the
	// timing differs.
	BusDPDP bool
	// MaxCycles bounds the run; 0 means machine.DefaultMaxCycles.
	MaxCycles int64
	// Tracer, when non-nil, receives run events: one track per core, barrier
	// releases on the machine track, network stalls on the sending core's
	// track. Nil disables tracing.
	Tracer obs.Tracer
	// Backend selects the execution engine; the zero value resolves to the
	// compiled backend. All backends are architecturally identical (results,
	// Stats, traced events) — see machine.Backend.
	Backend machine.Backend
}

// ForSubtype returns the configuration of IMP sub-type 1..16 with the
// paper's bit order: IP-DP, IP-IM, DP-DM, DP-DP from most to least
// significant.
func ForSubtype(sub, cores, bankWords int) (Config, error) {
	if sub < 1 || sub > 16 {
		return Config{}, fmt.Errorf("mimd: multi-processors have sub-types I..XVI, got %d", sub)
	}
	bits := sub - 1
	pick := func(bit int, off, on taxonomy.Link) taxonomy.Link {
		if bits&bit != 0 {
			return on
		}
		return off
	}
	return Config{
		Cores:     cores,
		BankWords: bankWords,
		IPDP:      pick(8, taxonomy.LinkDirect, taxonomy.LinkCrossbar),
		IPIM:      pick(4, taxonomy.LinkDirect, taxonomy.LinkCrossbar),
		DPDM:      pick(2, taxonomy.LinkDirect, taxonomy.LinkCrossbar),
		DPDP:      pick(1, taxonomy.LinkNone, taxonomy.LinkCrossbar),
	}, nil
}

// Class returns the taxonomy class this configuration realizes.
func (c Config) Class() (taxonomy.Class, error) {
	links := taxonomy.Links{
		taxonomy.SiteIPDP: c.IPDP,
		taxonomy.SiteIPIM: c.IPIM,
		taxonomy.SiteDPDM: c.DPDM,
		taxonomy.SiteDPDP: c.DPDP,
	}
	return taxonomy.Classify(taxonomy.CountN, taxonomy.CountN, links)
}

func (c Config) validate() error {
	if c.Cores < 2 {
		return fmt.Errorf("mimd: a multi-processor needs n >= 2 cores, got %d (use uniproc for 1)", c.Cores)
	}
	if c.BankWords < 1 {
		return fmt.Errorf("mimd: bank size must be >= 1 word, got %d", c.BankWords)
	}
	if c.IPDP != taxonomy.LinkDirect && c.IPDP != taxonomy.LinkCrossbar {
		return fmt.Errorf("mimd: IP-DP must be direct or crossbar, got %v", c.IPDP)
	}
	if c.IPIM != taxonomy.LinkDirect && c.IPIM != taxonomy.LinkCrossbar {
		return fmt.Errorf("mimd: IP-IM must be direct or crossbar, got %v", c.IPIM)
	}
	if c.DPDM != taxonomy.LinkDirect && c.DPDM != taxonomy.LinkCrossbar {
		return fmt.Errorf("mimd: DP-DM must be direct or crossbar, got %v", c.DPDM)
	}
	if c.DPDP != taxonomy.LinkNone && c.DPDP != taxonomy.LinkCrossbar {
		return fmt.Errorf("mimd: DP-DP must be none or crossbar, got %v", c.DPDP)
	}
	return nil
}

// message is one word in flight between cores.
type message struct {
	val         isa.Word
	availableAt int64
}

// coreState tracks one core's execution.
type coreState struct {
	regs    machine.Regs
	pc      int
	prog    int // index into the machine's program images
	halted  bool
	readyAt int64
	// inBarrier marks a core waiting at the current SYNC; barrierAt is the
	// cycle it arrived (for traced wait spans).
	inBarrier bool
	barrierAt int64
}

// Machine is one multi-processor instance.
type Machine struct {
	cfg      Config
	programs []isa.Program
	// decoded holds the pre-decoded form of each program image; cores
	// dispatch on it in the scheduler loop.
	decoded []isa.DecodedProgram
	cores   []coreState
	banks   []machine.Memory
	memNet  interconnect.Network
	msgNet  interconnect.Network
	// mail[src][dst] is the in-order message queue between one core pair.
	mail [][][]message
	// perCore accumulates each core's retired instructions and last-active
	// cycle for load-balance analysis.
	perCore []CoreStats
	// envs holds one prebuilt environment per core; the closures read the
	// cycle/finish fields below, refreshed by the scheduler per step.
	envs   []machine.Env
	cycle  int64
	finish int64
	// backend is the resolved engine; with the compiled backend, ops holds
	// one threaded per-op chain per program image. The cross-core network
	// and barrier timing keeps the cycle-by-cycle scheduler either way —
	// only the per-instruction dispatch changes.
	backend machine.Backend
	ops     [][]machine.OpFn
}

// CoreStats summarises one core's activity in a run.
type CoreStats struct {
	// Instructions is the core's retired instruction count.
	Instructions int64
	// FinishedAt is the cycle the core halted (0 if it never ran).
	FinishedAt int64
}

// New builds a multi-processor. With IP-IM direct there must be exactly one
// program image per core (core i runs programs[i]). With the IP-IM crossbar
// any positive number of images is allowed and every core starts on image
// 0; use Assign to point cores at other images.
func New(cfg Config, programs []isa.Program) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(programs) == 0 {
		return nil, fmt.Errorf("mimd: no program images")
	}
	for i, p := range programs {
		if len(p) == 0 {
			return nil, fmt.Errorf("mimd: program image %d is empty", i)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("mimd: program image %d: %w", i, err)
		}
	}
	if cfg.IPIM == taxonomy.LinkDirect && len(programs) != cfg.Cores {
		return nil, fmt.Errorf("mimd: IP-IM is direct, need one program image per core (%d), got %d",
			cfg.Cores, len(programs))
	}
	m := &Machine{
		cfg:      cfg,
		programs: programs,
		decoded:  make([]isa.DecodedProgram, len(programs)),
		cores:    make([]coreState, cfg.Cores),
		banks:    make([]machine.Memory, cfg.Cores),
		perCore:  make([]CoreStats, cfg.Cores),
	}
	for i, p := range programs {
		m.decoded[i] = isa.Predecode(p)
	}
	m.backend = cfg.Backend.Resolve()
	if m.backend == machine.BackendCompiled {
		m.ops = make([][]machine.OpFn, len(programs))
		for i := range m.decoded {
			m.ops[i] = machine.Compile(m.decoded[i], machine.CompileOptions{}).Ops()
		}
	}
	// On any failure past this point the cleanup returns the banks
	// acquired so far to their pool; success disarms it.
	built := false
	defer func() {
		if !built {
			m.Release()
		}
	}()
	for i := range m.cores {
		if cfg.IPIM == taxonomy.LinkDirect {
			m.cores[i].prog = i
		}
		bank, err := machine.GetMemory(cfg.BankWords)
		if err != nil {
			return nil, err
		}
		m.banks[i] = bank
	}
	if cfg.DPDM == taxonomy.LinkCrossbar {
		net, err := interconnect.NewCrossbar(cfg.Cores)
		if err != nil {
			return nil, err
		}
		m.memNet = obs.ObserveNetwork(net, cfg.Tracer)
	}
	if cfg.DPDP == taxonomy.LinkCrossbar {
		var net interconnect.Network
		var err error
		if cfg.BusDPDP {
			net, err = interconnect.NewBus(cfg.Cores)
		} else {
			net, err = interconnect.NewCrossbar(cfg.Cores)
		}
		if err != nil {
			return nil, err
		}
		m.msgNet = obs.ObserveNetwork(net, cfg.Tracer)
		m.mail = make([][][]message, cfg.Cores)
		for i := range m.mail {
			m.mail[i] = make([][]message, cfg.Cores)
		}
	}
	m.envs = make([]machine.Env, cfg.Cores)
	for i := range m.envs {
		m.envs[i] = m.coreEnv(i)
	}
	built = true
	return m, nil
}

// Release returns the machine's pooled banks. The machine must not be used
// afterwards.
func (m *Machine) Release() {
	for i := range m.banks {
		machine.PutMemory(m.banks[i])
		m.banks[i] = nil
	}
}

// Assign points core at program image. It requires the IP-IM crossbar: on
// direct wiring each instruction processor can only see its own image.
func (m *Machine) Assign(core, image int) error {
	if m.cfg.IPIM != taxonomy.LinkCrossbar {
		return fmt.Errorf("mimd: IP-IM is direct; core %d cannot be re-pointed at image %d", core, image)
	}
	if core < 0 || core >= m.cfg.Cores {
		return fmt.Errorf("mimd: core %d out of range [0,%d)", core, m.cfg.Cores)
	}
	if image < 0 || image >= len(m.programs) {
		return fmt.Errorf("mimd: image %d out of range [0,%d)", image, len(m.programs))
	}
	m.cores[core].prog = image
	return nil
}

// Cores returns the core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// CoreStats returns each core's activity after Run, for load-balance
// analysis: who retired how many instructions and when each core halted.
// It must only be called after Run returns: the per-core counters are
// plain fields the scheduler writes without synchronisation, so sampling
// them from another goroutine mid-run is a data race (use an obs.Tracer
// for live monitoring instead).
func (m *Machine) CoreStats() []CoreStats {
	return append([]CoreStats(nil), m.perCore...)
}

// LoadBank copies vals into a core's bank at base (bank-local addressing).
func (m *Machine) LoadBank(core, base int, vals []isa.Word) error {
	if core < 0 || core >= m.cfg.Cores {
		return fmt.Errorf("mimd: core %d out of range [0,%d)", core, m.cfg.Cores)
	}
	return m.banks[core].CopyIn(base, vals)
}

// ReadBank reads n words from a core's bank at base.
func (m *Machine) ReadBank(core, base, n int) ([]isa.Word, error) {
	if core < 0 || core >= m.cfg.Cores {
		return nil, fmt.Errorf("mimd: core %d out of range [0,%d)", core, m.cfg.Cores)
	}
	return m.banks[core].CopyOut(base, n)
}

// resolveAddr maps a core's address under the DP-DM kind.
func (m *Machine) resolveAddr(core int, addr isa.Word) (bank int, off isa.Word, err error) {
	if m.cfg.DPDM == taxonomy.LinkDirect {
		if addr < 0 || addr >= isa.Word(m.cfg.BankWords) {
			return 0, 0, fmt.Errorf("mimd: core %d address %d outside its bank of %d words (DP-DM is direct)",
				core, addr, m.cfg.BankWords)
		}
		return core, addr, nil
	}
	total := isa.Word(m.cfg.BankWords) * isa.Word(m.cfg.Cores)
	if addr < 0 || addr >= total {
		return 0, 0, fmt.Errorf("mimd: core %d global address %d outside %d words", core, addr, total)
	}
	return int(addr) / m.cfg.BankWords, addr % isa.Word(m.cfg.BankWords), nil
}

// Run executes all cores to completion and returns aggregate statistics.
// The scheduler is deterministic: one simulated cycle at a time, stepping
// ready cores in index order.
func (m *Machine) Run() (machine.Stats, error) {
	var stats machine.Stats
	budget := m.cfg.MaxCycles
	if budget <= 0 {
		budget = machine.DefaultMaxCycles
	}

	running := 0
	for i := range m.cores {
		if m.cores[i].pc < len(m.programs[m.cores[i].prog]) {
			running++
		} else {
			m.cores[i].halted = true
		}
	}

	for cycle := int64(0); running > 0; cycle++ {
		if cycle >= budget {
			m.collectNetStats(&stats)
			stats.Cycles = cycle
			return stats, fmt.Errorf("mimd: %w after %d cycles", machine.ErrDeadline, cycle)
		}
		progress := false
		anyScheduledLater := false
		for i := range m.cores {
			c := &m.cores[i]
			if c.halted || c.inBarrier {
				continue
			}
			if c.readyAt > cycle {
				anyScheduledLater = true
				continue
			}
			dec := m.decoded[c.prog]
			if c.pc < 0 || c.pc >= len(dec) {
				c.halted = true
				running--
				progress = true
				continue
			}
			d := &dec[c.pc]
			m.cycle, m.finish = cycle, cycle+1
			env := &m.envs[i]
			env.Now = cycle
			var out machine.Outcome
			var err error
			switch {
			case m.ops != nil:
				out, err = m.ops[c.prog][c.pc](&c.regs, env)
			case m.backend == machine.BackendInterp:
				out, err = machine.Step(&c.regs, c.pc, m.programs[c.prog][c.pc], *env)
			default:
				out, err = machine.StepDecoded(&c.regs, c.pc, d, env)
			}
			finish := m.finish
			if err != nil {
				m.collectNetStats(&stats)
				stats.Cycles = cycle
				return stats, fmt.Errorf("mimd: core %d pc %d: %w", i, c.pc, err)
			}
			if out.Blocked {
				if d.Op == isa.OpSync {
					c.inBarrier = true
					c.barrierAt = cycle
					progress = true // entering the barrier is progress
					m.tryReleaseBarrier(cycle+1, &stats)
				}
				// Blocked RECV: retry next cycle.
				c.readyAt = cycle + 1
				continue
			}
			progress = true
			stats.Instructions++
			m.perCore[i].Instructions++
			isALU := d.IsALU()
			if isALU {
				stats.ALUOps++
			}
			if m.cfg.Tracer != nil {
				flags := obs.FlagHasOp
				if isALU {
					flags |= obs.FlagALU
				}
				m.cfg.Tracer.Emit(obs.Event{Kind: obs.KindInstr, Flags: flags, Track: int32(i),
					Cycle: cycle, Dur: finish - cycle, Arg: int64(d.Op)})
			}
			if out.Mem {
				if d.Op == isa.OpLd {
					stats.MemReads++
				} else {
					stats.MemWrites++
				}
			}
			if out.Comm {
				stats.Messages++
			}
			c.pc = out.NextPC
			c.readyAt = finish
			if out.Halted || c.pc >= len(dec) {
				c.halted = true
				m.perCore[i].FinishedAt = finish
				running--
			}
			if stats.Cycles < finish {
				stats.Cycles = finish
			}
		}
		if !progress && !anyScheduledLater {
			// A core may have halted after the others entered the barrier;
			// the barrier is then releasable among the remaining live cores.
			if m.tryReleaseBarrierNow(cycle+1, &stats) {
				continue
			}
			// Every live core is blocked on RECV or stuck in a barrier that
			// can never release: deadlock.
			m.collectNetStats(&stats)
			stats.Cycles = cycle
			return stats, fmt.Errorf("mimd: deadlock at cycle %d: all %d live cores blocked", cycle, running)
		}
	}
	m.collectNetStats(&stats)
	return stats, nil
}

// coreEnv builds one core's reusable environment. The closures read the
// machine's cycle/finish fields, refreshed by the scheduler before every
// step, so this runs once per core at construction instead of once per
// instruction.
func (m *Machine) coreEnv(core int) machine.Env {
	env := machine.Env{Lane: isa.Word(core), Tracer: m.cfg.Tracer, Track: int32(core)}
	env.Load = func(addr isa.Word) (isa.Word, error) {
		bank, off, err := m.resolveAddr(core, addr)
		if err != nil {
			return 0, err
		}
		m.accountMem(core, bank, m.cycle, &m.finish)
		return m.banks[bank].Load(off)
	}
	env.Store = func(addr, val isa.Word) error {
		bank, off, err := m.resolveAddr(core, addr)
		if err != nil {
			return err
		}
		m.accountMem(core, bank, m.cycle, &m.finish)
		return m.banks[bank].Store(off, val)
	}
	if m.msgNet != nil {
		env.SendTo = func(peer int, val isa.Word) error {
			if peer < 0 || peer >= m.cfg.Cores {
				return fmt.Errorf("mimd: core %d sends to nonexistent core %d", core, peer)
			}
			arrival, err := m.msgNet.Transfer(m.cycle, core, peer)
			if err != nil {
				return err
			}
			if arrival+1 > m.finish {
				m.finish = arrival + 1
			}
			m.mail[core][peer] = append(m.mail[core][peer], message{val: val, availableAt: arrival})
			return nil
		}
		env.RecvFrom = func(peer int) (isa.Word, error) {
			if peer < 0 || peer >= m.cfg.Cores {
				return 0, fmt.Errorf("mimd: core %d receives from nonexistent core %d", core, peer)
			}
			q := m.mail[peer][core]
			if len(q) == 0 || q[0].availableAt > m.cycle {
				return 0, machine.ErrWouldBlock
			}
			v := q[0].val
			m.mail[peer][core] = q[1:]
			return v, nil
		}
	}
	env.Barrier = func() error { return machine.ErrWouldBlock } // resolved by tryReleaseBarrier
	return env
}

// tryReleaseBarrierNow is tryReleaseBarrier reporting whether it released.
func (m *Machine) tryReleaseBarrierNow(releaseCycle int64, stats *machine.Stats) bool {
	before := stats.Barriers
	m.tryReleaseBarrier(releaseCycle, stats)
	return stats.Barriers > before
}

// tryReleaseBarrier releases all cores once every live core waits at SYNC.
func (m *Machine) tryReleaseBarrier(releaseCycle int64, stats *machine.Stats) {
	waiting := 0
	live := 0
	for i := range m.cores {
		if m.cores[i].halted {
			continue
		}
		live++
		if m.cores[i].inBarrier {
			waiting++
		}
	}
	if live == 0 || waiting < live {
		return
	}
	for i := range m.cores {
		if m.cores[i].halted || !m.cores[i].inBarrier {
			continue
		}
		m.cores[i].inBarrier = false
		m.cores[i].pc++ // step past the SYNC
		m.cores[i].readyAt = releaseCycle
		stats.Instructions++
		m.perCore[i].Instructions++
		if m.cfg.Tracer != nil {
			// The SYNC retires at release; its span covers the wait.
			wait := releaseCycle - m.cores[i].barrierAt
			m.cfg.Tracer.Emit(obs.Event{Kind: obs.KindInstr, Flags: obs.FlagHasOp, Track: int32(i),
				Cycle: m.cores[i].barrierAt, Dur: wait, Arg: int64(isa.OpSync)})
			m.cfg.Tracer.Emit(obs.Event{Kind: obs.KindWait, Track: int32(i),
				Cycle: m.cores[i].barrierAt, Dur: wait})
		}
	}
	stats.Barriers++
	if m.cfg.Tracer != nil {
		m.cfg.Tracer.Emit(obs.Event{Kind: obs.KindBarrier, Track: obs.TrackMachine, Cycle: releaseCycle})
	}
	if stats.Cycles < releaseCycle {
		stats.Cycles = releaseCycle
	}
}

// accountMem charges the DP-DM traversal.
func (m *Machine) accountMem(core, bank int, cycle int64, finish *int64) {
	if m.memNet == nil {
		if cycle+2 > *finish {
			*finish = cycle + 2
		}
		return
	}
	arrival, err := m.memNet.Transfer(cycle, core, bank)
	if err != nil {
		panic(fmt.Sprintf("mimd: internal memory network error: %v", err))
	}
	if arrival+1 > *finish {
		*finish = arrival + 1
	}
}

// collectNetStats folds interconnect counters into the run stats.
func (m *Machine) collectNetStats(stats *machine.Stats) {
	if m.memNet != nil {
		stats.NetConflictCycles += m.memNet.Stats().ConflictCycles
	}
	if m.msgNet != nil {
		stats.NetConflictCycles += m.msgNet.Stats().ConflictCycles
	}
}
