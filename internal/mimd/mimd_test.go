package mimd

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/taxonomy"
)

func mustConfig(t *testing.T, sub, cores, bank int) Config {
	t.Helper()
	cfg, err := ForSubtype(sub, cores, bank)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestForSubtype_ClassRoundTrip(t *testing.T) {
	for sub := 1; sub <= 16; sub++ {
		cfg := mustConfig(t, sub, 4, 64)
		c, err := cfg.Class()
		if err != nil {
			t.Errorf("sub %d: %v", sub, err)
			continue
		}
		want := "IMP-" + taxonomy.Roman(sub)
		if c.String() != want {
			t.Errorf("sub %d classifies as %s, want %s", sub, c, want)
		}
	}
	if _, err := ForSubtype(0, 4, 64); err == nil {
		t.Error("sub 0 accepted")
	}
	if _, err := ForSubtype(17, 4, 64); err == nil {
		t.Error("sub 17 accepted")
	}
}

// privateProg computes (core-specific constant)^2 into local bank word 0.
func privateProg(k int) isa.Program {
	return isa.MustAssemble(fmt.Sprintf(`
        ldi r1, %d
        mul r2, r1, r1
        st  r2, [r0+0]
        halt
`, k))
}

func TestIMP1_IndependentPrograms(t *testing.T) {
	// IMP-I: separate Von Neumann machines, each with its own image.
	cfg := mustConfig(t, 1, 4, 16)
	progs := []isa.Program{privateProg(2), privateProg(3), privateProg(4), privateProg(5)}
	m, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for core, want := range []isa.Word{4, 9, 16, 25} {
		out, err := m.ReadBank(core, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != want {
			t.Errorf("core %d result %d, want %d", core, out[0], want)
		}
	}
	if stats.Instructions != 16 {
		t.Errorf("instructions = %d, want 16", stats.Instructions)
	}
	// MIMD overlap: 4 cores x 4 instructions complete in far fewer than 16
	// serial cycles.
	if stats.Cycles > 8 {
		t.Errorf("cycles = %d, cores did not run in parallel", stats.Cycles)
	}
}

func TestIMP1_RequiresOneImagePerCore(t *testing.T) {
	cfg := mustConfig(t, 1, 4, 16)
	if _, err := New(cfg, []isa.Program{privateProg(1)}); err == nil {
		t.Error("IMP-I accepted a single shared image (IP-IM is direct)")
	}
}

func TestIPIMCrossbar_SharedImageSPMD(t *testing.T) {
	// IMP-V has the IP-IM crossbar: all cores can point at image 0, giving
	// SPMD from one image — the paper's "IMP can act as an array processor".
	cfg := mustConfig(t, 5, 4, 16)
	spmd := isa.MustAssemble(`
        lane r1
        muli r2, r1, 10
        st   r2, [r0+0]
        halt
`)
	m, err := New(cfg, []isa.Program{spmd})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 4; core++ {
		out, err := m.ReadBank(core, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != isa.Word(core*10) {
			t.Errorf("core %d = %d, want %d", core, out[0], core*10)
		}
	}
}

func TestAssign(t *testing.T) {
	cfg := mustConfig(t, 5, 2, 16) // IP-IM crossbar
	images := []isa.Program{privateProg(2), privateProg(7)}
	m, err := New(cfg, images)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Assign(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 2; core++ {
		out, _ := m.ReadBank(core, 0, 1)
		if out[0] != 49 {
			t.Errorf("core %d = %d, want 49", core, out[0])
		}
	}
	if err := m.Assign(0, 9); err == nil {
		t.Error("bad image accepted")
	}
	if err := m.Assign(9, 0); err == nil {
		t.Error("bad core accepted")
	}
	direct, err := New(mustConfig(t, 1, 2, 16), []isa.Program{privateProg(1), privateProg(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.Assign(0, 1); err == nil {
		t.Error("Assign allowed on direct IP-IM")
	}
}

func TestDPDMCrossbar_SharedMemory(t *testing.T) {
	// IMP-III: global address space. Core 0 writes, core 1 polls and reads.
	cfg := mustConfig(t, 3, 2, 16)
	writer := isa.MustAssemble(`
        ldi r1, 123
        st  r1, [r0+5]       ; global address 5 (bank 0)
        ldi r2, 1
        st  r2, [r0+6]       ; flag
        halt
`)
	reader := isa.MustAssemble(`
        ldi r3, 1
poll:   ld  r1, [r0+6]
        bne r1, r3, poll
        ld  r2, [r0+5]
        st  r2, [r0+16]      ; global address 16 = bank 1 word 0
        halt
`)
	m, err := New(cfg, []isa.Program{writer, reader})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadBank(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 123 {
		t.Errorf("shared-memory handoff = %d, want 123", out[0])
	}
}

func TestIMP1_NoSharedMemory(t *testing.T) {
	// On IMP-I the reader cannot even address core 0's bank.
	cfg := mustConfig(t, 1, 2, 16)
	farLoad := isa.MustAssemble(`
        ldi r1, 16
        ld  r2, [r1+0]       ; address 16 is outside the 16-word local bank
        halt
`)
	m, err := New(cfg, []isa.Program{farLoad, isa.MustAssemble("halt")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "direct") {
		t.Errorf("far load on IMP-I: %v", err)
	}
}

func TestDPDPCrossbar_MessagePassing(t *testing.T) {
	// IMP-II: message ring over 4 cores; each core sends its id+100 right
	// and stores what it receives from the left.
	const cores = 4
	cfg := mustConfig(t, 2, cores, 16)
	progs := make([]isa.Program, cores)
	for i := range progs {
		progs[i] = isa.MustAssemble(fmt.Sprintf(`
        ldi  r1, %d          ; value
        ldi  r2, %d          ; right neighbour
        send r1, r2
        ldi  r3, %d          ; left neighbour
        recv r4, r3
        st   r4, [r0+0]
        halt
`, 100+i, (i+1)%cores, (i-1+cores)%cores))
	}
	m, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < cores; core++ {
		out, _ := m.ReadBank(core, 0, 1)
		want := isa.Word(100 + (core-1+cores)%cores)
		if out[0] != want {
			t.Errorf("core %d received %d, want %d", core, out[0], want)
		}
	}
	if stats.Messages != 2*cores {
		t.Errorf("messages = %d, want %d", stats.Messages, 2*cores)
	}
}

func TestIMP1_CannotMessage(t *testing.T) {
	cfg := mustConfig(t, 1, 2, 16)
	sender := isa.MustAssemble("ldi r2, 1\nsend r1, r2\nhalt")
	m, err := New(cfg, []isa.Program{sender, isa.MustAssemble("halt")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "DP-DP") {
		t.Errorf("send on IMP-I: %v", err)
	}
}

func TestBarrier(t *testing.T) {
	// Two cores: core 0 works a while, core 1 arrives at the barrier first;
	// after the barrier core 1 reads what core 0 wrote before it.
	cfg := mustConfig(t, 3, 2, 16) // shared memory for the handoff
	worker := isa.MustAssemble(`
        ldi r1, 50
        ldi r2, 0
        ldi r3, 1
spin:   sub r1, r1, r3
        bne r1, r2, spin
        ldi r4, 77
        st  r4, [r0+3]
        sync
        halt
`)
	waiter := isa.MustAssemble(`
        sync
        ld  r1, [r0+3]
        st  r1, [r0+16]      ; bank 1 word 0
        halt
`)
	m, err := New(cfg, []isa.Program{worker, waiter})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := m.ReadBank(1, 0, 1)
	if out[0] != 77 {
		t.Errorf("post-barrier read = %d, want 77", out[0])
	}
	if stats.Barriers != 1 {
		t.Errorf("barriers = %d, want 1", stats.Barriers)
	}
}

func TestBarrier_SurvivesHaltedCore(t *testing.T) {
	// One core halts immediately; the remaining cores' barrier still
	// releases among the live cores.
	cfg := mustConfig(t, 1, 3, 16)
	m, err := New(cfg, []isa.Program{
		isa.MustAssemble("halt"),
		isa.MustAssemble("sync\nhalt"),
		isa.MustAssemble("sync\nhalt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Errorf("barrier with a halted core: %v", err)
	}
}

func TestDeadlock_RecvWithoutSend(t *testing.T) {
	cfg := mustConfig(t, 2, 2, 16)
	m, err := New(cfg, []isa.Program{
		isa.MustAssemble("ldi r2, 1\nrecv r1, r2\nhalt"),
		isa.MustAssemble("ldi r2, 0\nrecv r1, r2\nhalt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("mutual recv: %v, want deadlock", err)
	}
}

func TestDeadline(t *testing.T) {
	cfg := mustConfig(t, 1, 2, 16)
	cfg.MaxCycles = 200
	m, err := New(cfg, []isa.Program{
		isa.MustAssemble("loop: jmp loop"),
		isa.MustAssemble("halt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, machine.ErrDeadline) {
		t.Errorf("livelock: %v", err)
	}
}

func TestHotBankContention(t *testing.T) {
	// All cores hammer bank 0 through the shared-memory crossbar.
	const cores = 8
	cfg := mustConfig(t, 3, cores, 16)
	progs := make([]isa.Program, cores)
	for i := range progs {
		progs[i] = isa.MustAssemble(`
        ld r1, [r0+0]
        ld r1, [r0+0]
        ld r1, [r0+0]
        halt
`)
	}
	m, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NetConflictCycles == 0 {
		t.Error("hot bank recorded no conflicts")
	}
	if stats.MemReads != 3*cores {
		t.Errorf("reads = %d", stats.MemReads)
	}
}

func TestGuestErrors(t *testing.T) {
	cfg := mustConfig(t, 2, 2, 16)
	m, err := New(cfg, []isa.Program{
		isa.MustAssemble("ldi r2, 9\nsend r1, r2\nhalt"), // core 9 does not exist
		isa.MustAssemble("halt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Error("send to core 9 accepted")
	}
	m2, err := New(cfg, []isa.Program{
		isa.MustAssemble("ldi r2, -2\nrecv r1, r2\nhalt"),
		isa.MustAssemble("halt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); err == nil {
		t.Error("recv from core -2 accepted")
	}
}

func TestNew_Rejects(t *testing.T) {
	good := mustConfig(t, 1, 2, 16)
	if _, err := New(good, nil); err == nil {
		t.Error("no images accepted")
	}
	if _, err := New(good, []isa.Program{nil, nil}); err == nil {
		t.Error("empty images accepted")
	}
	if _, err := New(good, []isa.Program{{{Op: isa.OpJmp, Imm: 7}}, privateProg(1)}); err == nil {
		t.Error("invalid image accepted")
	}
	bad := good
	bad.Cores = 1
	if _, err := New(bad, []isa.Program{privateProg(1)}); err == nil {
		t.Error("1-core multiprocessor accepted")
	}
	bad = good
	bad.BankWords = 0
	if _, err := New(bad, []isa.Program{privateProg(1), privateProg(2)}); err == nil {
		t.Error("0-word banks accepted")
	}
	bad = good
	bad.DPDP = taxonomy.LinkDirect
	if _, err := New(bad, []isa.Program{privateProg(1), privateProg(2)}); err == nil {
		t.Error("DP-DP direct accepted")
	}
	bad = good
	bad.IPIM = taxonomy.LinkNone
	if _, err := New(bad, []isa.Program{privateProg(1), privateProg(2)}); err == nil {
		t.Error("IP-IM none accepted")
	}
	bad = good
	bad.IPDP = taxonomy.LinkNone
	if _, err := New(bad, []isa.Program{privateProg(1), privateProg(2)}); err == nil {
		t.Error("IP-DP none accepted")
	}
	bad = good
	bad.DPDM = taxonomy.LinkVariable
	if _, err := New(bad, []isa.Program{privateProg(1), privateProg(2)}); err == nil {
		t.Error("DP-DM variable accepted")
	}
}

func TestCoreStats_LoadBalance(t *testing.T) {
	// Core 0 runs a long loop, core 1 a single halt: the per-core stats
	// expose the imbalance the aggregate numbers hide.
	cfg := mustConfig(t, 1, 2, 16)
	busy := isa.MustAssemble(`
        ldi r1, 20
        ldi r2, 0
loop:   addi r1, r1, -1
        bne r1, r2, loop
        halt
`)
	m, err := New(cfg, []isa.Program{busy, isa.MustAssemble("halt")})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	per := m.CoreStats()
	if len(per) != 2 {
		t.Fatalf("%d core stats", len(per))
	}
	if per[0].Instructions <= per[1].Instructions {
		t.Errorf("busy core %d instructions, idle core %d", per[0].Instructions, per[1].Instructions)
	}
	if per[0].Instructions+per[1].Instructions != stats.Instructions {
		t.Errorf("per-core sum %d != aggregate %d",
			per[0].Instructions+per[1].Instructions, stats.Instructions)
	}
	if per[0].FinishedAt <= per[1].FinishedAt {
		t.Errorf("busy core finished at %d, idle at %d", per[0].FinishedAt, per[1].FinishedAt)
	}
	if per[0].FinishedAt != stats.Cycles {
		t.Errorf("last core finished at %d, makespan %d", per[0].FinishedAt, stats.Cycles)
	}
	// The accessor returns a copy.
	per[0].Instructions = -1
	if m.CoreStats()[0].Instructions == -1 {
		t.Error("CoreStats returned shared state")
	}
}

func TestBankAccessors_Reject(t *testing.T) {
	m, err := New(mustConfig(t, 1, 2, 8), []isa.Program{privateProg(1), privateProg(2)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 2 {
		t.Errorf("Cores() = %d", m.Cores())
	}
	if err := m.LoadBank(5, 0, nil); err == nil {
		t.Error("LoadBank(5) accepted")
	}
	if _, err := m.ReadBank(-1, 0, 1); err == nil {
		t.Error("ReadBank(-1) accepted")
	}
}
