package mimd

import (
	"testing"

	"repro/internal/isa"
)

// TestRelease pins the pooling contract: released banks go back to the
// pool, a second Release is a no-op, and a machine built afterwards
// (likely reusing the pooled banks) starts zeroed.
func TestRelease(t *testing.T) {
	prog := isa.MustAssemble(`
        ldi  r1, 11
        st   r1, [r0+0]
        halt
`)
	m, err := New(mustConfig(t, 1, 4, 16), []isa.Program{prog, prog, prog, prog})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	m.Release()
	m.Release()

	halt := isa.MustAssemble("halt")
	m2, err := New(mustConfig(t, 1, 4, 16), []isa.Program{halt, halt, halt, halt})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Release()
	for core := 0; core < 4; core++ {
		out, err := m2.ReadBank(core, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 0 {
			t.Fatalf("core %d sees stale memory word %d", core, out[0])
		}
	}
}
