// Package modelzoo turns Table III survey entries into runnable machine
// instances: it classifies an architecture description, picks the simulator
// for its class (internal/simd for the IAP rows, internal/mimd for IMP,
// internal/dataflow for DMP, internal/uniproc for IUP, internal/fabric for
// USP) and sizes it from the printed block counts. A MorphoSys entry
// becomes a 64-lane IAP-II machine, the quad Cortex-A9 a 4-core IMP-I,
// REDEFINE a 64-PE DMP-IV — so the survey is not just classified but
// executed, and the classes' operational differences show up on the same
// kernel.
//
// ISP rows (DRRA, Matrix) are instantiated through internal/spatial with
// singleton groups by default; USP rows get the LUT fabric running the
// adder overlay. The zoo runs one canonical kernel — element-wise vector
// add — because every class can express it; classes differ in how.
package modelzoo

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/spatial"
	"repro/internal/spec"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

// Instance describes one instantiated survey machine.
type Instance struct {
	// Name is the architecture's survey name.
	Name string
	// Class is the taxonomy class the description resolved to.
	Class taxonomy.Class
	// Processors is the concrete parallel width used (lanes, cores or PEs;
	// 1 for uni-processors, cells for the fabric).
	Processors int
}

// Result is one zoo run.
type Result struct {
	Instance Instance
	// Stats is the kernel run's statistics.
	Stats machine.Stats
}

// DefaultWidth is the parallel width used when a survey row is symbolic
// (n, m, v) or too large to instantiate directly.
const DefaultWidth = 8

// MaxWidth caps instantiated parallel widths so 64-lane survey rows stay
// fast to simulate; the printed count is clamped, not rejected.
const MaxWidth = 64

// resolveWidth picks the instantiated processor count for a survey row.
func resolveWidth(r spec.Resolved) int {
	w := r.ConcreteDPs
	if w == 0 {
		w = DefaultWidth
	}
	if w > MaxWidth {
		w = MaxWidth
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunVecAdd instantiates the architecture and runs the canonical vector-add
// kernel over n elements (n must shard evenly over the instantiated width;
// widths are powers of two or small counts in the survey, so multiples of
// 64·MaxWidth always work — 1024 is a safe default).
func RunVecAdd(arch spec.Architecture, n int) (Result, error) {
	r, err := spec.Resolve(arch)
	if err != nil {
		return Result{}, err
	}
	class, err := taxonomy.Classify(r.IPs, r.DPs, r.Links)
	if err != nil {
		return Result{}, fmt.Errorf("modelzoo: %s: %w", arch.Name, err)
	}
	width := resolveWidth(r)
	inst := Instance{Name: arch.Name, Class: class, Processors: width}

	// Shard sizes must divide evenly; survey widths (2, 4, 5, 6, 8, 16,
	// 48, 64) do not share a convenient lcm, so round n down to the
	// nearest multiple of the width instead of rejecting.
	if n < width {
		n = width
	}
	n -= n % width

	a := make([]isa.Word, n)
	b := make([]isa.Word, n)
	for i := range a {
		a[i] = isa.Word(i%31 + 1)
		b[i] = isa.Word(i%29 + 3)
	}

	var res workload.Result
	switch {
	case class.Name.Machine == taxonomy.UniversalFlow:
		inst.Processors = 1
		res, err = workload.VecAddFabric(16, clampWords(a, 1<<15), clampWords(b, 1<<15))
	case class.Name.Machine == taxonomy.DataFlow:
		if class.Name.Proc == taxonomy.UniProcessor {
			inst.Processors = 1
			res, err = workload.VecAddDataflow(1, 1, a, b)
		} else {
			res, err = workload.VecAddDataflow(class.Name.Sub, width, a, b)
		}
	case class.Name.Proc == taxonomy.UniProcessor:
		inst.Processors = 1
		res, err = workload.VecAddUni(a, b)
	case class.Name.Proc == taxonomy.ArrayProcessor:
		res, err = workload.VecAddSIMD(class.Name.Sub, width, a, b)
	case class.Name.Proc == taxonomy.MultiProcessor:
		res, err = workload.VecAddMIMD(class.Name.Sub, width, a, b)
	case class.Name.Proc == taxonomy.SpatialProcessor:
		res.Stats, err = runSpatialVecAdd(width, n, a, b)
	default:
		return Result{}, fmt.Errorf("modelzoo: %s: no runner for class %s", arch.Name, class)
	}
	if err != nil {
		return Result{}, fmt.Errorf("modelzoo: %s (%s): %w", arch.Name, class, err)
	}
	return Result{Instance: inst, Stats: res.Stats}, nil
}

// runSpatialVecAdd executes the vector add on an ISP fabric configured as
// singleton control groups (its multi-processor morph), using lane-local
// addressing.
func runSpatialVecAdd(cells, n int, a, b []isa.Word) (machine.Stats, error) {
	if cells < 2 {
		cells = 2
	}
	if n%cells != 0 {
		return machine.Stats{}, fmt.Errorf("%d elements do not shard over %d cells", n, cells)
	}
	m := n / cells
	prog, err := vecAddLocalProgram(m)
	if err != nil {
		return machine.Stats{}, err
	}
	// Sub-type II keeps DP-DM direct so each cell sees its own bank.
	sm, err := spatial.New(spatial.Config{Cores: cells, BankWords: 3*m + 16, Sub: 2})
	if err != nil {
		return machine.Stats{}, err
	}
	defer sm.Release()
	for c := 0; c < cells; c++ {
		if err := sm.Compose(c, nil, prog); err != nil {
			return machine.Stats{}, err
		}
		chunk := append(append([]isa.Word{}, a[c*m:(c+1)*m]...), b[c*m:(c+1)*m]...)
		if err := sm.LoadBank(c, 0, chunk); err != nil {
			return machine.Stats{}, err
		}
	}
	stats, err := sm.Run()
	if err != nil {
		return machine.Stats{}, err
	}
	// Validate the result like the workload runners do.
	for c := 0; c < cells; c++ {
		out, err := sm.ReadBank(c, 2*m, m)
		if err != nil {
			return machine.Stats{}, err
		}
		for i, v := range out {
			want := a[c*m+i] + b[c*m+i]
			if v != want {
				return machine.Stats{}, fmt.Errorf("cell %d element %d = %d, want %d", c, i, v, want)
			}
		}
	}
	return stats, nil
}

// vecAddLocalProgram is the lane-local vector-add loop (a at [0,m), b at
// [m,2m), c at [2m,3m)).
func vecAddLocalProgram(m int) (isa.Program, error) {
	if m < 1 {
		return nil, fmt.Errorf("modelzoo: chunk must be >= 1, got %d", m)
	}
	return isa.Assemble(fmt.Sprintf(`
        ldi  r1, 0
        ldi  r2, %d
loop:   beq  r1, r2, done
        ld   r3, [r1+0]
        addi r4, r1, %d
        ld   r5, [r4+0]
        add  r6, r3, r5
        addi r7, r1, %d
        st   r6, [r7+0]
        addi r1, r1, 1
        jmp  loop
done:   halt
`, m, m, 2*m))
}

func clampWords(v []isa.Word, limit isa.Word) []isa.Word {
	out := make([]isa.Word, len(v))
	for i, x := range v {
		out[i] = x % limit
	}
	return out
}

// RunSurvey runs the canonical kernel on every instantiable survey entry
// and returns the results in row order. Entries whose class genuinely
// cannot run the kernel (none in the current survey) would report an error.
func RunSurvey(entries []spec.Architecture, n int) ([]Result, error) {
	return RunSurveyParallel(context.Background(), entries, n, 1)
}

// RunSurveyParallel is RunSurvey across the given number of workers (<= 0
// means GOMAXPROCS). Each survey row is an independent simulation, so the
// batch engine preserves row order exactly; workers == 1 reproduces the
// serial RunSurvey byte for byte.
func RunSurveyParallel(ctx context.Context, entries []spec.Architecture, n, workers int) ([]Result, error) {
	results := exec.Map(ctx, workers, entries, func(ctx context.Context, arch spec.Architecture) (Result, error) {
		return RunVecAdd(arch, n)
	})
	return exec.Values(results)
}
