package modelzoo

import (
	"testing"

	"repro/internal/registry"
	"repro/internal/spec"
)

func TestRunVecAdd_WholeSurvey(t *testing.T) {
	// Every one of the 25 surveyed architectures instantiates and runs the
	// canonical kernel: the survey is executable, not just a table.
	for _, e := range registry.All() {
		res, err := RunVecAdd(e.Arch, 256)
		if err != nil {
			t.Errorf("%s: %v", e.Arch.Name, err)
			continue
		}
		if res.Instance.Class.String() != e.PrintedName {
			t.Errorf("%s instantiated as %s, survey prints %s",
				e.Arch.Name, res.Instance.Class, e.PrintedName)
		}
		if res.Stats.Cycles <= 0 {
			t.Errorf("%s: no cycles simulated", e.Arch.Name)
		}
	}
}

func TestRunVecAdd_ConcreteWidths(t *testing.T) {
	cases := map[string]int{
		"MorphoSys":             64, // printed 64 DPs
		"IMAGINE":               6,
		"Montium":               5,
		"ELM processor":         2,
		"Cortex-A9 (Quad core)": 4,
		"PADDI-2":               48,
		"Colt":                  16,
		"Redefine":              64,
		"ARM7TDMI":              1, // uni-processor
		"FPGA":                  1, // fabric runner
		"Pact XPP":              DefaultWidth,
		"DRRA":                  DefaultWidth,
	}
	for name, want := range cases {
		e, ok := registry.Find(name)
		if !ok {
			t.Fatalf("%s missing from registry", name)
		}
		res, err := RunVecAdd(e.Arch, 960) // 960 = lcm-friendly for 2..8, 16, 48, 64... rounded per width
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Instance.Processors != want {
			t.Errorf("%s instantiated with %d processors, want %d", name, res.Instance.Processors, want)
		}
	}
}

func TestRunVecAdd_ParallelBeatsSerial(t *testing.T) {
	arm, _ := registry.Find("ARM7TDMI")
	morpho, _ := registry.Find("MorphoSys")
	serial, err := RunVecAdd(arm.Arch, 512)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunVecAdd(morpho.Arch, 512)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Stats.Cycles >= serial.Stats.Cycles {
		t.Errorf("MorphoSys (%d cycles) not faster than ARM7TDMI (%d cycles)",
			parallel.Stats.Cycles, serial.Stats.Cycles)
	}
}

func TestRunVecAdd_RoundsProblemSize(t *testing.T) {
	e, _ := registry.Find("Montium") // width 5
	res, err := RunVecAdd(e.Arch, 7) // rounds down to 5
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance.Processors != 5 {
		t.Errorf("width %d", res.Instance.Processors)
	}
	// Tiny n below the width rounds up to one element per lane.
	if _, err := RunVecAdd(e.Arch, 1); err != nil {
		t.Errorf("n=1: %v", err)
	}
}

func TestRunVecAdd_Rejects(t *testing.T) {
	bad := spec.Architecture{
		Name: "Broken", IPs: "1", DPs: "1",
		IPIP: "none", IPDP: "??", IPIM: "1-1", DPDM: "1-1", DPDP: "none",
	}
	if _, err := RunVecAdd(bad, 64); err == nil {
		t.Error("unparseable architecture accepted")
	}
	ni := spec.Architecture{
		Name: "NIShape", IPs: "4", DPs: "1",
		IPIP: "none", IPDP: "4-1", IPIM: "4-4", DPDM: "1-1", DPDP: "none",
	}
	if _, err := RunVecAdd(ni, 64); err == nil {
		t.Error("NI shape instantiated")
	}
}

func TestRunSurvey(t *testing.T) {
	col := registry.Survey()
	results, err := RunSurvey(col.Architectures, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 25 {
		t.Fatalf("%d results", len(results))
	}
	bad := append([]spec.Architecture{}, col.Architectures...)
	bad[0].DPDM = "??"
	if _, err := RunSurvey(bad, 128); err == nil {
		t.Error("broken entry accepted")
	}
}
