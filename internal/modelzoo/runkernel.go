package modelzoo

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

// Kernels lists every kernel RunKernel accepts, across all classes (support
// varies by class). It is the same vocabulary as the conformance matrix and
// cmd/simulate's -kernel flag.
func Kernels() []string {
	return []string{"vecadd", "dot", "reduce", "fir", "matmul", "scan", "stencil"}
}

// KnownKernel reports whether name is in the Kernels vocabulary.
func KnownKernel(name string) bool {
	for _, k := range Kernels() {
		if k == name {
			return true
		}
	}
	return false
}

// kernelErr lists the kernels a runner supports when asked for one it
// doesn't.
func kernelErr(kernel string, have ...string) error {
	return fmt.Errorf("modelzoo: unknown kernel %q (have %s)", kernel, strings.Join(have, ", "))
}

// KernelInputs builds the deterministic operand vectors every RunKernel call
// uses — the same generator cmd/simulate and the conformance matrix share,
// so a served simulation reproduces the runs users see locally.
func KernelInputs(n int) (a, b []isa.Word) {
	a = make([]isa.Word, n)
	b = make([]isa.Word, n)
	for i := range a {
		a[i] = isa.Word(i%97 + 1)
		b[i] = isa.Word(i%89 + 2)
	}
	return a, b
}

// RunKernel executes one workload kernel on the simulator of the named
// class — the dispatch cmd/simulate performs, packaged for reuse by the
// serving layer. The run is fully deterministic in (class, kernel, n,
// procs): inputs derive from n alone, so repeated calls return identical
// stats and outputs.
func RunKernel(c taxonomy.Class, kernel string, n, procs int, opts ...workload.Option) (workload.Result, error) {
	a, b := KernelInputs(n)
	switch {
	case c.String() == "IUP":
		return runUniKernel(kernel, a, b, opts)
	case c.Name.Machine == taxonomy.InstructionFlow && c.Name.Proc == taxonomy.ArrayProcessor:
		return runSIMDKernel(kernel, c.Name.Sub, procs, a, b, opts)
	case c.Name.Machine == taxonomy.InstructionFlow && c.Name.Proc == taxonomy.MultiProcessor:
		return runMIMDKernel(kernel, c.Name.Sub, procs, a, b, opts)
	case c.Name.Machine == taxonomy.DataFlow:
		if kernel != "vecadd" {
			return workload.Result{}, kernelErr(kernel, "vecadd")
		}
		return workload.VecAddDataflow(c.Name.Sub, procs, a, b, opts...)
	case c.Name.Machine == taxonomy.UniversalFlow:
		if kernel != "vecadd" {
			return workload.Result{}, kernelErr(kernel, "vecadd")
		}
		return workload.VecAddFabric(16, clampWords(a, 1<<15), clampWords(b, 1<<15), opts...)
	default:
		return workload.Result{}, fmt.Errorf("modelzoo: no simulator runner for class %s (ISP demos live in examples and internal/spatial)", c)
	}
}

func runUniKernel(kernel string, a, b []isa.Word, opts []workload.Option) (workload.Result, error) {
	switch kernel {
	case "vecadd":
		return workload.VecAddUni(a, b, opts...)
	case "dot", "reduce":
		return workload.DotUni(a, b, opts...)
	case "fir":
		x, h := firInput(len(a))
		return workload.FIRUni(x, h, opts...)
	default:
		return workload.Result{}, kernelErr(kernel, "vecadd", "dot", "reduce", "fir")
	}
}

func runSIMDKernel(kernel string, sub, lanes int, a, b []isa.Word, opts []workload.Option) (workload.Result, error) {
	switch kernel {
	case "vecadd":
		return workload.VecAddSIMD(sub, lanes, a, b, opts...)
	case "dot", "reduce":
		if sub == 1 || sub == 3 { // no DP-DP switch: butterfly impossible
			return workload.DotSIMDPartial(sub, lanes, a, b, opts...)
		}
		return workload.DotSIMD(sub, lanes, a, b, opts...)
	case "fir":
		x, h := firInput(len(a))
		return workload.FIRSIMD(sub, lanes, x, h, opts...)
	case "stencil":
		return workload.Stencil3SIMD(sub, lanes, a, opts...)
	default:
		return workload.Result{}, kernelErr(kernel, "vecadd", "dot", "reduce", "fir", "stencil")
	}
}

func runMIMDKernel(kernel string, sub, cores int, a, b []isa.Word, opts []workload.Option) (workload.Result, error) {
	switch kernel {
	case "vecadd":
		return workload.VecAddMIMD(sub, cores, a, b, opts...)
	case "dot", "reduce":
		if (sub-1)&1 == 0 { // no DP-DP switch: butterfly impossible
			return workload.DotMIMDPartial(sub, cores, a, b, opts...)
		}
		return workload.DotMIMD(sub, cores, a, b, opts...)
	case "scan":
		return workload.ScanMIMD(sub, cores, a, opts...)
	case "stencil":
		return workload.Stencil3MIMD(sub, cores, a, opts...)
	case "matmul":
		// C = A x B with rows = n, inner dim and columns fixed at 8. The
		// DP-DM switch kind picks the strategy: replicated B on direct
		// banks, shared B through the crossbar.
		const k, cols = 8, 8
		rows := len(a)
		am := make([]isa.Word, rows*k)
		bm := make([]isa.Word, k*cols)
		for i := range am {
			am[i] = isa.Word(i%23 + 1)
		}
		for i := range bm {
			bm[i] = isa.Word(i%19 + 1)
		}
		if (sub-1)&2 != 0 {
			return workload.MatMulMIMDShared(sub, cores, am, bm, rows, k, cols, opts...)
		}
		return workload.MatMulMIMDReplicated(sub, cores, am, bm, rows, k, cols, opts...)
	default:
		return workload.Result{}, kernelErr(kernel, "vecadd", "dot", "reduce", "fir", "matmul", "scan", "stencil")
	}
}

// firInput derives an 8-tap FIR input at output length n: the samples extend
// with the ghost overlap the kernels need.
func firInput(n int) (x, h []isa.Word) {
	const taps = 8
	x = make([]isa.Word, n+taps-1)
	for i := range x {
		x[i] = isa.Word(i%31 + 1)
	}
	h = make([]isa.Word, taps)
	for i := range h {
		h[i] = isa.Word(i + 1)
	}
	return x, h
}
