package modelzoo

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

// Kernel names one workload kernel in the shared vocabulary used by the
// conformance matrix, cmd/simulate's -kernel flag and the serving layer.
// It is a closed enum: switches over it are checked for exhaustiveness by
// the classexhaustive analyzer, so adding a constant here forces every
// dispatch site to take a position on the new kernel.
type Kernel string

// The kernel vocabulary. Support varies by class; RunKernel errors with
// the supported subset when a class cannot run a kernel.
const (
	KernelVecAdd  Kernel = "vecadd"
	KernelDot     Kernel = "dot"
	KernelReduce  Kernel = "reduce"
	KernelFIR     Kernel = "fir"
	KernelMatMul  Kernel = "matmul"
	KernelScan    Kernel = "scan"
	KernelStencil Kernel = "stencil"
)

// AllKernels lists every kernel RunKernel accepts, in display order.
func AllKernels() []Kernel {
	return []Kernel{KernelVecAdd, KernelDot, KernelReduce, KernelFIR, KernelMatMul, KernelScan, KernelStencil}
}

// Kernels lists the kernel vocabulary as plain strings, for flag help and
// request validation.
func Kernels() []string {
	all := AllKernels()
	names := make([]string, len(all))
	for i, k := range all {
		names[i] = string(k)
	}
	return names
}

// KnownKernel reports whether name is in the Kernels vocabulary. The
// switch deliberately has no default: it must enumerate the whole enum,
// so a kernel constant added without updating the vocabulary here is a
// lint error rather than a silently rejected request.
func KnownKernel(name string) bool {
	switch Kernel(name) {
	case KernelVecAdd, KernelDot, KernelReduce, KernelFIR, KernelMatMul, KernelScan, KernelStencil:
		return true
	}
	return false
}

// unsupportedError marks (class, kernel) combinations the dispatch cannot
// run, as opposed to run failures.
type unsupportedError struct{ msg string }

func (e *unsupportedError) Error() string { return e.msg }

// Unsupported reports whether err marks a (class, kernel) combination
// RunKernel cannot run — the signal sweeps use to skip holes in the
// kernel × class matrix rather than fail on them.
func Unsupported(err error) bool {
	var u *unsupportedError
	return errors.As(err, &u)
}

// kernelErr lists the kernels a runner supports when asked for one it
// doesn't.
func kernelErr(kernel Kernel, have ...Kernel) error {
	names := make([]string, len(have))
	for i, k := range have {
		names[i] = string(k)
	}
	return &unsupportedError{fmt.Sprintf("modelzoo: unknown kernel %q (have %s)", string(kernel), strings.Join(names, ", "))}
}

// KernelInputs builds the deterministic operand vectors every RunKernel call
// uses — the same generator cmd/simulate and the conformance matrix share,
// so a served simulation reproduces the runs users see locally.
func KernelInputs(n int) (a, b []isa.Word) {
	a = make([]isa.Word, n)
	b = make([]isa.Word, n)
	for i := range a {
		a[i] = isa.Word(i%97 + 1)
		b[i] = isa.Word(i%89 + 2)
	}
	return a, b
}

// RunKernel executes one workload kernel on the simulator of the named
// class — the dispatch cmd/simulate performs, packaged for reuse by the
// serving layer. The run is fully deterministic in (class, kernel, n,
// procs): inputs derive from n alone, so repeated calls return identical
// stats and outputs.
func RunKernel(c taxonomy.Class, kernel string, n, procs int, opts ...workload.Option) (workload.Result, error) {
	k := Kernel(kernel)
	a, b := KernelInputs(n)
	switch {
	case c.String() == "IUP":
		return runUniKernel(k, a, b, opts)
	case c.Name.Machine == taxonomy.InstructionFlow && c.Name.Proc == taxonomy.ArrayProcessor:
		return runSIMDKernel(k, c.Name.Sub, procs, a, b, opts)
	case c.Name.Machine == taxonomy.InstructionFlow && c.Name.Proc == taxonomy.MultiProcessor:
		return runMIMDKernel(k, c.Name.Sub, procs, a, b, opts)
	case c.Name.Machine == taxonomy.DataFlow:
		if k != KernelVecAdd {
			return workload.Result{}, kernelErr(k, KernelVecAdd)
		}
		return workload.VecAddDataflow(c.Name.Sub, procs, a, b, opts...)
	case c.Name.Machine == taxonomy.UniversalFlow:
		if k != KernelVecAdd {
			return workload.Result{}, kernelErr(k, KernelVecAdd)
		}
		return workload.VecAddFabric(16, clampWords(a, 1<<15), clampWords(b, 1<<15), opts...)
	default:
		return workload.Result{}, &unsupportedError{fmt.Sprintf("modelzoo: no simulator runner for class %s (ISP demos live in examples and internal/spatial)", c)}
	}
}

func runUniKernel(kernel Kernel, a, b []isa.Word, opts []workload.Option) (workload.Result, error) {
	switch kernel {
	case KernelVecAdd:
		return workload.VecAddUni(a, b, opts...)
	case KernelDot, KernelReduce:
		return workload.DotUni(a, b, opts...)
	case KernelFIR:
		x, h := firInput(len(a))
		return workload.FIRUni(x, h, opts...)
	default:
		return workload.Result{}, kernelErr(kernel, KernelVecAdd, KernelDot, KernelReduce, KernelFIR)
	}
}

func runSIMDKernel(kernel Kernel, sub, lanes int, a, b []isa.Word, opts []workload.Option) (workload.Result, error) {
	switch kernel {
	case KernelVecAdd:
		return workload.VecAddSIMD(sub, lanes, a, b, opts...)
	case KernelDot, KernelReduce:
		if sub == 1 || sub == 3 { // no DP-DP switch: butterfly impossible
			return workload.DotSIMDPartial(sub, lanes, a, b, opts...)
		}
		return workload.DotSIMD(sub, lanes, a, b, opts...)
	case KernelFIR:
		x, h := firInput(len(a))
		return workload.FIRSIMD(sub, lanes, x, h, opts...)
	case KernelStencil:
		return workload.Stencil3SIMD(sub, lanes, a, opts...)
	default:
		return workload.Result{}, kernelErr(kernel, KernelVecAdd, KernelDot, KernelReduce, KernelFIR, KernelStencil)
	}
}

func runMIMDKernel(kernel Kernel, sub, cores int, a, b []isa.Word, opts []workload.Option) (workload.Result, error) {
	switch kernel {
	case KernelVecAdd:
		return workload.VecAddMIMD(sub, cores, a, b, opts...)
	case KernelDot, KernelReduce:
		if (sub-1)&1 == 0 { // no DP-DP switch: butterfly impossible
			return workload.DotMIMDPartial(sub, cores, a, b, opts...)
		}
		return workload.DotMIMD(sub, cores, a, b, opts...)
	case KernelScan:
		return workload.ScanMIMD(sub, cores, a, opts...)
	case KernelStencil:
		return workload.Stencil3MIMD(sub, cores, a, opts...)
	case KernelMatMul:
		// C = A x B with rows = n, inner dim and columns fixed at 8. The
		// DP-DM switch kind picks the strategy: replicated B on direct
		// banks, shared B through the crossbar.
		const k, cols = 8, 8
		rows := len(a)
		am := make([]isa.Word, rows*k)
		bm := make([]isa.Word, k*cols)
		for i := range am {
			am[i] = isa.Word(i%23 + 1)
		}
		for i := range bm {
			bm[i] = isa.Word(i%19 + 1)
		}
		if (sub-1)&2 != 0 {
			return workload.MatMulMIMDShared(sub, cores, am, bm, rows, k, cols, opts...)
		}
		return workload.MatMulMIMDReplicated(sub, cores, am, bm, rows, k, cols, opts...)
	default:
		return workload.Result{}, kernelErr(kernel, KernelVecAdd, KernelDot, KernelReduce, KernelScan, KernelStencil, KernelMatMul)
	}
}

// firInput derives an 8-tap FIR input at output length n: the samples extend
// with the ghost overlap the kernels need.
func firInput(n int) (x, h []isa.Word) {
	const taps = 8
	x = make([]isa.Word, n+taps-1)
	for i := range x {
		x[i] = isa.Word(i%31 + 1)
	}
	h = make([]isa.Word, taps)
	for i := range h {
		h[i] = isa.Word(i + 1)
	}
	return x, h
}
