package modelzoo_test

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/modelzoo"
	"repro/internal/report"
	"repro/internal/taxonomy"
)

// TestCheckKernelMatrixClean runs the static checker over every guest
// program of every runnable kernel × class cell of the conformance matrix:
// no finding at all (even Info), and every budget bounded. This is the
// acceptance gate that keeps the zoo's own kernels honest against the
// checker. Cells outside the matrix are architectural holes (Table I) the
// checker is free — and expected — to reject.
func TestCheckKernelMatrixClean(t *testing.T) {
	cells, programs := 0, 0
	for _, cell := range conformance.Matrix() {
		c, err := taxonomy.LookupString(cell.Class)
		if err != nil {
			t.Fatalf("%s: %v", cell.Class, err)
		}
		progs, err := modelzoo.CheckKernel(c, cell.Kernel, 64, 4)
		if err != nil {
			// ISP cells run through internal/spatial demos, outside the
			// RunKernel dispatch; everything else must check out.
			if !modelzoo.Unsupported(err) {
				t.Errorf("%s/%s: %v", cell.Class, cell.Kernel, err)
			}
			continue
		}
		cells++
		for _, p := range progs {
			programs++
			if !p.Report.Clean(report.SevInfo) {
				t.Errorf("%s/%s/%s has findings:\n%s", cell.Class, cell.Kernel, p.Name, p.Report.Text())
			}
			if !p.Report.Budget.Bounded {
				t.Errorf("%s/%s/%s unbounded: %s", cell.Class, cell.Kernel, p.Name, p.Report.Budget.Reason)
			}
		}
	}
	if cells == 0 || programs == 0 {
		t.Fatalf("swept %d cells, %d programs — sweep is vacuous", cells, programs)
	}
	t.Logf("checked %d programs across %d kernel×class cells", programs, cells)
}

// TestCheckKernelRejectsArchitecturalHoles pins the checker's Table I
// behavior: scan needs SEND/RECV, so on IMP-I (no DP-DP switch) its
// program draws comm-shape errors instead of running to a machine fault.
func TestCheckKernelRejectsArchitecturalHoles(t *testing.T) {
	c, err := taxonomy.LookupString("IMP-I")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := modelzoo.CheckKernel(c, "scan", 64, 4)
	if err != nil {
		t.Fatalf("CheckKernel: %v", err)
	}
	if len(progs) == 0 {
		t.Fatal("no programs recorded")
	}
	for _, p := range progs {
		if p.Report.Clean(report.SevError) {
			t.Errorf("%s clean on a class with no DP-DP switch:\n%s", p.Name, p.Report.Text())
		}
	}
}
