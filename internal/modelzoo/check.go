package modelzoo

import (
	"repro/internal/progcheck"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

// CheckedProgram pairs one staged guest program with its checker report.
type CheckedProgram struct {
	// Name labels the program within the kernel run (a kernel may stage
	// several variants, e.g. local vs global addressing).
	Name string `json:"name"`
	// Report is the static checker's verdict.
	Report *progcheck.Report `json:"report"`
}

// CheckKernel statically verifies every guest program the (class, kernel,
// n, procs) run would execute — without building or running a simulator.
// The machine shape (bank size, lane count, DP-DP network, barrier
// capability) comes from the same runner that would execute the program,
// so the checker sees exactly what the simulator would. Classes with no
// guest ISA program (data-flow token graphs, the LUT fabric) return an
// empty slice; unsupported (class, kernel) pairs return an error that
// Unsupported recognizes.
func CheckKernel(c taxonomy.Class, kernel string, n, procs int) ([]CheckedProgram, error) {
	var specs []workload.ProgramSpec
	if _, err := RunKernel(c, kernel, n, procs, workload.WithProgramSink(&specs)); err != nil {
		return nil, err
	}
	out := make([]CheckedProgram, len(specs))
	for i, s := range specs {
		out[i] = CheckedProgram{Name: s.Name, Report: progcheck.Check(s.Program, progcheck.Target{
			MemWords:   s.MemWords,
			Procs:      s.Procs,
			HasNetwork: s.HasNetwork,
			HasBarrier: s.HasBarrier,
		})}
	}
	return out, nil
}
