package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("x_total", "things")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Registration is idempotent: same name+labels is the same series.
	again := r.MustCounter("x_total", "things")
	again.Inc()
	if got := c.Value(); got != 6 {
		t.Errorf("re-registered counter = %d, want 6", got)
	}
	if v, ok := r.CounterValue("x_total"); !ok || v != 6 {
		t.Errorf("CounterValue = %d, %v", v, ok)
	}
	if _, ok := r.CounterValue("nope"); ok {
		t.Error("CounterValue found a nonexistent metric")
	}
}

func TestCounterLabels(t *testing.T) {
	r := NewRegistry()
	a := r.MustCounter("mix_total", "", "op", "add", "track", "0")
	b := r.MustCounter("mix_total", "", "track", "0", "op", "add") // same set, different order
	other := r.MustCounter("mix_total", "", "op", "mul", "track", "0")
	a.Inc()
	b.Inc()
	other.Add(7)
	if v, ok := r.CounterValue("mix_total", "op", "add", "track", "0"); !ok || v != 2 {
		t.Errorf("labeled counter = %d, %v (label order must not matter)", v, ok)
	}
	if v, _ := r.CounterValue("mix_total", "op", "mul", "track", "0"); v != 7 {
		t.Errorf("other series = %d, want 7", v)
	}
	if _, err := r.Counter("mix_total", "", "odd"); err == nil {
		t.Error("odd label list accepted")
	}
}

func TestKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("m", "")
	if _, err := r.Gauge("m", ""); err == nil {
		t.Error("gauge re-registration of a counter accepted")
	}
	if _, err := r.Histogram("m", "", []float64{1}); err == nil {
		t.Error("histogram re-registration of a counter accepted")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.MustGauge("depth", "")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Errorf("gauge = %g, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Errorf("gauge = %g, want -1", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("lat", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Errorf("sum = %g, want 106.5", h.Sum())
	}
	if _, err := r.Histogram("bad", "", []float64{2, 1}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("a_total", "help text").Add(3)
	r.MustGauge("b", "").Set(2.5)
	h := r.MustHistogram("c", "", []float64{1, 2})
	h.Observe(1)
	h.Observe(5)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total help text",
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b gauge",
		"b 2.5",
		"# TYPE c histogram",
		`c_bucket{le="1"} 1`,
		`c_bucket{le="2"} 1`,
		`c_bucket{le="+Inf"} 2`,
		"c_sum 6",
		"c_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("d", "", []float64{1}, "pe", "3")
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `d_bucket{pe="3",le="1"} 1`) {
		t.Errorf("labeled bucket line wrong:\n%s", b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("a_total", "").Add(3)
	r.MustGauge("b", "").Set(2.5)
	h := r.MustHistogram("c", "", []float64{1, 2})
	h.Observe(1.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var series []struct {
		Name  string   `json:"name"`
		Kind  string   `json:"kind"`
		Value *float64 `json:"value"`
		Count *int64   `json:"count"`
		Buckets []struct {
			Le    string `json:"le"`
			Count int64  `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal([]byte(b.String()), &series); err != nil {
		t.Fatalf("JSON dump invalid: %v", err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series, want 3", len(series))
	}
	byName := map[string]int{}
	for i, s := range series {
		byName[s.Name] = i
	}
	if s := series[byName["a_total"]]; s.Kind != "counter" || s.Value == nil || *s.Value != 3 {
		t.Errorf("a_total dumped wrong: %+v", s)
	}
	if s := series[byName["b"]]; s.Kind != "gauge" || s.Value == nil || *s.Value != 2.5 {
		t.Errorf("b dumped wrong: %+v", s)
	}
	if s := series[byName["c"]]; s.Kind != "histogram" || s.Count == nil || *s.Count != 1 || len(s.Buckets) != 3 {
		t.Errorf("c dumped wrong: %+v", s)
	}
}
