package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceRecorder(t *testing.T) {
	tr := NewTrace()
	if tr.Len() != 0 {
		t.Fatalf("new trace has %d events", tr.Len())
	}
	tr.Emit(Event{Kind: KindInstr, Track: 0, Cycle: 1})
	tr.Emit(Event{Kind: KindBarrier, Track: TrackMachine, Cycle: 2})
	if tr.Len() != 2 {
		t.Errorf("len = %d, want 2", tr.Len())
	}
	evs := tr.Events()
	evs[0].Cycle = 99 // Events must return a copy
	if tr.Events()[0].Cycle != 1 {
		t.Error("Events returned a live slice, not a copy")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("len after reset = %d", tr.Len())
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(track int32) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(Event{Kind: KindInstr, Track: track, Cycle: int64(i)})
			}
		}(int32(g))
	}
	wg.Wait()
	if tr.Len() != 8000 {
		t.Errorf("len = %d, want 8000", tr.Len())
	}
}

func TestDiscard(t *testing.T) {
	var d Discard
	d.Emit(Event{Kind: KindInstr}) // must not panic; a Tracer
	var _ Tracer = d
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindInstr:    "instr",
		KindMemRead:  "mem-read",
		KindMemWrite: "mem-write",
		KindSend:     "send",
		KindRecv:     "recv",
		KindBarrier:  "barrier",
		KindStall:    "net-stall",
		KindWait:     "wait",
		KindReconfig: "reconfig",
		KindPhase:    "phase",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

// chromeDoc mirrors the export format for test decoding.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  *int64         `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func decodeChrome(t *testing.T, events []Event, opt ChromeOptions) chromeDoc {
	t.Helper()
	var b strings.Builder
	if err := WriteChromeTrace(&b, events, opt); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatalf("export is not valid JSON:\n%s", b.String())
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{Kind: KindInstr, Flags: FlagHasOp | FlagALU, Track: 1, Cycle: 5, Dur: 2, Arg: 0}, // some op
		{Kind: KindBarrier, Track: TrackMachine, Cycle: 9},
		{Kind: KindSend, Track: 0, Cycle: 3, Dur: 1, Arg: 1},
	}
	doc := decodeChrome(t, events, ChromeOptions{Process: "test run"})
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var procName string
	threadNames := map[int64]string{}
	var data []int // indices of non-metadata events
	for i, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			procName, _ = e.Args["name"].(string)
		case e.Ph == "M" && e.Name == "thread_name":
			name, _ := e.Args["name"].(string)
			threadNames[e.Tid] = name
		default:
			data = append(data, i)
		}
	}
	if procName != "test run" {
		t.Errorf("process name = %q", procName)
	}
	// Machine track is tid 0 named "machine"; tracks 0 and 1 are tids 1, 2.
	if threadNames[0] != "machine" || threadNames[1] != "P0" || threadNames[2] != "P1" {
		t.Errorf("thread names = %v", threadNames)
	}
	if len(data) != 3 {
		t.Fatalf("got %d data events, want 3", len(data))
	}
	// Sorted by cycle: send@3, instr@5, barrier@9.
	first := doc.TraceEvents[data[0]]
	if first.Name != "send" || first.Ts != 3 || first.Ph != "X" || first.Dur == nil || *first.Dur != 1 {
		t.Errorf("first event wrong: %+v", first)
	}
	if peer, ok := first.Args["peer"].(float64); !ok || peer != 1 {
		t.Errorf("send args = %v", first.Args)
	}
	second := doc.TraceEvents[data[1]]
	if second.Ph != "X" || second.Tid != 2 {
		t.Errorf("instr event wrong: %+v", second)
	}
	third := doc.TraceEvents[data[2]]
	if third.Name != "barrier" || third.Ph != "i" || third.S != "t" || third.Tid != 0 {
		t.Errorf("barrier event wrong: %+v", third)
	}
}

func TestWriteChromeTrace_MonotonePerTrack(t *testing.T) {
	// Deliberately unsorted input: the exporter must order by cycle so
	// timestamps are monotone within every track.
	events := []Event{
		{Kind: KindInstr, Track: 0, Cycle: 10, Dur: 1},
		{Kind: KindInstr, Track: 1, Cycle: 4, Dur: 1},
		{Kind: KindInstr, Track: 0, Cycle: 2, Dur: 3},
		{Kind: KindInstr, Track: 1, Cycle: 8, Dur: 1},
		{Kind: KindInstr, Track: 0, Cycle: 7, Dur: 1},
	}
	doc := decodeChrome(t, events, ChromeOptions{})
	last := map[int64]int64{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if prev, seen := last[e.Tid]; seen && e.Ts < prev {
			t.Errorf("tid %d: ts %d after %d", e.Tid, e.Ts, prev)
		}
		last[e.Tid] = e.Ts
	}
	if len(last) != 2 {
		t.Errorf("got %d tracks, want 2", len(last))
	}
}

func TestWriteChromeTrace_CustomTrackName(t *testing.T) {
	events := []Event{{Kind: KindInstr, Track: 2, Cycle: 0, Dur: 1}}
	doc := decodeChrome(t, events, ChromeOptions{
		TrackName: func(track int32) string { return "lane-x" },
	})
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			if name, _ := e.Args["name"].(string); name == "lane-x" {
				found = true
			}
		}
	}
	if !found {
		t.Error("custom track name not used")
	}
}
