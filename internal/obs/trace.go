package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/isa"
)

// Trace is an in-memory event recorder. It is safe for concurrent Emit
// calls; export runs after the simulation finished.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty recorder.
func NewTrace() *Trace { return &Trace{} }

// Emit implements Tracer.
func (t *Trace) Emit(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len reports the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in emission order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Reset clears the recorder for reuse.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// tracePool recycles recorders between batch cells. A conformance matrix
// run allocates one trace per cell and each grows to thousands of events;
// reusing the event buffers keeps the parallel sweep off the allocator.
var tracePool = sync.Pool{New: func() any { return &Trace{} }}

// AcquireTrace returns an empty recorder, reusing a pooled one (and its
// grown event buffer) when available. Pair with ReleaseTrace.
func AcquireTrace() *Trace {
	t := tracePool.Get().(*Trace)
	t.Reset()
	return t
}

// ReleaseTrace recycles a recorder obtained from AcquireTrace. The caller
// must not use t (or slices returned by Events before copying — Events
// already copies) afterwards.
func ReleaseTrace(t *Trace) {
	if t == nil {
		return
	}
	t.Reset()
	tracePool.Put(t)
}

// ChromeOptions configures the Chrome trace-event export.
type ChromeOptions struct {
	// Process names the single process row; empty means "simulation".
	Process string
	// TrackName labels one track (thread row); nil uses "P<track>" and
	// "machine" for TrackMachine.
	TrackName func(track int32) string
}

// chromeEvent is one trace-event JSON object. Guest cycles are exported as
// microseconds (ts/dur), the unit Perfetto and chrome://tracing expect.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// eventName is the exported display name of one event.
func eventName(e Event) string {
	if e.Kind == KindInstr && e.Flags&FlagHasOp != 0 {
		return isa.Op(e.Arg).String()
	}
	if e.Kind == KindInstr {
		return fmt.Sprintf("node %d", e.Arg)
	}
	return e.Kind.String()
}

// eventArgs is the exported args payload of one event.
func eventArgs(e Event) map[string]any {
	switch e.Kind {
	case KindMemRead, KindMemWrite:
		return map[string]any{"addr": e.Arg}
	case KindSend, KindRecv:
		return map[string]any{"peer": e.Arg}
	case KindStall:
		return map[string]any{"stall_cycles": e.Arg}
	case KindReconfig:
		return map[string]any{"config_bits": e.Arg}
	case KindInstr:
		if e.Flags&FlagHasOp == 0 {
			return map[string]any{"node": e.Arg}
		}
	case KindBarrier, KindWait, KindPhase:
		// No argument payload: the span itself is the information.
	}
	return nil
}

// tid maps a track to a Chrome thread ID: the machine track renders first.
func tid(track int32) int64 {
	if track == TrackMachine {
		return 0
	}
	return int64(track) + 1
}

// appendSimChrome converts one simulator event stream to Chrome trace
// events under the given process ID: thread metadata for every observed
// track, then the events sorted by start cycle, with ts = tsOffset + cycle
// (one guest cycle per exported microsecond). trackName labels the thread
// rows; nil uses "P<track>". The shared conversion behind WriteChromeTrace
// (whole-simulation export, pid 0, no offset) and TraceSnapshot.WriteChrome
// (per-request export, one pid per attached stream, aligned to its span).
func appendSimChrome(out []chromeEvent, events []Event, pid int, tsOffset int64, trackName func(track int32) string) []chromeEvent {
	if trackName == nil {
		trackName = func(track int32) string { return fmt.Sprintf("P%d", track) }
	}

	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Cycle != sorted[j].Cycle {
			return sorted[i].Cycle < sorted[j].Cycle
		}
		return sorted[i].Track < sorted[j].Track
	})

	tracks := map[int32]bool{}
	for _, e := range sorted {
		tracks[e.Track] = true
	}
	trackList := make([]int32, 0, len(tracks))
	for tr := range tracks {
		trackList = append(trackList, tr)
	}
	sort.Slice(trackList, func(i, j int) bool { return trackList[i] < trackList[j] })

	for _, tr := range trackList {
		name := trackName(tr)
		if tr == TrackMachine {
			name = "machine"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid(tr),
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range sorted {
		ce := chromeEvent{
			Name: eventName(e),
			Ts:   tsOffset + e.Cycle,
			Pid:  pid,
			Tid:  tid(e.Track),
			Args: eventArgs(e),
		}
		if e.Dur > 0 {
			dur := e.Dur
			ce.Ph, ce.Dur = "X", &dur
		} else {
			ce.Ph, ce.S = "i", "t"
		}
		out = append(out, ce)
	}
	return out
}

// WriteChromeTrace writes events as a Chrome trace-event JSON document
// ({"traceEvents": [...]}), loadable in Perfetto and chrome://tracing. One
// thread row is emitted per track, so an IAP's lockstep broadcast, an
// IMP's message interleave, a DMP's token firing and a USP's
// reconfiguration phases are visually distinguishable. Events are sorted
// by start cycle, so timestamps are monotone within every track.
func WriteChromeTrace(w io.Writer, events []Event, opt ChromeOptions) error {
	process := opt.Process
	if process == "" {
		process = "simulation"
	}

	out := make([]chromeEvent, 0, len(events)+2)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": process},
	})
	out = appendSimChrome(out, events, 0, 0, opt.TrackName)

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}

// WriteChrome exports the recorder's events; see WriteChromeTrace.
func (t *Trace) WriteChrome(w io.Writer, opt ChromeOptions) error {
	return WriteChromeTrace(w, t.Events(), opt)
}
