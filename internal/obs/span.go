package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// This file is the request-scoped half of the observability layer: where
// trace.go records what a *simulation* did in guest cycles, a ReqTrace
// records where a *request* spent its wall time — a tree of named spans
// (decode, cache lookup, exec queue wait, per-item execution, encode)
// propagated through context.Context, with the simulator-side Event
// streams attachable under the span that ran them. The merged view
// exports as one Chrome trace-event document per request, so a slow
// /v1/conformance call and the machine steps it triggered land in a
// single Perfetto timeline.
//
// Like the Tracer, tracing is strictly opt-in and the disabled path is
// free: StartSpan on a context without a ReqTrace returns the context
// unchanged and a nil *Span, and every Span method is nil-safe, so the
// hot path performs zero allocations when tracing is off
// (TestDisabledSpanZeroAllocs holds the guarantee).

// SpanNone is the parent ID of a root span.
const SpanNone int32 = -1

// spanData is one recorded span; offsets are from the trace's start.
type spanData struct {
	name   string
	parent int32
	track  int32
	start  time.Duration
	end    time.Duration // < 0 while the span is open
}

// simData is one simulator event stream attached under a span.
type simData struct {
	span   int32
	label  string
	events []Event
}

// ReqTrace records one request's span tree. It is safe for concurrent use:
// the exec pool starts and ends item spans from many goroutines at once.
type ReqTrace struct {
	id    string
	name  string
	start time.Time
	now   func() time.Time

	mu     sync.Mutex
	status int
	spans  []spanData
	sims   []simData
}

// NewReqTrace starts an empty request trace. id is the request's unique
// identifier, name the request's label (the endpoint path, typically).
func NewReqTrace(id, name string) *ReqTrace {
	return NewReqTraceAt(id, name, time.Now)
}

// NewReqTraceAt is NewReqTrace with an injected clock, the seam the golden
// tests use; now must be monotone non-decreasing.
func NewReqTraceAt(id, name string, now func() time.Time) *ReqTrace {
	return &ReqTrace{id: id, name: name, start: now(), now: now}
}

// ID returns the request identifier the trace was created with.
func (rt *ReqTrace) ID() string { return rt.id }

// SetStatus records the request's final disposition (the HTTP status code)
// for the snapshot.
func (rt *ReqTrace) SetStatus(status int) {
	rt.mu.Lock()
	rt.status = status
	rt.mu.Unlock()
}

// startSpan appends an open span and returns its handle.
func (rt *ReqTrace) startSpan(name string, parent, track int32) *Span {
	off := rt.now().Sub(rt.start)
	rt.mu.Lock()
	id := int32(len(rt.spans))
	rt.spans = append(rt.spans, spanData{name: name, parent: parent, track: track, start: off, end: -1})
	rt.mu.Unlock()
	return &Span{rt: rt, id: id, track: track}
}

// addSpan appends an already-completed span (the retroactive form the exec
// observer uses for queue waits, where the duration is only known at end).
func (rt *ReqTrace) addSpan(name string, parent, track int32, start time.Time, d time.Duration) {
	off := start.Sub(rt.start)
	if off < 0 {
		off = 0
	}
	rt.mu.Lock()
	rt.spans = append(rt.spans, spanData{name: name, parent: parent, track: track, start: off, end: off + d})
	rt.mu.Unlock()
}

// Span is a handle to one open (or ended) span of a ReqTrace. The zero of
// usefulness is nil: every method on a nil Span is a free no-op, which is
// how the disabled path stays allocation-free.
type Span struct {
	rt    *ReqTrace
	id    int32
	track int32
}

// End closes the span at the current time. Ending an ended span is a no-op,
// so `defer sp.End()` composes with an explicit early End.
func (s *Span) End() {
	if s == nil {
		return
	}
	off := s.rt.now().Sub(s.rt.start)
	s.rt.mu.Lock()
	if s.rt.spans[s.id].end < 0 {
		s.rt.spans[s.id].end = off
	}
	s.rt.mu.Unlock()
}

// SetTrack moves the span (and the default track of its children) to a
// display lane; the server puts batch item i on track i+1 so parallel items
// render as parallel rows instead of one overlapping pile.
func (s *Span) SetTrack(track int32) {
	if s == nil {
		return
	}
	s.track = track
	s.rt.mu.Lock()
	s.rt.spans[s.id].track = track
	s.rt.mu.Unlock()
}

// Duration reports how long the span has been open (or was open, once
// ended). 0 on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.rt.mu.Lock()
	sd := s.rt.spans[s.id]
	s.rt.mu.Unlock()
	if sd.end >= 0 {
		return sd.end - sd.start
	}
	return s.rt.now().Sub(s.rt.start) - sd.start
}

// AttachSim links a simulator event stream under the span: the guest-cycle
// events export as their own process rows in the request's Chrome trace,
// aligned to the span's start. The events are copied; callers may release
// a pooled Trace afterwards.
func (s *Span) AttachSim(label string, events []Event) {
	if s == nil || len(events) == 0 {
		return
	}
	cp := append([]Event(nil), events...)
	s.rt.mu.Lock()
	s.rt.sims = append(s.rt.sims, simData{span: s.id, label: label, events: cp})
	s.rt.mu.Unlock()
}

// spanKey carries the active *Span through a context.
type spanKey struct{}

// WithReqTrace returns a context under which StartSpan records into rt.
// The trace's first StartSpan becomes the root span. A nil rt returns ctx
// unchanged (tracing stays disabled).
func WithReqTrace(ctx context.Context, rt *ReqTrace) context.Context {
	if rt == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, &Span{rt: rt, id: SpanNone, track: 0})
}

// StartSpan opens a span named name under the context's active span and
// returns a context carrying the new span plus its handle. On a context
// without a ReqTrace it returns ctx unchanged and a nil Span — no
// allocation, no overhead — so call sites never need an enabled check.
// The caller must End the span on every path (the spanend analyzer
// enforces this).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.rt.startSpan(name, parent.id, parent.track)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// CurrentSpan returns the context's active span, or nil when tracing is
// disabled. The returned span is borrowed: the starter owns its End.
func CurrentSpan(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// RecordSpan adds an already-completed span under the context's active
// span: the retroactive form for durations measured externally (the exec
// pool's queue waits). start is the span's wall start, d its length.
func RecordSpan(ctx context.Context, name string, track int32, start time.Time, d time.Duration) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return
	}
	parent.rt.addSpan(name, parent.id, track, start, d)
}

// SpanSnapshot is one exported span. Offsets are microseconds from the
// request start, the unit the Chrome trace viewer uses.
type SpanSnapshot struct {
	ID     int32  `json:"id"`
	Parent int32  `json:"parent"` // SpanNone for the root
	Name   string `json:"name"`
	Track  int32  `json:"track"`
	StartUs int64 `json:"start_us"`
	DurUs   int64 `json:"dur_us"`
	// Open marks a span never ended before the snapshot (its DurUs is the
	// time to the snapshot instant).
	Open bool `json:"open,omitempty"`
}

// SimSnapshot is one attached simulator stream. The raw events ride along
// for the Chrome export but stay out of the JSON body (EventCount stands
// in): a conformance item can carry hundreds of thousands of them.
type SimSnapshot struct {
	Span       int32  `json:"span"`
	Label      string `json:"label"`
	EventCount int    `json:"event_count"`
	Events     []Event `json:"-"`
}

// TraceSnapshot is one request's immutable exported trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMs float64        `json:"duration_ms"`
	Status     int            `json:"status,omitempty"`
	Spans      []SpanSnapshot `json:"spans"`
	Sims       []SimSnapshot  `json:"sims,omitempty"`
}

// Snapshot exports the trace's current state. Open spans are clamped to
// the snapshot instant and flagged. The snapshot shares no mutable state
// with the trace.
func (rt *ReqTrace) Snapshot() *TraceSnapshot {
	nowOff := rt.now().Sub(rt.start)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	snap := &TraceSnapshot{
		ID:         rt.id,
		Name:       rt.name,
		Start:      rt.start,
		DurationMs: float64(nowOff.Microseconds()) / 1000,
		Status:     rt.status,
		Spans:      make([]SpanSnapshot, len(rt.spans)),
	}
	for i, sd := range rt.spans {
		end, open := sd.end, false
		if end < 0 {
			end, open = nowOff, true
		}
		snap.Spans[i] = SpanSnapshot{
			ID:      int32(i),
			Parent:  sd.parent,
			Name:    sd.name,
			Track:   sd.track,
			StartUs: sd.start.Microseconds(),
			DurUs:   (end - sd.start).Microseconds(),
			Open:    open,
		}
	}
	for _, sim := range rt.sims {
		snap.Sims = append(snap.Sims, SimSnapshot{
			Span:       sim.span,
			Label:      sim.label,
			EventCount: len(sim.events),
			Events:     append([]Event(nil), sim.events...),
		})
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON (the /debug/requests
// detail body).
func (snap *TraceSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// spanStart finds a span's start offset in microseconds, for aligning its
// attached simulator streams.
func (snap *TraceSnapshot) spanStart(id int32) int64 {
	if id >= 0 && int(id) < len(snap.Spans) {
		return snap.Spans[id].StartUs
	}
	return 0
}

// WriteChrome writes the request as one merged Chrome trace-event JSON
// document: pid 0 holds the HTTP span tree (one thread row per track, so
// parallel batch items stack as parallel lanes), and each attached
// simulator stream renders as its own process aligned to the span that ran
// it, one guest cycle per microsecond. Load it in Perfetto or
// chrome://tracing to see a request end to end — decode, queue wait, every
// item's machine steps, encode — on one timeline.
func (snap *TraceSnapshot) WriteChrome(w io.Writer) error {
	tracks := map[int32]bool{}
	for _, sp := range snap.Spans {
		tracks[sp.Track] = true
	}
	trackList := make([]int32, 0, len(tracks))
	for tr := range tracks {
		trackList = append(trackList, tr)
	}
	sort.Slice(trackList, func(i, j int) bool { return trackList[i] < trackList[j] })

	out := make([]chromeEvent, 0, len(snap.Spans)+len(trackList)+1)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": fmt.Sprintf("request %s %s", snap.ID, snap.Name)},
	})
	for _, tr := range trackList {
		name := "request"
		if tr != 0 {
			name = fmt.Sprintf("item %d", tr)
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: int64(tr),
			Args: map[string]any{"name": name},
		})
	}
	for _, sp := range snap.Spans {
		dur := sp.DurUs
		if dur < 1 {
			dur = 1 // sub-microsecond spans still render
		}
		d := dur
		args := map[string]any{"span": sp.ID}
		if sp.Parent != SpanNone {
			args["parent"] = sp.Parent
		}
		if sp.Open {
			args["open"] = true
		}
		out = append(out, chromeEvent{
			Name: sp.Name, Ph: "X", Ts: sp.StartUs, Dur: &d,
			Pid: 0, Tid: int64(sp.Track), Args: args,
		})
	}
	for i, sim := range snap.Sims {
		pid := i + 1
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "sim: " + sim.Label},
		})
		out = appendSimChrome(out, sim.Events, pid, snap.spanStart(sim.Span), nil)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}
