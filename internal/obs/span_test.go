package obs_test

// Tests of the request-scoped span layer: tree construction through the
// context, the zero-allocation disabled path, retroactive spans, simulator
// stream attachment, and the golden JSON + Chrome exports of a fixed trace
// built against a stub clock.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// stubClock is a hand-advanced clock for deterministic span offsets.
type stubClock struct {
	t time.Time
}

func newStubClock() *stubClock {
	return &stubClock{t: time.Unix(1000, 0).UTC()}
}

func (c *stubClock) now() time.Time { return c.t }

func (c *stubClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// buildFixedTrace constructs the deterministic trace the golden tests pin:
// a root span with a decode child, an exec child holding two parallel item
// spans (one with an attached two-event sim stream), a retroactive
// queue-wait span, and one span left open.
func buildFixedTrace() *obs.ReqTrace {
	clk := newStubClock()
	rt := obs.NewReqTraceAt("req-000042", "/v1/simulate", clk.now)
	ctx := obs.WithReqTrace(context.Background(), rt)

	ctx, root := obs.StartSpan(ctx, "/v1/simulate")
	clk.advance(1 * time.Millisecond)
	_, decode := obs.StartSpan(ctx, "decode")
	clk.advance(2 * time.Millisecond)
	decode.End()

	ectx, execSp := obs.StartSpan(ctx, "exec")
	execStart := clk.now()
	clk.advance(500 * time.Microsecond)
	obs.RecordSpan(ectx, "queue-wait", 2, execStart, 500*time.Microsecond)

	ictx1, item1 := obs.StartSpan(ectx, "item")
	item1.SetTrack(1)
	_, inner := obs.StartSpan(ictx1, "kernel")
	clk.advance(3 * time.Millisecond)
	inner.End()
	item1.AttachSim("IAP-I vecadd n=4", []obs.Event{
		{Kind: obs.KindInstr, Track: 0, Cycle: 0, Arg: 1, Flags: obs.FlagHasOp},
		{Kind: obs.KindBarrier, Track: obs.TrackMachine, Cycle: 1},
	})
	item1.End()

	_, item2 := obs.StartSpan(ectx, "item")
	item2.SetTrack(2)
	clk.advance(1 * time.Millisecond)
	item2.End()
	execSp.End()

	// An encode span deliberately left open: the snapshot clamps it.
	_, _ = obs.StartSpan(ctx, "encode")
	clk.advance(250 * time.Microsecond)

	root.End()
	rt.SetStatus(200)
	return rt
}

// TestSpanTree checks parents, tracks and durations of the fixed trace.
func TestSpanTree(t *testing.T) {
	snap := buildFixedTrace().Snapshot()
	if snap.ID != "req-000042" || snap.Name != "/v1/simulate" {
		t.Fatalf("snapshot identity = %q %q", snap.ID, snap.Name)
	}
	if snap.Status != 200 {
		t.Errorf("status = %d, want 200", snap.Status)
	}
	if len(snap.Spans) != 8 {
		t.Fatalf("got %d spans, want 8", len(snap.Spans))
	}
	byName := map[string]obs.SpanSnapshot{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	root := byName["/v1/simulate"]
	if root.Parent != obs.SpanNone {
		t.Errorf("root parent = %d, want SpanNone", root.Parent)
	}
	if byName["decode"].Parent != root.ID {
		t.Errorf("decode parent = %d, want root %d", byName["decode"].Parent, root.ID)
	}
	if byName["decode"].DurUs != 2000 {
		t.Errorf("decode duration = %dus, want 2000", byName["decode"].DurUs)
	}
	if byName["kernel"].Track != 1 {
		t.Errorf("kernel track = %d, want inherited 1", byName["kernel"].Track)
	}
	if qw := byName["queue-wait"]; qw.DurUs != 500 || qw.Track != 2 {
		t.Errorf("queue-wait = %dus on track %d, want 500us on 2", qw.DurUs, qw.Track)
	}
	if !byName["encode"].Open {
		t.Error("encode span should be flagged open")
	}
	if len(snap.Sims) != 1 || snap.Sims[0].EventCount != 2 {
		t.Fatalf("sims = %+v, want one stream of 2 events", snap.Sims)
	}
	if snap.Sims[0].Span != byName["item"].ID && snap.Sims[0].Label != "IAP-I vecadd n=4" {
		t.Errorf("sim attachment = %+v", snap.Sims[0])
	}
}

// TestSnapshotGoldenJSON pins the /debug/requests detail body of the fixed
// trace byte-for-byte.
func TestSnapshotGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedTrace().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "reqtrace_snapshot.json"), buf.Bytes())
}

// TestSnapshotGoldenChrome pins the merged Chrome export — HTTP span tree
// plus the attached simulator stream — byte-for-byte.
func TestSnapshotGoldenChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedTrace().Snapshot().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "reqtrace_chrome.json"), buf.Bytes())
}

// compareGolden diffs got against the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("export drifted from %s (rerun with -update after reviewing)\ngot:\n%s", path, got)
	}
}

// TestDisabledSpanZeroAllocs holds the tentpole guarantee: on a context
// without a ReqTrace, the whole span API — StartSpan, End, SetTrack,
// CurrentSpan, RecordSpan, AttachSim — performs zero allocations.
func TestDisabledSpanZeroAllocs(t *testing.T) {
	ctx := context.Background()
	start := time.Now()
	allocs := testing.AllocsPerRun(100, func() {
		sctx, sp := obs.StartSpan(ctx, "decode")
		sp.SetTrack(3)
		obs.RecordSpan(sctx, "queue-wait", 1, start, time.Millisecond)
		obs.CurrentSpan(sctx).AttachSim("stream", nil)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %.1f times per request, want 0", allocs)
	}
}

// TestSpanEndIdempotent checks double-End keeps the first end time.
func TestSpanEndIdempotent(t *testing.T) {
	clk := newStubClock()
	rt := obs.NewReqTraceAt("r", "n", clk.now)
	_, sp := obs.StartSpan(obs.WithReqTrace(context.Background(), rt), "once")
	clk.advance(time.Millisecond)
	sp.End()
	clk.advance(time.Second)
	sp.End()
	if d := sp.Duration(); d != time.Millisecond {
		t.Errorf("duration after double End = %v, want 1ms", d)
	}
}

// TestAttachSimCopies checks the attached stream is isolated from later
// mutation of the caller's slice (the pooled Trace is released after).
func TestAttachSimCopies(t *testing.T) {
	rt := obs.NewReqTrace("r", "n")
	_, sp := obs.StartSpan(obs.WithReqTrace(context.Background(), rt), "item")
	events := []obs.Event{{Kind: obs.KindInstr, Cycle: 7}}
	sp.AttachSim("s", events)
	events[0].Cycle = 99
	sp.End()
	snap := rt.Snapshot()
	if len(snap.Sims) != 1 || snap.Sims[0].Events[0].Cycle != 7 {
		t.Fatalf("attached events were not copied: %+v", snap.Sims)
	}
}

// TestConcurrentSpans hammers one trace from many goroutines the way the
// exec pool does; run under -race this is the propagation safety test.
func TestConcurrentSpans(t *testing.T) {
	rt := obs.NewReqTrace("r", "n")
	ctx, root := obs.StartSpan(obs.WithReqTrace(context.Background(), rt), "root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ictx, sp := obs.StartSpan(ctx, "item")
			sp.SetTrack(int32(i + 1))
			_, inner := obs.StartSpan(ictx, "kernel")
			inner.End()
			obs.RecordSpan(ictx, "queue-wait", int32(i+1), time.Now(), time.Microsecond)
			sp.AttachSim("s", []obs.Event{{Kind: obs.KindInstr}})
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	snap := rt.Snapshot()
	if want := 1 + 32*3; len(snap.Spans) != want {
		t.Errorf("got %d spans, want %d", len(snap.Spans), want)
	}
	if len(snap.Sims) != 32 {
		t.Errorf("got %d sims, want 32", len(snap.Sims))
	}
	var buf bytes.Buffer
	if err := snap.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkStartSpanDisabled is the disabled path's overhead, reported with
// allocations: go test ./internal/obs -bench StartSpanDisabled -benchmem.
func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.StartSpan(ctx, "decode")
		sp.End()
	}
}

// BenchmarkStartSpanEnabled is the enabled counterpart, for the README's
// overhead table.
func BenchmarkStartSpanEnabled(b *testing.B) {
	rt := obs.NewReqTrace("r", "n")
	ctx := obs.WithReqTrace(context.Background(), rt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.StartSpan(ctx, "decode")
		sp.End()
	}
}
