package obs

import (
	"testing"

	"repro/internal/interconnect"
)

func TestCollect(t *testing.T) {
	events := []Event{
		{Kind: KindInstr, Flags: FlagHasOp | FlagALU, Track: 0, Cycle: 0, Dur: 1, Arg: 2},
		{Kind: KindInstr, Flags: FlagHasOp, Track: 0, Cycle: 1, Dur: 1, Arg: 3},
		{Kind: KindInstr, Track: 1, Cycle: 0, Dur: 4, Arg: 7}, // dataflow node firing
		{Kind: KindMemRead, Track: 0, Cycle: 2, Arg: 10},
		{Kind: KindMemWrite, Track: 0, Cycle: 3, Arg: 11},
		{Kind: KindMemWrite, Track: 1, Cycle: 3, Arg: 12},
		{Kind: KindSend, Track: 0, Cycle: 4, Arg: 1},
		{Kind: KindRecv, Track: 1, Cycle: 5, Arg: 0},
		{Kind: KindBarrier, Track: TrackMachine, Cycle: 6},
		{Kind: KindStall, Track: 0, Cycle: 7, Dur: 3, Arg: 3},
		{Kind: KindWait, Track: 1, Cycle: 7, Dur: 5, Arg: 7},
		{Kind: KindReconfig, Track: TrackMachine, Cycle: 8, Arg: 1000},
	}
	reg := NewRegistry()
	if err := Collect(reg, events); err != nil {
		t.Fatal(err)
	}
	wantCounters := map[string]int64{
		MetricInstructions: 3,
		MetricALUOps:       1,
		MetricMemReads:     1,
		MetricMemWrites:    2,
		MetricMessages:     2,
		MetricBarriers:     1,
		MetricNetConflict:  3,
		MetricReconfigs:    1,
		MetricReconfigBits: 1000,
	}
	for name, want := range wantCounters {
		if got, ok := reg.CounterValue(name); !ok || got != want {
			t.Errorf("%s = %d (ok=%v), want %d", name, got, ok, want)
		}
	}
	if got, _ := reg.CounterValue(MetricTrackInstrs, "track", "0"); got != 2 {
		t.Errorf("track 0 instrs = %d, want 2", got)
	}
	if got, _ := reg.CounterValue(MetricTrackInstrs, "track", "1"); got != 1 {
		t.Errorf("track 1 instrs = %d, want 1", got)
	}
	// The node firing has no FlagHasOp, so its mix op is "node".
	if got, _ := reg.CounterValue(MetricInstrMix, "track", "1", "op", "node"); got != 1 {
		t.Errorf("node mix = %d, want 1", got)
	}
	// Gauges: makespan is max(Cycle+Dur) = 12 (wait at 7+5); tracks 0 and 1.
	g, err := reg.Gauge(MetricCycles, "")
	if err != nil {
		t.Fatal(err)
	}
	if g.Value() != 12 {
		t.Errorf("%s = %g, want 12", MetricCycles, g.Value())
	}
	tracks, err := reg.Gauge(MetricTracks, "")
	if err != nil {
		t.Fatal(err)
	}
	if tracks.Value() != 2 {
		t.Errorf("%s = %g, want 2", MetricTracks, tracks.Value())
	}
}

func TestCollectAccumulates(t *testing.T) {
	reg := NewRegistry()
	ev := []Event{{Kind: KindInstr, Track: 0, Cycle: 0, Dur: 1}}
	if err := Collect(reg, ev); err != nil {
		t.Fatal(err)
	}
	if err := Collect(reg, ev); err != nil {
		t.Fatal(err)
	}
	if got, _ := reg.CounterValue(MetricInstructions); got != 2 {
		t.Errorf("two collects = %d instructions, want 2", got)
	}
}

func TestObserveNetwork(t *testing.T) {
	inner, err := interconnect.NewCrossbar(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := ObserveNetwork(inner, nil); got != interconnect.Network(inner) {
		t.Error("nil tracer must return the raw network")
	}

	tr := NewTrace()
	net := ObserveNetwork(inner, tr)
	// Two transfers to the same output port in the same cycle: the second
	// serializes and loses exactly one cycle.
	if _, err := net.Transfer(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Transfer(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d stall events, want 1 (conflict-free transfer must not emit)", len(evs))
	}
	e := evs[0]
	if e.Kind != KindStall || e.Track != 1 || e.Cycle != 0 || e.Dur != 1 || e.Arg != 1 {
		t.Errorf("stall event = %+v", e)
	}
	if got := inner.Stats().ConflictCycles; got != e.Arg {
		t.Errorf("network counts %d conflict cycles, event says %d", got, e.Arg)
	}
	// The wrapper must still expose the inner network's interface.
	if net.Ports() != 4 || net.Kind() != inner.Kind() {
		t.Error("wrapper does not forward Ports/Kind")
	}
}
