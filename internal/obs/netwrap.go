package obs

import "repro/internal/interconnect"

// observedNetwork decorates an interconnect.Network so that every Transfer
// whose word waited on a contended resource emits a KindStall event on the
// source port's track. The decorator diffs the network's own ConflictCycles
// counter around the call, so the traced stall total is exactly the
// NetConflictCycles the simulator later folds into machine.Stats.
type observedNetwork struct {
	interconnect.Network
	tr Tracer
}

// ObserveNetwork wraps net so contention stalls reach tr. A nil tracer
// returns net unchanged: the disabled path keeps the raw network.
func ObserveNetwork(net interconnect.Network, tr Tracer) interconnect.Network {
	if tr == nil {
		return net
	}
	return &observedNetwork{Network: net, tr: tr}
}

// Transfer implements interconnect.Network.
func (o *observedNetwork) Transfer(now int64, src, dst int) (int64, error) {
	before := o.Network.Stats().ConflictCycles
	arrival, err := o.Network.Transfer(now, src, dst)
	if err != nil {
		return arrival, err
	}
	if delta := o.Network.Stats().ConflictCycles - before; delta > 0 {
		o.tr.Emit(Event{Kind: KindStall, Track: int32(src), Cycle: now, Dur: delta, Arg: delta})
	}
	return arrival, nil
}
