package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// FlightRecorder is the always-on tail-latency recorder: a fixed-size ring
// of the most recent request traces plus a fixed-size set of the slowest
// ones seen since boot. It holds snapshots — immutable, bounded — so a
// recorder that runs for weeks costs the same memory as one that ran for a
// minute, and /debug/requests can answer "what did the slowest request do"
// without any sampling having been configured in advance.
type FlightRecorder struct {
	mu        sync.Mutex
	recentCap int
	slowCap   int
	total     int64
	// recent is a ring: next points at the slot the next Record overwrites.
	recent []*TraceSnapshot
	next   int
	// slow holds the slowest snapshots, ascending by duration, so the
	// eviction candidate is always slow[0].
	slow []*TraceSnapshot
}

// NewFlightRecorder sizes the recorder: recentN most recent traces and
// slowN slowest traces. Capacities <= 0 disable the respective set.
func NewFlightRecorder(recentN, slowN int) *FlightRecorder {
	if recentN < 0 {
		recentN = 0
	}
	if slowN < 0 {
		slowN = 0
	}
	return &FlightRecorder{recentCap: recentN, slowCap: slowN}
}

// Record admits one finished request trace.
func (f *FlightRecorder) Record(snap *TraceSnapshot) {
	if snap == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	if f.recentCap > 0 {
		if len(f.recent) < f.recentCap {
			f.recent = append(f.recent, snap)
		} else {
			f.recent[f.next] = snap
		}
		f.next = (f.next + 1) % f.recentCap
	}
	if f.slowCap > 0 {
		if len(f.slow) < f.slowCap {
			f.slow = append(f.slow, snap)
		} else if snap.DurationMs > f.slow[0].DurationMs {
			f.slow[0] = snap
		} else {
			return
		}
		sort.SliceStable(f.slow, func(i, j int) bool { return f.slow[i].DurationMs < f.slow[j].DurationMs })
	}
}

// Find returns the recorded trace with the given request ID, or nil. The
// slow set is searched first: a tail outlier outlives its recency window.
func (f *FlightRecorder) Find(id string) *TraceSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.slow {
		if s.ID == id {
			return s
		}
	}
	for _, s := range f.recent {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// TraceSummary is one flight-recorder row: the trace without its span tree,
// small enough to list.
type TraceSummary struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	DurationMs float64 `json:"duration_ms"`
	Status     int     `json:"status,omitempty"`
	Spans      int     `json:"spans"`
	SimEvents  int     `json:"sim_events,omitempty"`
}

// summarize collapses a snapshot into its listing row.
func summarize(s *TraceSnapshot) TraceSummary {
	sum := TraceSummary{
		ID:         s.ID,
		Name:       s.Name,
		DurationMs: s.DurationMs,
		Status:     s.Status,
		Spans:      len(s.Spans),
	}
	for _, sim := range s.Sims {
		sum.SimEvents += sim.EventCount
	}
	return sum
}

// FlightDump is the /debug/requests listing body.
type FlightDump struct {
	// Total counts every request recorded since boot, admitted or evicted.
	Total int64 `json:"total"`
	// Recent lists the newest traces first.
	Recent []TraceSummary `json:"recent"`
	// Slowest lists the slowest traces first.
	Slowest []TraceSummary `json:"slowest"`
}

// Dump summarizes the recorder's current contents.
func (f *FlightRecorder) Dump() FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FlightDump{Total: f.total, Recent: []TraceSummary{}, Slowest: []TraceSummary{}}
	// Walk the ring backwards from the most recently written slot.
	for i := 0; i < len(f.recent); i++ {
		idx := (f.next - 1 - i + 2*f.recentCap) % f.recentCap
		if idx < len(f.recent) {
			d.Recent = append(d.Recent, summarize(f.recent[idx]))
		}
	}
	for i := len(f.slow) - 1; i >= 0; i-- {
		d.Slowest = append(d.Slowest, summarize(f.slow[i]))
	}
	return d
}

// WriteJSON writes the listing as indented JSON.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Dump())
}
