package obs_test

// Tests of the flight recorder: ring eviction of the recent set, the
// keep-the-slowest policy, lookup order, and the listing shape.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// snap builds a minimal snapshot with the given id and duration.
func snap(id string, ms float64) *obs.TraceSnapshot {
	return &obs.TraceSnapshot{ID: id, Name: "/v1/test", DurationMs: ms, Status: 200}
}

// TestFlightRecentEviction fills a 3-slot ring with 5 traces and checks only
// the newest 3 remain, newest first.
func TestFlightRecentEviction(t *testing.T) {
	f := obs.NewFlightRecorder(3, 0)
	for i := 1; i <= 5; i++ {
		f.Record(snap(fmt.Sprintf("r%d", i), float64(i)))
	}
	d := f.Dump()
	if d.Total != 5 {
		t.Errorf("total = %d, want 5", d.Total)
	}
	var ids []string
	for _, s := range d.Recent {
		ids = append(ids, s.ID)
	}
	if fmt.Sprint(ids) != "[r5 r4 r3]" {
		t.Errorf("recent = %v, want [r5 r4 r3]", ids)
	}
	if len(d.Slowest) != 0 {
		t.Errorf("slowest = %v, want empty (capacity 0)", d.Slowest)
	}
	if f.Find("r1") != nil {
		t.Error("r1 should have been evicted from the ring")
	}
	if f.Find("r5") == nil {
		t.Error("r5 should be findable")
	}
}

// TestFlightSlowestRetention checks the slow set keeps the slowest traces
// regardless of arrival order, and that a fast trace never evicts a slower
// one.
func TestFlightSlowestRetention(t *testing.T) {
	f := obs.NewFlightRecorder(1, 2)
	f.Record(snap("mid", 50))
	f.Record(snap("slowest", 500))
	f.Record(snap("fast", 1)) // must not enter the slow set
	f.Record(snap("slower", 100))
	d := f.Dump()
	var ids []string
	for _, s := range d.Slowest {
		ids = append(ids, s.ID)
	}
	if fmt.Sprint(ids) != "[slowest slower]" {
		t.Errorf("slowest = %v, want [slowest slower]", ids)
	}
	// The ring only holds the newest trace, but the tail outlier survives in
	// the slow set — the recorder's whole point.
	if f.Find("slowest") == nil {
		t.Error("tail outlier fell out of the recorder")
	}
}

// TestFlightDumpJSON checks the listing is valid JSON with the summary
// fields and no span payloads.
func TestFlightDumpJSON(t *testing.T) {
	f := obs.NewFlightRecorder(2, 2)
	s := snap("r1", 10)
	s.Spans = []obs.SpanSnapshot{{ID: 0, Parent: obs.SpanNone, Name: "root"}}
	s.Sims = []obs.SimSnapshot{{Span: 0, Label: "sim", EventCount: 42}}
	f.Record(s)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d obs.FlightDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("listing is not valid JSON: %v", err)
	}
	if len(d.Recent) != 1 || d.Recent[0].Spans != 1 || d.Recent[0].SimEvents != 42 {
		t.Errorf("summary row = %+v, want 1 span and 42 sim events", d.Recent)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"spans":[`)) {
		t.Error("listing should summarize spans, not embed them")
	}
}

// TestFlightNilAndDisabled checks the degenerate configurations stay safe.
func TestFlightNilAndDisabled(t *testing.T) {
	f := obs.NewFlightRecorder(0, 0)
	f.Record(nil)
	f.Record(snap("r", 1))
	d := f.Dump()
	if d.Total != 1 || len(d.Recent) != 0 || len(d.Slowest) != 0 {
		t.Errorf("disabled recorder dump = %+v", d)
	}
	if f.Find("r") != nil {
		t.Error("disabled recorder should hold nothing")
	}
}
