package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines and checks no sample is lost: the lock-free Observe must be
// exactly as accurate as the mutex it replaced.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("lat", "latency", []float64{1, 10, 100})
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 200))
			}
		}(g)
	}
	wg.Wait()
	if n := h.Count(); n != goroutines*perG {
		t.Fatalf("count %d, want %d", n, goroutines*perG)
	}
	// Each goroutine observes 0..199 repeated: per 200 samples the sum is
	// 199*200/2 = 19900.
	want := float64(goroutines) * float64(perG/200) * 19900
	if s := h.Sum(); s != want {
		t.Fatalf("sum %g, want %g", s, want)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `lat_bucket{le="+Inf"} 16000`) {
		t.Fatalf("exposition lost samples:\n%s", buf.String())
	}
}

// TestRegistryConcurrentReadWrite races registration, updates and both
// expositions; run under -race this proves a monitoring goroutine can
// scrape a registry that live simulations are writing to.
func TestRegistryConcurrentReadWrite(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() { // registering + updating writer
		defer wg.Done()
		names := []string{"a_total", "b_total", "c_total"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := r.MustCounter(names[i%len(names)], "help", "class", "IMP-I")
			c.Inc()
			g := r.MustGauge("util", "utilisation")
			g.Set(float64(i))
			h := r.MustHistogram("cyc", "cycles", []float64{10, 100})
			h.Observe(float64(i % 50))
		}
	}()
	go func() { // prom scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteProm(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // json scraper + point reads
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
			r.CounterValue("a_total", "class", "IMP-I")
		}
	}()
	for i := 0; i < 200; i++ {
		r.MustCounter("d_total", "help").Inc()
	}
	close(stop)
	wg.Wait()
}

// TestAcquireReleaseTrace pins the trace pool contract: acquired recorders
// start empty even after recycling a dirty one.
func TestAcquireReleaseTrace(t *testing.T) {
	tr := AcquireTrace()
	tr.Emit(Event{Kind: KindInstr, Cycle: 1})
	tr.Emit(Event{Kind: KindMemRead, Cycle: 2})
	if tr.Len() != 2 {
		t.Fatalf("len %d", tr.Len())
	}
	ReleaseTrace(tr)
	tr2 := AcquireTrace()
	if tr2.Len() != 0 {
		t.Fatalf("recycled trace not empty: %d events", tr2.Len())
	}
	ReleaseTrace(tr2)
	ReleaseTrace(nil) // must not panic
}
