package obs_test

// Integration tests of the tracing layer against the real simulators: the
// golden Chrome export of a tiny lockstep run, the timestamp invariants of
// the exporter on real event streams, concurrent emission, the
// zero-allocation guarantee of the disabled path, and the invariant that
// collected metrics equal the machine.Stats of the traced run.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// update regenerates the golden Chrome trace instead of comparing:
//
//	go test ./internal/obs -run TestChromeGolden -update
var update = flag.Bool("update", false, "rewrite golden trace files")

// TestChromeGolden_IAP1VecAdd pins the Chrome export of a 2-lane IAP-I
// vector add over 4 elements byte-for-byte. The simulators are
// deterministic, so any diff is a real change to either the
// instrumentation or the export format.
func TestChromeGolden_IAP1VecAdd(t *testing.T) {
	a := []isa.Word{1, 2, 3, 4}
	b := []isa.Word{10, 20, 30, 40}
	tr := obs.NewTrace()
	if _, err := workload.VecAddSIMD(1, 2, a, b, workload.WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, obs.ChromeOptions{Process: "IAP-I vecadd"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_iap1_vecadd.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("Chrome export drifted from golden file (rerun with -update after reviewing)\ngot:\n%s", buf.String())
	}
}

// chromeEvents decodes the data (non-metadata) events of an export.
func chromeEvents(t *testing.T, data []byte) []struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Tid  int64  `json:"tid"`
} {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Tid  int64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	out := doc.TraceEvents[:0]
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			out = append(out, e)
		}
	}
	return out
}

// TestChromeMonotonePerTrack_MIMD checks the exporter's ordering invariant
// on a real asynchronous-core run: within every thread row, timestamps
// never go backwards.
func TestChromeMonotonePerTrack_MIMD(t *testing.T) {
	a, b := seq(64, 1), seq(64, 3)
	tr := obs.NewTrace()
	if _, err := workload.DotMIMD(2, 4, a, b, workload.WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, obs.ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	last := map[int64]int64{}
	count := 0
	for _, e := range chromeEvents(t, buf.Bytes()) {
		if prev, seen := last[e.Tid]; seen && e.Ts < prev {
			t.Fatalf("tid %d: ts %d after %d (event %s)", e.Tid, e.Ts, prev, e.Name)
		}
		last[e.Tid] = e.Ts
		count++
	}
	if count == 0 {
		t.Fatal("no data events recorded")
	}
	// One row per core; the butterfly uses no barriers, so no machine row.
	if len(last) != 4 {
		t.Errorf("got %d thread rows, want 4 (one per core)", len(last))
	}
}

// TestChromeConcurrentMIMDEmission shares one Trace between several MIMD
// runs emitting from concurrent goroutines and checks the export is still
// one valid JSON document.
func TestChromeConcurrentMIMDEmission(t *testing.T) {
	a, b := seq(32, 1), seq(32, 3)
	tr := obs.NewTrace()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = workload.DotMIMD(2, 4, a, b, workload.WithTracer(tr))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, obs.ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent emission produced an invalid JSON export")
	}
	if got := chromeEvents(t, buf.Bytes()); len(got) != 4*tracedEventCount(t, a, b) {
		t.Errorf("got %d events from 4 runs, want 4x%d", len(got), tracedEventCount(t, a, b))
	}
}

// tracedEventCount runs one traced DotMIMD and reports its event count.
func tracedEventCount(t *testing.T, a, b []isa.Word) int {
	t.Helper()
	tr := obs.NewTrace()
	if _, err := workload.DotMIMD(2, 4, a, b, workload.WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	return tr.Len()
}

// TestDisabledTracerZeroAllocs proves the no-op path: machine.Step with a
// nil Tracer must not allocate, for memory, network and plain ALU
// instructions alike.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	mem, err := machine.NewMemory(16)
	if err != nil {
		t.Fatal(err)
	}
	var inbox isa.Word
	env := machine.Env{
		Lane:     0,
		Load:     mem.Load,
		Store:    mem.Store,
		SendTo:   func(peer int, val isa.Word) error { inbox = val; return nil },
		RecvFrom: func(peer int) (isa.Word, error) { return inbox, nil },
	}
	prog, err := isa.Assemble(`
        ldi  r1, 3
        ldi  r2, 4
        add  r3, r1, r2
        st   r3, [r1+0]
        ld   r4, [r1+0]
        send r4, r2
        recv r5, r2
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	var regs machine.Regs
	allocs := testing.AllocsPerRun(100, func() {
		for pc := 0; pc < len(prog); {
			out, err := machine.Step(&regs, pc, prog[pc], env)
			if err != nil {
				t.Fatal(err)
			}
			if out.Halted {
				break
			}
			pc = out.NextPC
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-tracer Step path allocates %.1f times per program, want 0", allocs)
	}
}

// TestMetricsMatchStats checks the tentpole invariant across classes: the
// counters Collect aggregates from a run's trace equal the machine.Stats
// the simulator returned.
func TestMetricsMatchStats(t *testing.T) {
	a, b := seq(64, 1), seq(64, 3)
	cases := []struct {
		name string
		run  func(...workload.Option) (workload.Result, error)
	}{
		{"IUP vecadd", func(o ...workload.Option) (workload.Result, error) { return workload.VecAddUni(a, b, o...) }},
		{"IUP dot", func(o ...workload.Option) (workload.Result, error) { return workload.DotUni(a, b, o...) }},
		{"IAP-I vecadd", func(o ...workload.Option) (workload.Result, error) { return workload.VecAddSIMD(1, 4, a, b, o...) }},
		{"IAP-II dot", func(o ...workload.Option) (workload.Result, error) { return workload.DotSIMD(2, 4, a, b, o...) }},
		{"IAP-IV dot", func(o ...workload.Option) (workload.Result, error) { return workload.DotSIMD(4, 4, a, b, o...) }},
		{"IMP-II dot", func(o ...workload.Option) (workload.Result, error) { return workload.DotMIMD(2, 4, a, b, o...) }},
		{"IMP-XVI vecadd", func(o ...workload.Option) (workload.Result, error) { return workload.VecAddMIMD(16, 4, a, b, o...) }},
		{"IMP-II scan", func(o ...workload.Option) (workload.Result, error) { return workload.ScanMIMD(2, 4, a, o...) }},
		{"IMP-I partial dot", func(o ...workload.Option) (workload.Result, error) { return workload.DotMIMDPartial(1, 4, a, b, o...) }},
		{"DMP-I vecadd", func(o ...workload.Option) (workload.Result, error) { return workload.VecAddDataflow(1, 4, a, b, o...) }},
		{"DMP-IV vecadd", func(o ...workload.Option) (workload.Result, error) { return workload.VecAddDataflow(4, 4, a, b, o...) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := obs.NewTrace()
			res, err := tc.run(workload.WithTracer(tr))
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			if err := obs.Collect(reg, tr.Events()); err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			for _, check := range []struct {
				metric string
				want   int64
			}{
				{obs.MetricInstructions, s.Instructions},
				{obs.MetricALUOps, s.ALUOps},
				{obs.MetricMemReads, s.MemReads},
				{obs.MetricMemWrites, s.MemWrites},
				{obs.MetricMessages, s.Messages},
				{obs.MetricBarriers, s.Barriers},
				{obs.MetricNetConflict, s.NetConflictCycles},
			} {
				got, _ := reg.CounterValue(check.metric)
				if got != check.want {
					t.Errorf("%s = %d, stats say %d", check.metric, got, check.want)
				}
			}
		})
	}
}

// seq builds [start, start+1, ...] of length n.
func seq(n int, start int) []isa.Word {
	out := make([]isa.Word, n)
	for i := range out {
		out[i] = isa.Word(start + i)
	}
	return out
}

// BenchmarkStepTracedVsUntraced times the hot Step path with tracing off
// (nil Tracer), with the allocation-free Discard tracer, and with the
// recording Trace, so the overhead of the disabled path is directly
// visible: go test ./internal/obs -bench StepTracedVsUntraced -benchmem.
func BenchmarkStepTracedVsUntraced(b *testing.B) {
	mem, err := machine.NewMemory(16)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := isa.Assemble(`
        ldi  r1, 3
        add  r3, r1, r1
        st   r3, [r1+0]
        ld   r4, [r1+0]
        halt
`)
	if err != nil {
		b.Fatal(err)
	}
	runProg := func(b *testing.B, tr obs.Tracer) {
		env := machine.Env{Load: mem.Load, Store: mem.Store, Tracer: tr}
		var regs machine.Regs
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for pc := 0; pc < len(prog); {
				out, err := machine.Step(&regs, pc, prog[pc], env)
				if err != nil {
					b.Fatal(err)
				}
				if out.Halted {
					break
				}
				pc = out.NextPC
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { runProg(b, nil) })
	b.Run("discard", func(b *testing.B) { runProg(b, obs.Discard{}) })
	b.Run("recording", func(b *testing.B) {
		tr := obs.NewTrace()
		runProg(b, tr)
		if tr.Len() == 0 {
			b.Fatal("recording run captured nothing")
		}
	})
}

// BenchmarkMorphProbesTraced is BenchmarkMorphProbes with a recording
// tracer attached, so the cost of observing the whole P1 probe suite is
// measurable against the root package's untraced baseline.
func BenchmarkMorphProbesTraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace()
		probes, err := workload.RunProbes(workload.WithTracer(tr))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range probes {
			if !p.Holds {
				b.Fatalf("claim failed: %s", p.Claim)
			}
		}
		if tr.Len() == 0 {
			b.Fatal("probes emitted no events")
		}
	}
}

