// Package obs is the cross-simulator observability layer: a Tracer
// interface every machine-class simulator emits fine-grained run events
// into, an in-memory Trace recorder with a Chrome trace-event (Perfetto-
// loadable) JSON exporter, and a metrics registry with Prometheus-style
// text exposition and a JSON dump.
//
// The paper's flexibility arguments (§III.B) are about *where* machine
// classes spend their cycles — broadcast versus message traffic,
// configuration overhead, interconnect contention. machine.Stats collapses
// a run into eight final counters; this package keeps the dynamics: one
// event per retired instruction, memory access, message, barrier, network
// stall and reconfiguration, stamped with guest cycle and track (the
// processor, lane, core or PE it happened on).
//
// Tracing is strictly opt-in. Every hook site guards with a nil check and
// events are passed by value, so the disabled path adds zero allocations
// and no measurable overhead to the cycle loops (bench_test.go's
// BenchmarkStepTracedVsUntraced and TestDisabledTracerZeroAllocs hold the
// guarantee).
package obs

// Kind identifies what a trace event records.
type Kind uint8

const (
	// KindInstr is one retired instruction (or one fired dataflow node).
	KindInstr Kind = iota
	// KindMemRead is one DP-DM read; Arg is the word address.
	KindMemRead
	// KindMemWrite is one DP-DM write; Arg is the word address.
	KindMemWrite
	// KindSend is one word entering a DP-DP (or IP-IP) network; Arg is the
	// destination port.
	KindSend
	// KindRecv is one word leaving a DP-DP network; Arg is the source port.
	KindRecv
	// KindBarrier is one completed machine-wide synchronization.
	KindBarrier
	// KindStall is cycles lost to interconnect contention; Arg is the
	// stall length in cycles.
	KindStall
	// KindWait is a processor waiting on a dependency that is not network
	// contention: a barrier entry, or a dataflow node queued behind a busy
	// PE. Dur is the wait length when known.
	KindWait
	// KindReconfig is one configuration-bitstream load on a universal-flow
	// fabric; Arg is the bitstream size in bits.
	KindReconfig
	// KindPhase is a named run phase; Arg is caller-defined.
	KindPhase

	kindCount
)

// String names the kind for exports and metrics.
func (k Kind) String() string {
	switch k {
	case KindInstr:
		return "instr"
	case KindMemRead:
		return "mem-read"
	case KindMemWrite:
		return "mem-write"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindBarrier:
		return "barrier"
	case KindStall:
		return "net-stall"
	case KindWait:
		return "wait"
	case KindReconfig:
		return "reconfig"
	case KindPhase:
		return "phase"
	}
	return "unknown"
}

// Event flag bits.
const (
	// FlagALU marks a KindInstr event whose operation counts as an ALU op
	// in machine.Stats.
	FlagALU uint8 = 1 << iota
	// FlagHasOp marks a KindInstr event whose Arg is an isa opcode (rather
	// than a dataflow node ID).
	FlagHasOp
)

// TrackMachine is the track of machine-global events (barriers,
// reconfigurations) that belong to no single processor.
const TrackMachine int32 = -1

// Event is one observed occurrence in a simulated run. It is a flat value
// type — no pointers, no strings — so emitting one never allocates.
type Event struct {
	// Kind says what happened.
	Kind Kind
	// Flags qualifies the event (FlagALU, FlagHasOp).
	Flags uint8
	// Track is the processor/lane/core/PE index, or TrackMachine.
	Track int32
	// Cycle is the guest cycle the event started at.
	Cycle int64
	// Dur is the event's span in cycles; 0 means instantaneous.
	Dur int64
	// Arg is kind-specific: opcode or node ID (KindInstr), address
	// (KindMemRead/Write), peer port (KindSend/Recv), stall cycles
	// (KindStall), bitstream bits (KindReconfig).
	Arg int64
}

// Tracer receives events from the simulators. Implementations must be
// safe for concurrent Emit calls: the MIMD and dataflow engines may emit
// from multiple goroutines in future schedulers, and tests do today.
type Tracer interface {
	Emit(Event)
}

// Discard is a Tracer that drops every event: the enabled-but-free
// baseline benchmarks compare against.
type Discard struct{}

// Emit implements Tracer.
func (Discard) Emit(Event) {}
