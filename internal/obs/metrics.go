package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and histograms and renders them as
// a Prometheus-style text exposition or a machine-readable JSON dump.
// Registration is idempotent: asking for an existing name+labels returns
// the same instrument, so collectors can be re-run.
type Registry struct {
	// mu is a RWMutex so exposition and point reads (WriteProm, WriteJSON,
	// CounterValue) from a monitoring goroutine only contend with
	// registration, never with each other. Instrument updates (Inc, Set,
	// Observe) are lock-free atomics and never touch mu at all.
	mu       sync.RWMutex
	families map[string]*family
}

// family groups every labeled instance of one metric name.
type family struct {
	name, help, kind string
	instances        map[string]*instrument // keyed by rendered label set
}

// instrument is one (name, labels) series.
type instrument struct {
	labels string // rendered {k="v",...} or ""
	// counter/gauge state. Counters are integral, gauges are float bits.
	count int64
	gauge uint64
	// histogram state (nil for counters and gauges).
	hist *histState
}

// histState is lock-free: Observe is on every simulator's cycle path (cycle
// and IPC histograms), and with internal/exec running cells on all cores a
// mutex here serializes the whole fleet. Buckets and the sample count are
// plain atomic adds; the float sum is a CAS loop over its bit pattern.
// Readers see each field monotone and individually consistent; a reader
// racing an Observe may see n updated before sum (or vice versa), which the
// expositions tolerate — they are sampling a live system.
type histState struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit; immutable
	buckets []int64   // len(bounds)+1, last is +Inf; atomic access
	sumBits uint64    // math.Float64bits of the running sum; CAS access
	n       int64     // atomic access
}

// addSum folds v into the running float sum with a compare-and-swap loop.
func (s *histState) addSum(v float64) {
	for {
		old := atomic.LoadUint64(&s.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&s.sumBits, old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ in *instrument }

// Inc adds one.
func (c *Counter) Inc() { atomic.AddInt64(&c.in.count, 1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { atomic.AddInt64(&c.in.count, n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.in.count) }

// Gauge is a settable float metric.
type Gauge struct{ in *instrument }

// Set stores v.
func (g *Gauge) Set(v float64) { atomic.StoreUint64(&g.in.gauge, math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.in.gauge)) }

// Histogram is a cumulative-bucket distribution metric.
type Histogram struct{ in *instrument }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	s := h.in.hist
	idx := sort.SearchFloat64s(s.bounds, v) // first bound >= v
	atomic.AddInt64(&s.buckets[idx], 1)
	s.addSum(v)
	atomic.AddInt64(&s.n, 1)
}

// Count reports how many samples were observed.
func (h *Histogram) Count() int64 {
	return atomic.LoadInt64(&h.in.hist.n)
}

// Sum reports the total of all observed samples.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(atomic.LoadUint64(&h.in.hist.sumBits))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels builds the canonical {k="v",...} form from k,v pairs.
func renderLabels(labelPairs []string) (string, error) {
	if len(labelPairs) == 0 {
		return "", nil
	}
	if len(labelPairs)%2 != 0 {
		return "", fmt.Errorf("obs: odd label list %q (want key,value pairs)", labelPairs)
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		pairs = append(pairs, kv{labelPairs[i], labelPairs[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String(), nil
}

// instrument finds or creates one series. kind mismatches on an existing
// name are an error: one name is one metric type.
func (r *Registry) instrument(name, help, kind string, bounds []float64, labelPairs []string) (*instrument, error) {
	labels, err := renderLabels(labelPairs)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, instances: map[string]*instrument{}}
		r.families[name] = fam
	}
	if fam.kind != kind {
		return nil, fmt.Errorf("obs: metric %q registered as %s, requested as %s", name, fam.kind, kind)
	}
	in := fam.instances[labels]
	if in == nil {
		in = &instrument{labels: labels}
		if kind == "histogram" {
			in.hist = &histState{
				bounds:  append([]float64(nil), bounds...),
				buckets: make([]int64, len(bounds)+1),
			}
		}
		fam.instances[labels] = in
	}
	return in, nil
}

// Counter registers (or finds) a counter. labelPairs is key,value,...
func (r *Registry) Counter(name, help string, labelPairs ...string) (*Counter, error) {
	in, err := r.instrument(name, help, "counter", nil, labelPairs)
	if err != nil {
		return nil, err
	}
	return &Counter{in: in}, nil
}

// MustCounter is Counter, panicking on registration errors (static names).
func (r *Registry) MustCounter(name, help string, labelPairs ...string) *Counter {
	c, err := r.Counter(name, help, labelPairs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labelPairs ...string) (*Gauge, error) {
	in, err := r.instrument(name, help, "gauge", nil, labelPairs)
	if err != nil {
		return nil, err
	}
	return &Gauge{in: in}, nil
}

// MustGauge is Gauge, panicking on registration errors.
func (r *Registry) MustGauge(name, help string, labelPairs ...string) *Gauge {
	g, err := r.Gauge(name, help, labelPairs...)
	if err != nil {
		panic(err)
	}
	return g
}

// Histogram registers (or finds) a histogram with the given ascending
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram %q bounds not ascending: %v", name, bounds)
		}
	}
	in, err := r.instrument(name, help, "histogram", bounds, labelPairs)
	if err != nil {
		return nil, err
	}
	return &Histogram{in: in}, nil
}

// MustHistogram is Histogram, panicking on registration errors.
func (r *Registry) MustHistogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	h, err := r.Histogram(name, help, bounds, labelPairs...)
	if err != nil {
		panic(err)
	}
	return h
}

// CounterValue reads a counter by name and labels; ok is false when the
// series does not exist.
func (r *Registry) CounterValue(name string, labelPairs ...string) (v int64, ok bool) {
	labels, err := renderLabels(labelPairs)
	if err != nil {
		return 0, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	fam := r.families[name]
	if fam == nil || fam.kind != "counter" {
		return 0, false
	}
	in := fam.instances[labels]
	if in == nil {
		return 0, false
	}
	return atomic.LoadInt64(&in.count), true
}

// famSnapshot pairs a family with its instance list, both captured under
// the registry read lock so expositions cannot race concurrent
// registration (the instance maps are only written under the write lock).
type famSnapshot struct {
	fam *family
	ins []*instrument
}

// sortedFamilies snapshots families in name order and each family's series
// in label order.
func (r *Registry) sortedFamilies() []famSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fams := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		ins := make([]*instrument, 0, len(f.instances))
		for _, in := range f.instances {
			ins = append(ins, in)
		}
		sort.Slice(ins, func(i, j int) bool { return ins[i].labels < ins[j].labels })
		fams = append(fams, famSnapshot{fam: f, ins: ins})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].fam.name < fams[j].fam.name })
	return fams
}

// formatBound renders a bucket upper bound the Prometheus way.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

// mergeLabels splices extra into an existing rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WriteProm writes the Prometheus text exposition (HELP/TYPE comments plus
// one line per series; histograms expand to _bucket/_sum/_count).
func (r *Registry) WriteProm(w io.Writer) error {
	for _, snap := range r.sortedFamilies() {
		fam := snap.fam
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind); err != nil {
			return err
		}
		for _, in := range snap.ins {
			switch fam.kind {
			case "counter":
				if _, err := fmt.Fprintf(w, "%s%s %d\n", fam.name, in.labels, atomic.LoadInt64(&in.count)); err != nil {
					return err
				}
			case "gauge":
				if _, err := fmt.Fprintf(w, "%s%s %g\n", fam.name, in.labels, math.Float64frombits(atomic.LoadUint64(&in.gauge))); err != nil {
					return err
				}
			case "histogram":
				s := in.hist
				var cum int64
				for i := range s.buckets {
					cum += atomic.LoadInt64(&s.buckets[i])
					bound := math.Inf(1)
					if i < len(s.bounds) {
						bound = s.bounds[i]
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						fam.name, mergeLabels(in.labels, fmt.Sprintf("le=%q", formatBound(bound))), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
					fam.name, in.labels, math.Float64frombits(atomic.LoadUint64(&s.sumBits)),
					fam.name, in.labels, atomic.LoadInt64(&s.n)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonMetric is one series in the JSON dump.
type jsonMetric struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Kind   string `json:"kind"`
	Help   string `json:"help,omitempty"`
	// Value holds counter (integer) and gauge (float) readings.
	Value *float64 `json:"value,omitempty"`
	// Histogram payload.
	Buckets []jsonBucket `json:"buckets,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Count   *int64       `json:"count,omitempty"`
}

type jsonBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// WriteJSON writes the machine-readable dump: a JSON array of series.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []jsonMetric
	for _, snap := range r.sortedFamilies() {
		fam := snap.fam
		for _, in := range snap.ins {
			m := jsonMetric{Name: fam.name, Labels: in.labels, Kind: fam.kind, Help: fam.help}
			switch fam.kind {
			case "counter":
				v := float64(atomic.LoadInt64(&in.count))
				m.Value = &v
			case "gauge":
				v := math.Float64frombits(atomic.LoadUint64(&in.gauge))
				m.Value = &v
			case "histogram":
				s := in.hist
				var cum int64
				for i := range s.buckets {
					cum += atomic.LoadInt64(&s.buckets[i])
					bound := math.Inf(1)
					if i < len(s.bounds) {
						bound = s.bounds[i]
					}
					m.Buckets = append(m.Buckets, jsonBucket{Le: formatBound(bound), Count: cum})
				}
				sum := math.Float64frombits(atomic.LoadUint64(&s.sumBits))
				n := atomic.LoadInt64(&s.n)
				m.Sum, m.Count = &sum, &n
			}
			out = append(out, m)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
