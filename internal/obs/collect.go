package obs

import (
	"fmt"

	"repro/internal/isa"
)

// Standard metric names every simulator run exports. The counter values
// are defined so that they equal the corresponding machine.Stats fields of
// the traced run — the invariant cmd/simulate -metrics cross-checks.
const (
	MetricInstructions     = "sim_instructions_total"
	MetricALUOps           = "sim_alu_ops_total"
	MetricMemReads         = "sim_mem_reads_total"
	MetricMemWrites        = "sim_mem_writes_total"
	MetricMessages         = "sim_messages_total"
	MetricBarriers         = "sim_barriers_total"
	MetricNetConflict      = "sim_net_conflict_cycles_total"
	MetricReconfigs        = "sim_reconfigs_total"
	MetricReconfigBits     = "sim_reconfig_bits_total"
	MetricCycles           = "sim_cycles"
	MetricTracks           = "sim_tracks"
	MetricInstrMix         = "sim_instruction_mix_total"
	MetricStallHist        = "sim_net_stall_cycles"
	MetricQueueWaitHist    = "sim_queue_wait_cycles"
	MetricTrackInstrs      = "sim_track_instructions_total"
)

// StallBuckets are the contention-stall histogram bounds in cycles.
var StallBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Collect aggregates a recorded event stream into reg using the standard
// metric names: run totals, the per-track instruction counts and
// instruction mix, the contention-stall histogram and the queue-wait
// (dataflow backlog, barrier entry) histogram. It can be called once per
// run; counters accumulate across calls on the same registry.
func Collect(reg *Registry, events []Event) error {
	instr := reg.MustCounter(MetricInstructions, "retired instructions (all tracks)")
	alu := reg.MustCounter(MetricALUOps, "arithmetic/logic operations")
	reads := reg.MustCounter(MetricMemReads, "DP-DM read traversals")
	writes := reg.MustCounter(MetricMemWrites, "DP-DM write traversals")
	msgs := reg.MustCounter(MetricMessages, "DP-DP and IP-IP network words")
	barriers := reg.MustCounter(MetricBarriers, "completed synchronizations")
	conflict := reg.MustCounter(MetricNetConflict, "cycles lost to interconnect contention")
	reconfigs := reg.MustCounter(MetricReconfigs, "configuration bitstream loads")
	reconfigBits := reg.MustCounter(MetricReconfigBits, "configuration bits loaded")
	stallHist := reg.MustHistogram(MetricStallHist, "interconnect stall lengths in cycles", StallBuckets)
	waitHist := reg.MustHistogram(MetricQueueWaitHist, "non-contention wait lengths in cycles (PE backlog, barrier entry)", StallBuckets)

	var maxCycle int64
	tracks := map[int32]bool{}
	for _, e := range events {
		if end := e.Cycle + e.Dur; end > maxCycle {
			maxCycle = end
		}
		if e.Track != TrackMachine {
			tracks[e.Track] = true
		}
		switch e.Kind {
		case KindInstr:
			instr.Inc()
			if e.Flags&FlagALU != 0 {
				alu.Inc()
			}
			track := fmt.Sprint(e.Track)
			op := "node"
			if e.Flags&FlagHasOp != 0 {
				op = isa.Op(e.Arg).String()
			}
			mix, err := reg.Counter(MetricInstrMix, "retired instructions by track and operation",
				"track", track, "op", op)
			if err != nil {
				return err
			}
			mix.Inc()
			perTrack, err := reg.Counter(MetricTrackInstrs, "retired instructions per track", "track", track)
			if err != nil {
				return err
			}
			perTrack.Inc()
		case KindMemRead:
			reads.Inc()
		case KindMemWrite:
			writes.Inc()
		case KindSend, KindRecv:
			msgs.Inc()
		case KindBarrier:
			barriers.Inc()
		case KindStall:
			conflict.Add(e.Arg)
			stallHist.Observe(float64(e.Arg))
		case KindWait:
			waitHist.Observe(float64(e.Dur))
		case KindReconfig:
			reconfigs.Inc()
			reconfigBits.Add(e.Arg)
		case KindPhase:
			// Phase markers delimit program stages; they carry no counter
			// of their own and surface through the trace views instead.
		}
	}
	reg.MustGauge(MetricCycles, "run makespan in guest cycles (max event end)").Set(float64(maxCycle))
	reg.MustGauge(MetricTracks, "distinct processor tracks observed").Set(float64(len(tracks)))
	return nil
}
