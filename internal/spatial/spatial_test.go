package spatial

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/taxonomy"
)

func TestClass(t *testing.T) {
	for sub := 1; sub <= 16; sub++ {
		cfg := Config{Cores: 4, BankWords: 16, Sub: sub}
		c, err := cfg.Class()
		if err != nil {
			t.Errorf("sub %d: %v", sub, err)
			continue
		}
		want := "ISP-" + taxonomy.Roman(sub)
		if c.String() != want {
			t.Errorf("sub %d classifies as %s, want %s", sub, c, want)
		}
	}
	if _, err := (Config{Cores: 4, BankWords: 16, Sub: 0}).Class(); err == nil {
		t.Error("sub 0 accepted")
	}
}

// laneSquare stores (cell index)^2 into each member's bank word 0.
var laneSquare = isa.MustAssemble(`
        lane r1
        mul  r2, r1, r1
        st   r2, [r0+0]
        halt
`)

func TestComposedGroup_ActsAsArrayProcessor(t *testing.T) {
	// One group spanning all 4 cells: the ISP morphs into an IAP. Sub-type
	// II keeps DP-DM direct, so [r0+0] is each cell's own bank.
	m, err := New(Config{Cores: 4, BankWords: 16, Sub: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(0, []int{1, 2, 3}, laneSquare); err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < 4; cell++ {
		out, err := m.ReadBank(cell, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != isa.Word(cell*cell) {
			t.Errorf("cell %d = %d, want %d", cell, out[0], cell*cell)
		}
	}
	// 3 instruction deliveries per streamed instruction (3 non-leader
	// members, 3 data instructions).
	if stats.Messages != 9 {
		t.Errorf("IP-IP deliveries = %d, want 9", stats.Messages)
	}
}

func TestSingletonGroups_ActAsMultiProcessor(t *testing.T) {
	// Four singleton groups, each with its own program: the ISP morphs
	// into an IMP, and no IP-IP traffic occurs.
	m, err := New(Config{Cores: 4, BankWords: 16, Sub: 1})
	if err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < 4; cell++ {
		prog := isa.MustAssemble(fmt.Sprintf("ldi r1, %d\nst r1, [r0+0]\nhalt", 100+cell))
		if err := m.Compose(cell, nil, prog); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < 4; cell++ {
		out, _ := m.ReadBank(cell, 0, 1)
		if out[0] != isa.Word(100+cell) {
			t.Errorf("cell %d = %d", cell, out[0])
		}
	}
	if stats.Messages != 0 {
		t.Errorf("singleton groups produced %d IP-IP deliveries, want 0", stats.Messages)
	}
}

func TestMixedPartition(t *testing.T) {
	// Cells {0,1} form a composed IP, cells {2} and {3} run alone: the
	// "change the size and dimensions of the instruction processor" claim.
	m, err := New(Config{Cores: 4, BankWords: 16, Sub: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(0, []int{1}, laneSquare); err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(2, nil, isa.MustAssemble("ldi r1, 7\nst r1, [r0+0]\nhalt")); err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(3, nil, isa.MustAssemble("ldi r1, 8\nst r1, [r0+0]\nhalt")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	wants := []isa.Word{0, 1, 7, 8}
	for cell, want := range wants {
		out, _ := m.ReadBank(cell, 0, 1)
		if out[0] != want {
			t.Errorf("cell %d = %d, want %d", cell, out[0], want)
		}
	}
}

func TestWindow_ConstrainsComposition(t *testing.T) {
	// DRRA-style window: a leader can only enslave cells within 2 hops.
	m, err := New(Config{Cores: 8, BankWords: 16, Sub: 1, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(3, []int{1, 2, 4, 5}, laneSquare); err != nil {
		t.Fatalf("in-window composition rejected: %v", err)
	}
	if err := m.Compose(6, []int{7}, laneSquare); err != nil {
		t.Fatal(err)
	}
	m2, err := New(Config{Cores: 8, BankWords: 16, Sub: 1, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Compose(0, []int{3}, laneSquare); err == nil ||
		!strings.Contains(err.Error(), "window") {
		t.Errorf("out-of-window composition: %v, want window error", err)
	}
}

func TestCrossGroupPipeline(t *testing.T) {
	// Group A (cell 0) produces values; group B (cell 1) consumes them over
	// the DP-DP network: composed IPs cooperating like Fig 5.
	m, err := New(Config{Cores: 2, BankWords: 16, Sub: 2}) // DP-DP crossbar
	if err != nil {
		t.Fatal(err)
	}
	producer := isa.MustAssemble(`
        ldi  r1, 42
        ldi  r2, 1
        send r1, r2
        halt
`)
	consumer := isa.MustAssemble(`
        ldi  r2, 0
        recv r3, r2
        st   r3, [r0+0]
        halt
`)
	if err := m.Compose(0, nil, producer); err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(1, nil, consumer); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out, _ := m.ReadBank(1, 0, 1)
	if out[0] != 42 {
		t.Errorf("pipeline delivered %d, want 42", out[0])
	}
}

func TestCrossGroupBarrier(t *testing.T) {
	m, err := New(Config{Cores: 2, BankWords: 16, Sub: 3}) // shared memory
	if err != nil {
		t.Fatal(err)
	}
	writer := isa.MustAssemble(`
        ldi r1, 9
        st  r1, [r0+3]
        sync
        halt
`)
	reader := isa.MustAssemble(`
        sync
        ld  r1, [r0+3]
        st  r1, [r0+16]
        halt
`)
	if err := m.Compose(0, nil, writer); err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(1, nil, reader); err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := m.ReadBank(1, 0, 1)
	if out[0] != 9 {
		t.Errorf("post-barrier read = %d, want 9", out[0])
	}
	if stats.Barriers != 1 {
		t.Errorf("barriers = %d", stats.Barriers)
	}
}

func TestDeadlock(t *testing.T) {
	m, err := New(Config{Cores: 2, BankWords: 16, Sub: 2})
	if err != nil {
		t.Fatal(err)
	}
	recvOnly := isa.MustAssemble("ldi r2, 1\nrecv r1, r2\nhalt")
	recvOnly2 := isa.MustAssemble("ldi r2, 0\nrecv r1, r2\nhalt")
	if err := m.Compose(0, nil, recvOnly); err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(1, nil, recvOnly2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("mutual recv: %v", err)
	}
}

func TestDeadline(t *testing.T) {
	m, err := New(Config{Cores: 2, BankWords: 16, Sub: 1, MaxCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(0, []int{1}, isa.MustAssemble("loop: jmp loop")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, machine.ErrDeadline) {
		t.Errorf("livelock: %v", err)
	}
}

func TestRun_RequiresFullPartition(t *testing.T) {
	m, err := New(Config{Cores: 4, BankWords: 16, Sub: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(0, []int{1}, laneSquare); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "no control group") {
		t.Errorf("partial partition: %v", err)
	}
}

func TestRun_OneShot(t *testing.T) {
	m, err := New(Config{Cores: 2, BankWords: 16, Sub: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(0, []int{1}, laneSquare); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Error("second Run accepted")
	}
	if err := m.Compose(0, nil, laneSquare); err == nil {
		t.Error("Compose after Run accepted")
	}
}

func TestCompose_Rejects(t *testing.T) {
	m, err := New(Config{Cores: 4, BankWords: 16, Sub: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(-1, nil, laneSquare); err == nil {
		t.Error("negative leader accepted")
	}
	if err := m.Compose(0, []int{9}, laneSquare); err == nil {
		t.Error("out-of-range member accepted")
	}
	if err := m.Compose(0, []int{0}, laneSquare); err == nil {
		t.Error("leader listed as member accepted")
	}
	if err := m.Compose(0, []int{1, 1}, laneSquare); err == nil {
		t.Error("duplicate member accepted")
	}
	if err := m.Compose(0, nil, nil); err == nil {
		t.Error("empty program accepted")
	}
	if err := m.Compose(0, nil, isa.Program{{Op: isa.OpJmp, Imm: 9}}); err == nil {
		t.Error("invalid program accepted")
	}
	if err := m.Compose(0, []int{1}, laneSquare); err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(1, nil, laneSquare); err == nil {
		t.Error("double assignment accepted")
	}
}

func TestNew_Rejects(t *testing.T) {
	if _, err := New(Config{Cores: 1, BankWords: 16, Sub: 1}); err == nil {
		t.Error("1-cell fabric accepted")
	}
	if _, err := New(Config{Cores: 4, BankWords: 0, Sub: 1}); err == nil {
		t.Error("0-word banks accepted")
	}
	if _, err := New(Config{Cores: 4, BankWords: 16, Sub: 17}); err == nil {
		t.Error("sub 17 accepted")
	}
	if _, err := New(Config{Cores: 4, BankWords: 16, Sub: 1, Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
}

func TestBankAccessors_Reject(t *testing.T) {
	m, err := New(Config{Cores: 2, BankWords: 8, Sub: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadBank(5, 0, nil); err == nil {
		t.Error("LoadBank(5) accepted")
	}
	if _, err := m.ReadBank(-1, 0, 1); err == nil {
		t.Error("ReadBank(-1) accepted")
	}
}

func TestNoDPDPNetwork_SendFails(t *testing.T) {
	m, err := New(Config{Cores: 2, BankWords: 16, Sub: 1}) // DP-DP none
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(0, nil, isa.MustAssemble("ldi r2, 1\nsend r1, r2\nhalt")); err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(1, nil, isa.MustAssemble("halt")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "DP-DP") {
		t.Errorf("send on ISP-I: %v", err)
	}
}

func TestNoDPDPNetwork_RecvFails(t *testing.T) {
	m, err := New(Config{Cores: 2, BankWords: 16, Sub: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(0, nil, isa.MustAssemble("recv r1, r2\nhalt")); err != nil {
		t.Fatal(err)
	}
	if err := m.Compose(1, nil, isa.MustAssemble("halt")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "DP-DP") {
		t.Errorf("recv on ISP-I: %v", err)
	}
}

func TestComposedGroupLoops(t *testing.T) {
	// A composed group running a loop: leader's registers carry control.
	// DP-DM stays direct so each cell counts in its own bank.
	m, err := New(Config{Cores: 2, BankWords: 16, Sub: 2})
	if err != nil {
		t.Fatal(err)
	}
	loop := isa.MustAssemble(`
        ldi  r1, 0
        ldi  r2, 4
loop:   ld   r3, [r0+0]
        addi r3, r3, 1
        st   r3, [r0+0]
        addi r1, r1, 1
        bne  r1, r2, loop
        halt
`)
	if err := m.Compose(0, []int{1}, loop); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < 2; cell++ {
		out, _ := m.ReadBank(cell, 0, 1)
		if out[0] != 4 {
			t.Errorf("cell %d counter = %d, want 4", cell, out[0])
		}
	}
}
