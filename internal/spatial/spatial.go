// Package spatial simulates the taxonomy's instruction-flow spatial
// processors (classes ISP-I..XVI, Table I rows 31-46): multi-processors
// whose instruction processors are themselves connected through an IP-IP
// switch, so several small IPs can be composed into one bigger IP — the
// "spatial computing" the paper introduces with these classes (§II.C,
// Fig 5), realized in silicon by DRRA-like fabrics.
//
// The model: the machine's cores are partitioned into control groups. Each
// group has a leader whose instruction processor sequences one program and
// streams every decoded instruction over the IP-IP network to the group's
// other members; all members execute the stream in lockstep on their own
// data processors, registers and memory banks. A group of one is an
// ordinary Von Neumann core; a single group spanning all cores makes the
// machine behave as an array processor; a partition into singleton groups
// makes it behave as a multi-processor. That one machine morphs between
// those shapes by re-partitioning is exactly the extra flexibility the
// taxonomy awards the ISP classes over IMP.
//
// The IP-IP switch may be a full crossbar or a limited window (DRRA's
// "3 hops left or right"); with a window, a group's members must be within
// the window of its leader, so the achievable compositions are constrained
// by the hardware — again the taxonomy's point, now operational.
package spatial

import (
	"fmt"

	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/taxonomy"
)

// Config describes one spatial-processor instance.
type Config struct {
	// Cores is the number of IP+DP cells n.
	Cores int
	// BankWords is each cell's data-memory bank size.
	BankWords int
	// Sub is the IMP-style sub-type 1..16 selecting the IP-DP, IP-IM,
	// DP-DM and DP-DP switch kinds (the ISP classes share the sub-type
	// semantics with IMP).
	Sub int
	// Window limits the IP-IP switch to leaders reaching members within
	// |leader-member| <= Window; 0 means a full IP-IP crossbar.
	Window int
	// MaxCycles bounds the run; 0 means machine.DefaultMaxCycles.
	MaxCycles int64
	// Tracer, when non-nil, receives run events: one track per cell, control
	// instructions on the leader's track, IP-IP instruction streaming as send
	// events, barrier releases on the machine track. Nil disables tracing.
	Tracer obs.Tracer
}

// links returns the taxonomy links of this configuration.
func (c Config) links() (taxonomy.Links, error) {
	if c.Sub < 1 || c.Sub > 16 {
		return taxonomy.Links{}, fmt.Errorf("spatial: sub-type must be 1..16, got %d", c.Sub)
	}
	bits := c.Sub - 1
	pick := func(bit int, off, on taxonomy.Link) taxonomy.Link {
		if bits&bit != 0 {
			return on
		}
		return off
	}
	return taxonomy.Links{
		taxonomy.SiteIPIP: taxonomy.LinkCrossbar,
		taxonomy.SiteIPDP: pick(8, taxonomy.LinkDirect, taxonomy.LinkCrossbar),
		taxonomy.SiteIPIM: pick(4, taxonomy.LinkDirect, taxonomy.LinkCrossbar),
		taxonomy.SiteDPDM: pick(2, taxonomy.LinkDirect, taxonomy.LinkCrossbar),
		taxonomy.SiteDPDP: pick(1, taxonomy.LinkNone, taxonomy.LinkCrossbar),
	}, nil
}

// Class returns the taxonomy class this configuration realizes.
func (c Config) Class() (taxonomy.Class, error) {
	links, err := c.links()
	if err != nil {
		return taxonomy.Class{}, err
	}
	return taxonomy.Classify(taxonomy.CountN, taxonomy.CountN, links)
}

func (c Config) validate() error {
	if c.Cores < 2 {
		return fmt.Errorf("spatial: a spatial processor needs n >= 2 cells, got %d", c.Cores)
	}
	if c.BankWords < 1 {
		return fmt.Errorf("spatial: bank size must be >= 1 word, got %d", c.BankWords)
	}
	if c.Window < 0 {
		return fmt.Errorf("spatial: window must be >= 0, got %d", c.Window)
	}
	if _, err := c.links(); err != nil {
		return err
	}
	return nil
}

// group is one composed instruction processor.
type group struct {
	leader  int
	members []int // includes the leader, sorted by construction order
	prog    isa.Program
	dec     isa.DecodedProgram
	regs    []machine.Regs // indexed like members
	pc      int
	halted  bool
	readyAt int64
	inSync  bool
	// syncAt is the cycle the group reached the current SYNC (traced waits).
	syncAt int64
}

// message is one DP-DP word in flight.
type message struct {
	val         isa.Word
	availableAt int64
}

// Machine is one spatial-processor instance.
type Machine struct {
	cfg      Config
	links    taxonomy.Links
	banks    []machine.Memory
	groups   []*group
	assigned []bool
	ipip     interconnect.Network
	memNet   interconnect.Network
	msgNet   interconnect.Network
	mail     [][][]message
	sealed   bool
	// envs holds one prebuilt environment per cell; the closures read the
	// cycle/finish fields below, refreshed per member step.
	envs   []machine.Env
	cycle  int64
	finish int64
}

// New builds an empty spatial fabric; compose control groups with Compose,
// then Run.
func New(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	links, err := cfg.links()
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		links:    links,
		banks:    make([]machine.Memory, cfg.Cores),
		assigned: make([]bool, cfg.Cores),
	}
	// On any failure past this point the cleanup returns the banks
	// acquired so far to their pool; success disarms it.
	built := false
	defer func() {
		if !built {
			m.Release()
		}
	}()
	for i := range m.banks {
		bank, err := machine.GetMemory(cfg.BankWords)
		if err != nil {
			return nil, err
		}
		m.banks[i] = bank
	}
	if cfg.Window > 0 {
		net, err := interconnect.NewLimited(cfg.Cores, cfg.Window)
		if err != nil {
			return nil, err
		}
		m.ipip = obs.ObserveNetwork(net, cfg.Tracer)
	} else {
		net, err := interconnect.NewCrossbar(cfg.Cores)
		if err != nil {
			return nil, err
		}
		m.ipip = obs.ObserveNetwork(net, cfg.Tracer)
	}
	if links[taxonomy.SiteDPDM] == taxonomy.LinkCrossbar {
		net, err := interconnect.NewCrossbar(cfg.Cores)
		if err != nil {
			return nil, err
		}
		m.memNet = obs.ObserveNetwork(net, cfg.Tracer)
	}
	if links[taxonomy.SiteDPDP] == taxonomy.LinkCrossbar {
		net, err := interconnect.NewCrossbar(cfg.Cores)
		if err != nil {
			return nil, err
		}
		m.msgNet = obs.ObserveNetwork(net, cfg.Tracer)
		m.mail = make([][][]message, cfg.Cores)
		for i := range m.mail {
			m.mail[i] = make([][]message, cfg.Cores)
		}
	}
	m.envs = make([]machine.Env, cfg.Cores)
	for cell := range m.envs {
		m.envs[cell] = m.cellEnv(cell)
	}
	built = true
	return m, nil
}

// Release returns the machine's pooled banks. The machine must not be used
// afterwards.
func (m *Machine) Release() {
	for i := range m.banks {
		machine.PutMemory(m.banks[i])
		m.banks[i] = nil
	}
}

// Compose forms a control group: leader's IP sequences prog and streams it
// to the listed members (the leader itself is always a member and need not
// be listed). With a windowed IP-IP switch every member must lie within the
// window of the leader. Each cell may belong to at most one group.
func (m *Machine) Compose(leader int, members []int, prog isa.Program) error {
	if m.sealed {
		return fmt.Errorf("spatial: machine already ran; build a new one to recompose")
	}
	if leader < 0 || leader >= m.cfg.Cores {
		return fmt.Errorf("spatial: leader %d out of range [0,%d)", leader, m.cfg.Cores)
	}
	if len(prog) == 0 {
		return fmt.Errorf("spatial: empty program for leader %d", leader)
	}
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("spatial: leader %d: %w", leader, err)
	}
	all := append([]int{leader}, members...)
	seen := map[int]bool{}
	for _, c := range all {
		if c < 0 || c >= m.cfg.Cores {
			return fmt.Errorf("spatial: member %d out of range [0,%d)", c, m.cfg.Cores)
		}
		if seen[c] {
			return fmt.Errorf("spatial: cell %d listed twice in group of leader %d", c, leader)
		}
		if m.assigned[c] {
			return fmt.Errorf("spatial: cell %d already belongs to a group", c)
		}
		if m.cfg.Window > 0 {
			dist := c - leader
			if dist < 0 {
				dist = -dist
			}
			if dist > m.cfg.Window {
				return fmt.Errorf("spatial: cell %d is %d hops from leader %d, beyond the IP-IP window %d",
					c, dist, leader, m.cfg.Window)
			}
		}
		seen[c] = true
	}
	for _, c := range all {
		m.assigned[c] = true
	}
	g := &group{leader: leader, members: all, prog: prog, dec: isa.Predecode(prog), regs: make([]machine.Regs, len(all))}
	m.groups = append(m.groups, g)
	return nil
}

// InstructionWords is the total instruction storage the current composition
// occupies: one program copy per control group, held by the group's leader.
// This is the storage side of the spatial-computing argument: an ISP
// running one program over all n cells stores it once, while an IMP-I with
// direct IP-IM wiring must replicate it n times (compare
// mimd-style n*len(program)).
func (m *Machine) InstructionWords() int {
	total := 0
	for _, g := range m.groups {
		total += len(g.prog)
	}
	return total
}

// Groups returns the number of composed control groups.
func (m *Machine) Groups() int { return len(m.groups) }

// LoadBank copies vals into a cell's bank at base.
func (m *Machine) LoadBank(cell, base int, vals []isa.Word) error {
	if cell < 0 || cell >= m.cfg.Cores {
		return fmt.Errorf("spatial: cell %d out of range [0,%d)", cell, m.cfg.Cores)
	}
	return m.banks[cell].CopyIn(base, vals)
}

// ReadBank reads n words from a cell's bank at base.
func (m *Machine) ReadBank(cell, base, n int) ([]isa.Word, error) {
	if cell < 0 || cell >= m.cfg.Cores {
		return nil, fmt.Errorf("spatial: cell %d out of range [0,%d)", cell, m.cfg.Cores)
	}
	return m.banks[cell].CopyOut(base, n)
}

// resolveAddr maps a cell's address under the DP-DM kind.
func (m *Machine) resolveAddr(cell int, addr isa.Word) (bank int, off isa.Word, err error) {
	if m.links[taxonomy.SiteDPDM] == taxonomy.LinkDirect {
		if addr < 0 || addr >= isa.Word(m.cfg.BankWords) {
			return 0, 0, fmt.Errorf("spatial: cell %d address %d outside its bank of %d words (DP-DM is direct)",
				cell, addr, m.cfg.BankWords)
		}
		return cell, addr, nil
	}
	total := isa.Word(m.cfg.BankWords) * isa.Word(m.cfg.Cores)
	if addr < 0 || addr >= total {
		return 0, 0, fmt.Errorf("spatial: cell %d global address %d outside %d words", cell, addr, total)
	}
	return int(addr) / m.cfg.BankWords, addr % isa.Word(m.cfg.BankWords), nil
}

// Run executes all groups to completion. Every cell must belong to a group.
func (m *Machine) Run() (machine.Stats, error) {
	var stats machine.Stats
	if m.sealed {
		return stats, fmt.Errorf("spatial: machine already ran; build a new one")
	}
	for c, ok := range m.assigned {
		if !ok {
			return stats, fmt.Errorf("spatial: cell %d belongs to no control group; Compose must partition all cells", c)
		}
	}
	m.sealed = true
	budget := m.cfg.MaxCycles
	if budget <= 0 {
		budget = machine.DefaultMaxCycles
	}

	running := len(m.groups)
	for cycle := int64(0); running > 0; cycle++ {
		if cycle >= budget {
			m.collectNetStats(&stats)
			stats.Cycles = cycle
			return stats, fmt.Errorf("spatial: %w after %d cycles", machine.ErrDeadline, cycle)
		}
		progress := false
		scheduledLater := false
		for _, g := range m.groups {
			if g.halted || g.inSync {
				continue
			}
			if g.readyAt > cycle {
				scheduledLater = true
				continue
			}
			if g.pc < 0 || g.pc >= len(g.dec) {
				g.halted = true
				running--
				progress = true
				continue
			}
			d := &g.dec[g.pc]
			outcome, err := m.stepGroup(g, d, cycle, &stats)
			if err != nil {
				m.collectNetStats(&stats)
				stats.Cycles = cycle
				return stats, err
			}
			switch outcome {
			case groupBlocked:
				g.readyAt = cycle + 1
			case groupInSync:
				g.inSync = true
				g.syncAt = cycle
				progress = true
				m.tryReleaseSync(cycle+1, &stats)
			case groupHalted:
				g.halted = true
				running--
				progress = true
			case groupAdvanced:
				progress = true
			}
		}
		if !progress && !scheduledLater {
			if m.tryReleaseSyncNow(cycle+1, &stats) {
				continue
			}
			m.collectNetStats(&stats)
			stats.Cycles = cycle
			return stats, fmt.Errorf("spatial: deadlock at cycle %d: all %d live groups blocked", cycle, running)
		}
	}
	m.collectNetStats(&stats)
	return stats, nil
}

// group step outcomes.
type groupOutcome int

const (
	groupAdvanced groupOutcome = iota
	groupBlocked
	groupInSync
	groupHalted
)

// stepGroup executes one pre-decoded instruction across the whole group in
// lockstep.
func (m *Machine) stepGroup(g *group, d *isa.DecodedOp, cycle int64, stats *machine.Stats) (groupOutcome, error) {
	finish := cycle + 1

	// Control instructions run on the leader's IP alone.
	if d.IsBranch() || d.Op == isa.OpHalt || d.Op == isa.OpSync {
		switch d.Op {
		case isa.OpHalt:
			stats.Instructions++
			m.emitInstr(int32(g.leader), cycle, 1, d.Op)
			bump(stats, finish)
			return groupHalted, nil
		case isa.OpSync:
			return groupInSync, nil
		default:
			env := machine.Env{Lane: isa.Word(g.leader)}
			out, err := machine.StepDecoded(&g.regs[0], g.pc, d, &env)
			if err != nil {
				return 0, fmt.Errorf("spatial: group of leader %d pc %d: %w", g.leader, g.pc, err)
			}
			stats.Instructions++
			m.emitInstr(int32(g.leader), cycle, 1, d.Op)
			g.pc = out.NextPC
			bump(stats, finish)
			return groupAdvanced, nil
		}
	}

	// Pre-check RECVs so a blocked member never leaves partial effects.
	if d.Op == isa.OpRecv {
		if m.msgNet == nil {
			return 0, fmt.Errorf("spatial: group of leader %d pc %d: no DP-DP network for recv", g.leader, g.pc)
		}
		for mi, cell := range g.members {
			peer := int(g.regs[mi][d.Rb])
			if peer < 0 || peer >= m.cfg.Cores {
				return 0, fmt.Errorf("spatial: cell %d receives from nonexistent cell %d", cell, peer)
			}
			q := m.mail[peer][cell]
			if len(q) == 0 || q[0].availableAt > cycle {
				return groupBlocked, nil
			}
		}
	}

	// Stream the instruction to every member; non-leader members pay the
	// IP-IP delivery first.
	isALU := d.IsALU()
	for mi, cell := range g.members {
		execAt := cycle
		if cell != g.leader {
			arrival, err := m.ipip.Transfer(cycle, g.leader, cell)
			if err != nil {
				return 0, fmt.Errorf("spatial: IP-IP delivery from %d to %d: %w", g.leader, cell, err)
			}
			execAt = arrival
			stats.Messages++
			if m.cfg.Tracer != nil {
				// Instruction streaming over the IP-IP switch is a message.
				m.cfg.Tracer.Emit(obs.Event{Kind: obs.KindSend, Track: int32(g.leader),
					Cycle: cycle, Arg: int64(cell)})
			}
		}
		m.cycle, m.finish = execAt, execAt+1
		env := &m.envs[cell]
		env.Now = execAt
		out, err := machine.StepDecoded(&g.regs[mi], g.pc, d, env)
		memberFinish := m.finish
		if err != nil {
			return 0, fmt.Errorf("spatial: cell %d pc %d: %w", cell, g.pc, err)
		}
		if out.Blocked {
			// RECV was pre-checked; this indicates a queue raced empty,
			// which the lockstep model forbids.
			return 0, fmt.Errorf("spatial: cell %d pc %d: lockstep recv underflow", cell, g.pc)
		}
		stats.Instructions++
		if isALU {
			stats.ALUOps++
		}
		m.emitInstr(int32(cell), execAt, memberFinish-execAt, d.Op)
		if out.Mem {
			if d.Op == isa.OpLd {
				stats.MemReads++
			} else {
				stats.MemWrites++
			}
		}
		if out.Comm {
			stats.Messages++
		}
		if memberFinish > finish {
			finish = memberFinish
		}
	}
	g.pc++
	g.readyAt = finish
	bump(stats, finish)
	return groupAdvanced, nil
}

// emitInstr traces one retired instruction when a tracer is configured.
func (m *Machine) emitInstr(track int32, cycle, dur int64, op isa.Op) {
	if m.cfg.Tracer == nil {
		return
	}
	flags := obs.FlagHasOp
	if machine.IsALU(op) {
		flags |= obs.FlagALU
	}
	m.cfg.Tracer.Emit(obs.Event{Kind: obs.KindInstr, Flags: flags, Track: track,
		Cycle: cycle, Dur: dur, Arg: int64(op)})
}

// cellEnv builds a member cell's reusable environment. The closures read
// the machine's cycle/finish fields, refreshed per member step, so this
// runs once per cell at construction.
func (m *Machine) cellEnv(cell int) machine.Env {
	env := machine.Env{Lane: isa.Word(cell), Tracer: m.cfg.Tracer, Track: int32(cell)}
	env.Load = func(addr isa.Word) (isa.Word, error) {
		bank, off, err := m.resolveAddr(cell, addr)
		if err != nil {
			return 0, err
		}
		m.accountMem(cell, bank, m.cycle, &m.finish)
		return m.banks[bank].Load(off)
	}
	env.Store = func(addr, val isa.Word) error {
		bank, off, err := m.resolveAddr(cell, addr)
		if err != nil {
			return err
		}
		m.accountMem(cell, bank, m.cycle, &m.finish)
		return m.banks[bank].Store(off, val)
	}
	if m.msgNet != nil {
		env.SendTo = func(peer int, val isa.Word) error {
			if peer < 0 || peer >= m.cfg.Cores {
				return fmt.Errorf("spatial: cell %d sends to nonexistent cell %d", cell, peer)
			}
			arrival, err := m.msgNet.Transfer(m.cycle, cell, peer)
			if err != nil {
				return err
			}
			if arrival+1 > m.finish {
				m.finish = arrival + 1
			}
			m.mail[cell][peer] = append(m.mail[cell][peer], message{val: val, availableAt: arrival})
			return nil
		}
		env.RecvFrom = func(peer int) (isa.Word, error) {
			if peer < 0 || peer >= m.cfg.Cores {
				return 0, fmt.Errorf("spatial: cell %d receives from nonexistent cell %d", cell, peer)
			}
			q := m.mail[peer][cell]
			if len(q) == 0 || q[0].availableAt > m.cycle {
				return 0, machine.ErrWouldBlock
			}
			v := q[0].val
			m.mail[peer][cell] = q[1:]
			return v, nil
		}
	}
	return env
}

// accountMem charges the DP-DM traversal.
func (m *Machine) accountMem(cell, bank int, cycle int64, finish *int64) {
	if m.memNet == nil {
		if cycle+2 > *finish {
			*finish = cycle + 2
		}
		return
	}
	arrival, err := m.memNet.Transfer(cycle, cell, bank)
	if err != nil {
		panic(fmt.Sprintf("spatial: internal memory network error: %v", err))
	}
	if arrival+1 > *finish {
		*finish = arrival + 1
	}
}

// tryReleaseSyncNow reports whether a cross-group barrier released.
func (m *Machine) tryReleaseSyncNow(releaseCycle int64, stats *machine.Stats) bool {
	before := stats.Barriers
	m.tryReleaseSync(releaseCycle, stats)
	return stats.Barriers > before
}

// tryReleaseSync releases the barrier once every live group waits at SYNC.
func (m *Machine) tryReleaseSync(releaseCycle int64, stats *machine.Stats) {
	live, waiting := 0, 0
	for _, g := range m.groups {
		if g.halted {
			continue
		}
		live++
		if g.inSync {
			waiting++
		}
	}
	if live == 0 || waiting < live {
		return
	}
	for _, g := range m.groups {
		if g.halted || !g.inSync {
			continue
		}
		g.inSync = false
		g.pc++
		g.readyAt = releaseCycle
		stats.Instructions++
		if m.cfg.Tracer != nil {
			wait := releaseCycle - g.syncAt
			m.emitInstr(int32(g.leader), g.syncAt, wait, isa.OpSync)
			m.cfg.Tracer.Emit(obs.Event{Kind: obs.KindWait, Track: int32(g.leader),
				Cycle: g.syncAt, Dur: wait})
		}
	}
	stats.Barriers++
	if m.cfg.Tracer != nil {
		m.cfg.Tracer.Emit(obs.Event{Kind: obs.KindBarrier, Track: obs.TrackMachine, Cycle: releaseCycle})
	}
	bump(stats, releaseCycle)
}

// collectNetStats folds interconnect counters into the run stats.
func (m *Machine) collectNetStats(stats *machine.Stats) {
	stats.NetConflictCycles += m.ipip.Stats().ConflictCycles
	if m.memNet != nil {
		stats.NetConflictCycles += m.memNet.Stats().ConflictCycles
	}
	if m.msgNet != nil {
		stats.NetConflictCycles += m.msgNet.Stats().ConflictCycles
	}
}

func bump(stats *machine.Stats, cycle int64) {
	if stats.Cycles < cycle {
		stats.Cycles = cycle
	}
}
