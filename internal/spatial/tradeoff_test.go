package spatial

import (
	"testing"

	"repro/internal/isa"
)

// TestCompositionTradeoff pins the two sides of the ISP composition trade:
// a single composed group stores the program once but pays IP-IP delivery
// cycles; singleton groups store n copies but run without control traffic.
// This is the quantitative content of the paper's spatial-computing classes
// (31-46): the IP-IP switch buys an organisational choice, and both
// organisations are reachable from the same hardware.
func TestCompositionTradeoff(t *testing.T) {
	const cells = 8
	prog := isa.MustAssemble(`
        lane r1
        muli r2, r1, 3
        st   r2, [r0+0]
        ld   r3, [r0+0]
        addi r3, r3, 1
        st   r3, [r0+1]
        halt
`)

	// Organisation A: one composed IP spanning all cells.
	composed, err := New(Config{Cores: cells, BankWords: 16, Sub: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := composed.Compose(0, []int{1, 2, 3, 4, 5, 6, 7}, prog); err != nil {
		t.Fatal(err)
	}
	composedWords := composed.InstructionWords()
	composedStats, err := composed.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Organisation B: singleton groups (the IMP morph).
	split, err := New(Config{Cores: cells, BankWords: 16, Sub: 2})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cells; c++ {
		if err := split.Compose(c, nil, prog); err != nil {
			t.Fatal(err)
		}
	}
	splitWords := split.InstructionWords()
	splitStats, err := split.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Same results either way.
	for c := 0; c < cells; c++ {
		a, err := composed.ReadBank(c, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := split.ReadBank(c, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a[0] != b[0] || a[1] != b[1] || a[0] != isa.Word(c*3) {
			t.Errorf("cell %d: composed %v vs split %v", c, a, b)
		}
	}

	// Storage: composed stores the program once, split stores it n times.
	if composedWords != len(prog) {
		t.Errorf("composed stores %d words, want %d", composedWords, len(prog))
	}
	if splitWords != cells*len(prog) {
		t.Errorf("split stores %d words, want %d", splitWords, cells*len(prog))
	}

	// Time: the composed group pays IP-IP delivery, so it is slower.
	if composedStats.Cycles <= splitStats.Cycles {
		t.Errorf("composed (%d cycles) not paying IP-IP latency vs split (%d cycles)",
			composedStats.Cycles, splitStats.Cycles)
	}
	if composedStats.Messages == 0 || splitStats.Messages != 0 {
		t.Errorf("control traffic: composed %d, split %d", composedStats.Messages, splitStats.Messages)
	}
	if composed.Groups() != 1 || split.Groups() != cells {
		t.Errorf("group counts %d / %d", composed.Groups(), split.Groups())
	}
}
