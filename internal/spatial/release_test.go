package spatial

import (
	"testing"

	"repro/internal/isa"
)

// TestRelease pins the pooling contract: released banks go back to the
// pool, a second Release is a no-op, and a machine built afterwards
// (likely reusing the pooled banks) starts zeroed.
func TestRelease(t *testing.T) {
	prog := isa.MustAssemble(`
        ldi  r1, 13
        st   r1, [r0+0]
        halt
`)
	m, err := New(Config{Cores: 4, BankWords: 16, Sub: 2})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if err := m.Compose(c, nil, prog); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	m.Release()
	m.Release()

	m2, err := New(Config{Cores: 4, BankWords: 16, Sub: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Release()
	for c := 0; c < 4; c++ {
		out, err := m2.ReadBank(c, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 0 {
			t.Fatalf("cell %d sees stale memory word %d", c, out[0])
		}
	}
}
