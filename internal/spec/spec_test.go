package spec

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/taxonomy"
)

func TestParseLink_TableIIICells(t *testing.T) {
	cases := []struct {
		cell    string
		kind    taxonomy.Link
		limited bool
	}{
		{"none", taxonomy.LinkNone, false},
		{"1-1", taxonomy.LinkDirect, false},
		{"1-6", taxonomy.LinkDirect, false},
		{"1-64", taxonomy.LinkDirect, false},
		{"1-n", taxonomy.LinkDirect, false},
		{"1-8", taxonomy.LinkDirect, false},
		{"n-n", taxonomy.LinkDirect, false},
		{"n-1", taxonomy.LinkDirect, false},
		{"6-1", taxonomy.LinkDirect, false},
		{"64-1", taxonomy.LinkDirect, false},
		{"8-1", taxonomy.LinkDirect, false},
		{"48-48", taxonomy.LinkDirect, false},
		{"4-4", taxonomy.LinkDirect, false},
		{"2-2", taxonomy.LinkDirect, false},
		{"m-1", taxonomy.LinkDirect, false},
		{"1-24n", taxonomy.LinkDirect, false},
		{"1-5", taxonomy.LinkDirect, false},
		{"1-2", taxonomy.LinkDirect, false},
		{"6x6", taxonomy.LinkCrossbar, false},
		{"64x64", taxonomy.LinkCrossbar, false},
		{"nxn", taxonomy.LinkCrossbar, false},
		{"8x8", taxonomy.LinkCrossbar, false},
		{"5x10", taxonomy.LinkCrossbar, true},
		{"5x5", taxonomy.LinkCrossbar, false},
		{"24nx1", taxonomy.LinkCrossbar, true},
		{"24nx24n", taxonomy.LinkCrossbar, false},
		{"nx1", taxonomy.LinkCrossbar, true},
		{"2x2", taxonomy.LinkCrossbar, false},
		{"nxm", taxonomy.LinkCrossbar, true},
		{"mxm", taxonomy.LinkCrossbar, false},
		{"22x1", taxonomy.LinkCrossbar, true},
		{"16x6", taxonomy.LinkCrossbar, true},
		{"16x16", taxonomy.LinkCrossbar, false},
		{"nx14", taxonomy.LinkCrossbar, true},
		{"vxv", taxonomy.LinkVariable, false},
		{"VXV", taxonomy.LinkVariable, false}, // Table III prints FPGA rows uppercase
		{" nxn ", taxonomy.LinkCrossbar, false},
		{"NxN", taxonomy.LinkCrossbar, false},
	}
	for _, tc := range cases {
		kind, limited, err := ParseLink(tc.cell)
		if err != nil {
			t.Errorf("ParseLink(%q): %v", tc.cell, err)
			continue
		}
		if kind != tc.kind || limited != tc.limited {
			t.Errorf("ParseLink(%q) = (%v, limited=%v), want (%v, limited=%v)",
				tc.cell, kind, limited, tc.kind, tc.limited)
		}
	}
}

func TestParseLink_Rejects(t *testing.T) {
	for _, cell := range []string{"", "x", "-", "a-b", "nx", "xn", "1--1", "n x n", "1-1-1", "??", "n+n"} {
		if kind, _, err := ParseLink(cell); err == nil {
			t.Errorf("ParseLink(%q) = %v, want error", cell, kind)
		}
	}
}

func TestParseLink_DashWins(t *testing.T) {
	// A dash cell is direct even when the atoms carry product signs.
	kind, limited, err := ParseLink("1-24n")
	if err != nil || kind != taxonomy.LinkDirect || limited {
		t.Errorf("ParseLink(1-24n) = (%v, %v, %v), want direct", kind, limited, err)
	}
}

func TestParseCountCell(t *testing.T) {
	cases := []struct {
		cell     string
		count    taxonomy.Count
		concrete int
	}{
		{"0", taxonomy.CountZero, 0},
		{"1", taxonomy.CountOne, 1},
		{"2", taxonomy.CountN, 2},
		{"64", taxonomy.CountN, 64},
		{"48", taxonomy.CountN, 48},
		{"n", taxonomy.CountN, 0},
		{"m", taxonomy.CountN, 0},
		{"v", taxonomy.CountVar, 0},
		{"24xn", taxonomy.CountN, 0},
		{" 6 ", taxonomy.CountN, 6},
	}
	for _, tc := range cases {
		count, concrete, err := parseCountCell(tc.cell)
		if err != nil {
			t.Errorf("parseCountCell(%q): %v", tc.cell, err)
			continue
		}
		if count != tc.count || concrete != tc.concrete {
			t.Errorf("parseCountCell(%q) = (%s, %d), want (%s, %d)",
				tc.cell, count, concrete, tc.count, tc.concrete)
		}
	}
	for _, bad := range []string{"", "-3", "abc", "1.5"} {
		if _, _, err := parseCountCell(bad); err == nil {
			t.Errorf("parseCountCell(%q) succeeded, want error", bad)
		}
	}
}

func testArch() Architecture {
	return Architecture{
		Name: "TestCGRA", IPs: "1", DPs: "16",
		IPIP: "none", IPDP: "1-16", IPIM: "1-1", DPDM: "16x16", DPDP: "16x16",
	}
}

func TestResolve(t *testing.T) {
	r, err := Resolve(testArch())
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if r.IPs != taxonomy.CountOne || r.DPs != taxonomy.CountN {
		t.Errorf("counts = (%s, %s), want (1, n)", r.IPs, r.DPs)
	}
	if r.ConcreteIPs != 1 || r.ConcreteDPs != 16 {
		t.Errorf("concrete = (%d, %d), want (1, 16)", r.ConcreteIPs, r.ConcreteDPs)
	}
	if r.Links[taxonomy.SiteDPDM] != taxonomy.LinkCrossbar {
		t.Errorf("DP-DM link = %v, want crossbar", r.Links[taxonomy.SiteDPDM])
	}
	if r.Limited[taxonomy.SiteDPDM] {
		t.Error("16x16 must not be limited")
	}
}

func TestResolve_Errors(t *testing.T) {
	bad := testArch()
	bad.DPDM = "oops"
	if _, err := Resolve(bad); err == nil || !strings.Contains(err.Error(), "DP-DM") {
		t.Errorf("Resolve with bad DP-DM cell: err = %v, want site-qualified error", err)
	}
	bad = testArch()
	bad.IPs = "??"
	if _, err := Resolve(bad); err == nil || !strings.Contains(err.Error(), "IPs") {
		t.Errorf("Resolve with bad IPs cell: err = %v", err)
	}
}

func TestClassifyAndFlexibility(t *testing.T) {
	c, err := Classify(testArch())
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if c.String() != "IAP-IV" {
		t.Errorf("class = %s, want IAP-IV", c)
	}
	f, err := Flexibility(testArch())
	if err != nil {
		t.Fatalf("Flexibility: %v", err)
	}
	if f != 3 {
		t.Errorf("flexibility = %d, want 3", f)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(testArch()); err != nil {
		t.Errorf("valid arch rejected: %v", err)
	}
	cases := []func(*Architecture){
		func(a *Architecture) { a.Name = "  " },
		func(a *Architecture) { a.IPIP = "" },
		func(a *Architecture) { a.DPDP = "" },
		func(a *Architecture) { a.IPs = "" },
		func(a *Architecture) { a.DPs = "bogus" },
	}
	for i, mutate := range cases {
		a := testArch()
		mutate(&a)
		if err := Validate(a); err == nil {
			t.Errorf("mutation %d accepted, want error", i)
		}
	}
}

func TestCollection_JSONRoundTrip(t *testing.T) {
	col := Collection{Title: "test", Architectures: []Architecture{testArch()}}
	data, err := MarshalCollection(col)
	if err != nil {
		t.Fatalf("MarshalCollection: %v", err)
	}
	got, err := UnmarshalCollection(data)
	if err != nil {
		t.Fatalf("UnmarshalCollection: %v", err)
	}
	if got.Title != col.Title || len(got.Architectures) != 1 || got.Architectures[0] != col.Architectures[0] {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestUnmarshalCollection_BareArray(t *testing.T) {
	data := []byte(`[{"name":"X","ips":"1","dps":"1","ip_ip":"none","ip_dp":"1-1","ip_im":"1-1","dp_dm":"1-1","dp_dp":"none"}]`)
	col, err := UnmarshalCollection(data)
	if err != nil {
		t.Fatalf("UnmarshalCollection(bare array): %v", err)
	}
	if len(col.Architectures) != 1 || col.Architectures[0].Name != "X" {
		t.Errorf("unexpected collection %+v", col)
	}
}

func TestUnmarshalCollection_Rejects(t *testing.T) {
	cases := []string{
		`{`,
		`{"architectures":[{"name":"","ips":"1","dps":"1","ip_ip":"none","ip_dp":"1-1","ip_im":"1-1","dp_dm":"1-1","dp_dp":"none"}]}`,
		`{"architectures":[
			{"name":"A","ips":"1","dps":"1","ip_ip":"none","ip_dp":"1-1","ip_im":"1-1","dp_dm":"1-1","dp_dp":"none"},
			{"name":"A","ips":"1","dps":"1","ip_ip":"none","ip_dp":"1-1","ip_im":"1-1","dp_dm":"1-1","dp_dp":"none"}]}`,
		`{"architectures":[{"name":"B","ips":"1","dps":"1","ip_ip":"none","ip_dp":"??","ip_im":"1-1","dp_dm":"1-1","dp_dp":"none"}]}`,
	}
	for i, data := range cases {
		if _, err := UnmarshalCollection([]byte(data)); err == nil {
			t.Errorf("case %d accepted, want error", i)
		}
	}
}

func TestCollection_NamesAndFind(t *testing.T) {
	col := Collection{Architectures: []Architecture{
		{Name: "Zeta"}, {Name: "Alpha"},
	}}
	names := col.Names()
	if len(names) != 2 || names[0] != "Alpha" || names[1] != "Zeta" {
		t.Errorf("Names() = %v, want sorted [Alpha Zeta]", names)
	}
	if _, ok := col.Find("Alpha"); !ok {
		t.Error("Find(Alpha) missed")
	}
	if _, ok := col.Find("Missing"); ok {
		t.Error("Find(Missing) hit")
	}
}

// TestParseLink_RenderRoundTripProperty: rendering a parsed link through the
// taxonomy Cell formatter and re-parsing preserves the kind.
func TestParseLink_RenderRoundTripProperty(t *testing.T) {
	counts := []taxonomy.Count{taxonomy.CountOne, taxonomy.CountN, taxonomy.CountVar}
	kinds := []taxonomy.Link{taxonomy.LinkNone, taxonomy.LinkDirect, taxonomy.LinkCrossbar}
	f := func(k, l, r uint8) bool {
		kind := kinds[int(k)%len(kinds)]
		left := counts[int(l)%len(counts)]
		right := counts[int(r)%len(counts)]
		if left == taxonomy.CountVar || right == taxonomy.CountVar {
			return true // variable endpoints render vxv; covered separately
		}
		cell := kind.Cell(left, right)
		got, _, err := ParseLink(cell)
		return err == nil && got == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
