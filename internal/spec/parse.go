package spec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/taxonomy"
)

// ParseLink parses a Table III connectivity cell into the abstract switch
// kind the taxonomy classifies on, plus whether the cell names a *limited*
// crossbar (unequal port counts such as "5x10" or a windowed network such
// as "nx14" — Table III represents both with the 'x' notation and the paper
// scores them as switches, but the cost models price them differently).
//
// Grammar, after lowercasing and trimming:
//
//	"none"            -> no connection
//	"<a>-<b>"         -> direct switch (e.g. "1-1", "1-64", "n-n", "48-48")
//	"<a>x<b>"         -> crossbar     (e.g. "nxn", "64x64", "5x10", "24nx24n")
//	"vxv"             -> variable fabric of universal-flow machines
//
// where <a>/<b> are count atoms: decimals, n, m, v, or products like 24n.
func ParseLink(cell string) (link taxonomy.Link, limited bool, err error) {
	s := strings.ToLower(strings.TrimSpace(cell))
	switch s {
	case "":
		return 0, false, fmt.Errorf("empty connectivity cell")
	case "none":
		return taxonomy.LinkNone, false, nil
	case "vxv":
		return taxonomy.LinkVariable, false, nil
	}

	if i := strings.IndexByte(s, '-'); i >= 0 {
		left, right := s[:i], s[i+1:]
		if err := checkCountAtom(left); err != nil {
			return 0, false, fmt.Errorf("cell %q: %w", cell, err)
		}
		if err := checkCountAtom(right); err != nil {
			return 0, false, fmt.Errorf("cell %q: %w", cell, err)
		}
		return taxonomy.LinkDirect, false, nil
	}

	left, right, ok := splitCrossbar(s)
	if !ok {
		return 0, false, fmt.Errorf("cell %q is neither none, a-b nor axb", cell)
	}
	if err := checkCountAtom(left); err != nil {
		return 0, false, fmt.Errorf("cell %q: %w", cell, err)
	}
	if err := checkCountAtom(right); err != nil {
		return 0, false, fmt.Errorf("cell %q: %w", cell, err)
	}
	return taxonomy.LinkCrossbar, left != right, nil
}

// splitCrossbar splits an "axb" cell at the separating 'x'. The atoms
// themselves may contain 'x' as a product sign ("24nx24n" splits into 24n
// and 24n; GARP's DPs cell "24xn" is a count, not a link, and is handled by
// parseCountCell). The separator is the 'x' whose both sides parse as count
// atoms; we scan candidates left to right.
func splitCrossbar(s string) (left, right string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] != 'x' {
			continue
		}
		l, r := s[:i], s[i+1:]
		if checkCountAtom(l) == nil && checkCountAtom(r) == nil {
			return l, r, true
		}
	}
	return "", "", false
}

// checkCountAtom validates one side of a connectivity cell: a decimal, one
// of the symbols n/m/v, or a decimal-times-symbol product such as "24n".
func checkCountAtom(s string) error {
	if s == "" {
		return fmt.Errorf("empty count atom")
	}
	switch s {
	case "n", "m", "v":
		return nil
	}
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return fmt.Errorf("count atom %q does not start with a digit or symbol", s)
	}
	rest := s[i:]
	switch rest {
	case "", "n", "m", "v":
		return nil
	default:
		return fmt.Errorf("count atom %q has trailing %q", s, rest)
	}
}

// parseCountCell parses a block-count cell into the abstract taxonomy count
// plus the concrete number when the cell is a literal decimal.
func parseCountCell(cell string) (taxonomy.Count, int, error) {
	s := strings.ToLower(strings.TrimSpace(cell))
	if s == "" {
		return 0, 0, fmt.Errorf("empty count cell")
	}
	if v, err := strconv.Atoi(s); err == nil {
		c, err := taxonomy.CountFromInt(v)
		if err != nil {
			return 0, 0, err
		}
		return c, v, nil
	}
	c, err := taxonomy.ParseCount(s)
	if err != nil {
		return 0, 0, err
	}
	return c, 0, nil
}
