// Package spec describes concrete architectures in the connectivity notation
// of the paper's Table III ("Survey of Modern Parallel and Reconfigurable
// Architectures") and turns those descriptions into taxonomy classes.
//
// A spec keeps the cell strings exactly as a datasheet or survey row prints
// them ("64x64", "n-1", "vxv", "24xn") and derives from them the abstract
// counts and link kinds the taxonomy classifies on, plus the concrete block
// numbers the cost models of internal/cost evaluate Eq 1 and Eq 2 with.
package spec

import (
	"fmt"
	"strings"

	"repro/internal/taxonomy"
)

// Architecture is one surveyed machine: its Table III row, verbatim, plus
// optional provenance.
type Architecture struct {
	// Name is the architecture's name as printed ("MorphoSys", "RaPiD").
	Name string `json:"name"`
	// IPs and DPs are the block-count cells ("1", "64", "n", "24xn", "v").
	IPs string `json:"ips"`
	DPs string `json:"dps"`
	// IPIP, IPDP, IPIM, DPDM and DPDP are the connectivity cells
	// ("none", "1-64", "nxn", "vxv", "nx14").
	IPIP string `json:"ip_ip"`
	IPDP string `json:"ip_dp"`
	IPIM string `json:"ip_im"`
	DPDM string `json:"dp_dm"`
	DPDP string `json:"dp_dp"`
	// Reference cites the source publication, free-form.
	Reference string `json:"reference,omitempty"`
	// Description summarises the organisation, free-form.
	Description string `json:"description,omitempty"`
}

// Cells returns the five connectivity cells indexed by taxonomy site order.
func (a Architecture) Cells() [taxonomy.NumSites]string {
	return [taxonomy.NumSites]string{a.IPIP, a.IPDP, a.IPIM, a.DPDM, a.DPDP}
}

// Resolved is an Architecture whose cells have been parsed: abstract counts
// and link kinds for classification, concrete sizes for cost estimation.
type Resolved struct {
	// Arch is the source description.
	Arch Architecture
	// IPs and DPs are the abstracted block counts.
	IPs, DPs taxonomy.Count
	// Links holds the abstracted switch kind at each site.
	Links taxonomy.Links
	// ConcreteIPs and ConcreteDPs are the literal block numbers when the
	// cells carry them (64 for MorphoSys), or 0 when symbolic (n, m, v).
	ConcreteIPs, ConcreteDPs int
	// Limited marks sites whose crossbar is a limited/windowed one (the
	// cell names unequal port counts, e.g. "5x10", "nx14", "16x6").
	Limited [taxonomy.NumSites]bool
}

// Resolve parses every cell of the architecture description.
func Resolve(a Architecture) (Resolved, error) {
	r := Resolved{Arch: a}

	var err error
	if r.IPs, r.ConcreteIPs, err = parseCountCell(a.IPs); err != nil {
		return Resolved{}, fmt.Errorf("spec %s: IPs: %w", a.Name, err)
	}
	if r.DPs, r.ConcreteDPs, err = parseCountCell(a.DPs); err != nil {
		return Resolved{}, fmt.Errorf("spec %s: DPs: %w", a.Name, err)
	}
	for i, cell := range a.Cells() {
		site := taxonomy.Site(i)
		link, limited, err := ParseLink(cell)
		if err != nil {
			return Resolved{}, fmt.Errorf("spec %s: %s: %w", a.Name, site, err)
		}
		r.Links[site] = link
		r.Limited[site] = limited
	}
	return r, nil
}

// Classify resolves the description and maps it onto its taxonomy class.
func Classify(a Architecture) (taxonomy.Class, error) {
	r, err := Resolve(a)
	if err != nil {
		return taxonomy.Class{}, err
	}
	return taxonomy.Classify(r.IPs, r.DPs, r.Links)
}

// Flexibility resolves the description and computes its relative flexibility
// score from the classified class, the way Table III's last column does.
func Flexibility(a Architecture) (int, error) {
	c, err := Classify(a)
	if err != nil {
		return 0, err
	}
	return taxonomy.Flexibility(c), nil
}

// Validate checks a description for the structural mistakes Resolve cannot
// express as parse errors: missing name, empty cells.
func Validate(a Architecture) error {
	if strings.TrimSpace(a.Name) == "" {
		return fmt.Errorf("spec: architecture has no name")
	}
	for i, cell := range a.Cells() {
		if strings.TrimSpace(cell) == "" {
			return fmt.Errorf("spec %s: empty %s cell (use %q for no connection)",
				a.Name, taxonomy.Site(i), "none")
		}
	}
	if strings.TrimSpace(a.IPs) == "" || strings.TrimSpace(a.DPs) == "" {
		return fmt.Errorf("spec %s: empty block-count cell", a.Name)
	}
	_, err := Resolve(a)
	return err
}
