package spec

import (
	"testing"
	"testing/quick"
)

// TestParseLink_ArbitraryInputNeverPanics feeds random byte strings: the
// parser must reject or accept, never panic, and whatever it accepts must
// be internally consistent (an accepted cell re-parses identically).
func TestParseLink_ArbitraryInputNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		s := string(raw)
		kind1, lim1, err1 := ParseLink(s)
		if err1 != nil {
			return true
		}
		kind2, lim2, err2 := ParseLink(s)
		return err2 == nil && kind1 == kind2 && lim1 == lim2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestResolve_ArbitraryCellsNeverPanic drives whole architecture records
// with random cells through Resolve and Classify.
func TestResolve_ArbitraryCellsNeverPanic(t *testing.T) {
	f := func(ips, dps, c1, c2, c3, c4, c5 []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		a := Architecture{
			Name: "fuzz", IPs: string(ips), DPs: string(dps),
			IPIP: string(c1), IPDP: string(c2), IPIM: string(c3),
			DPDM: string(c4), DPDP: string(c5),
		}
		if _, err := Resolve(a); err != nil {
			return true
		}
		// Resolvable descriptions either classify or produce an error —
		// both fine; panics are not.
		_, _ = Classify(a)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestUnmarshalCollection_ArbitraryJSONNeverPanics.
func TestUnmarshalCollection_ArbitraryJSONNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = UnmarshalCollection(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
