package spec

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Collection is a named set of architecture descriptions, the JSON document
// cmd/classify consumes and examples produce.
type Collection struct {
	// Title labels the collection (e.g. "Table III survey").
	Title string `json:"title,omitempty"`
	// Architectures lists the described machines.
	Architectures []Architecture `json:"architectures"`
}

// UnmarshalCollection parses a JSON collection and validates every entry.
// It accepts either a Collection document or a bare JSON array of
// architectures.
func UnmarshalCollection(data []byte) (Collection, error) {
	var col Collection
	if err := json.Unmarshal(data, &col); err != nil {
		var arr []Architecture
		if err2 := json.Unmarshal(data, &arr); err2 != nil {
			return Collection{}, fmt.Errorf("spec: cannot parse collection: %w", err)
		}
		col = Collection{Architectures: arr}
	}
	seen := map[string]bool{}
	for _, a := range col.Architectures {
		if err := Validate(a); err != nil {
			return Collection{}, err
		}
		if seen[a.Name] {
			return Collection{}, fmt.Errorf("spec: duplicate architecture name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return col, nil
}

// MarshalCollection renders a collection as indented JSON.
func MarshalCollection(col Collection) ([]byte, error) {
	data, err := json.MarshalIndent(col, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: cannot marshal collection: %w", err)
	}
	return append(data, '\n'), nil
}

// Names returns the architecture names of the collection, sorted.
func (c Collection) Names() []string {
	names := make([]string, len(c.Architectures))
	for i, a := range c.Architectures {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// Find returns the architecture with the given name, if present.
func (c Collection) Find(name string) (Architecture, bool) {
	for _, a := range c.Architectures {
		if a.Name == name {
			return a, true
		}
	}
	return Architecture{}, false
}
