package spec

import (
	"strings"
	"testing"
	"testing/quick"
)

func ricaLike() Architecture {
	return Architecture{
		Name: "RICA", IPs: "1", DPs: "n",
		IPIP: "none", IPDP: "1-n", IPIM: "1-1", DPDM: "n-1", DPDP: "nxn",
	}
}

func TestIsTemplate(t *testing.T) {
	if !IsTemplate(ricaLike()) {
		t.Error("RICA is a template")
	}
	concrete := Architecture{Name: "X", IPs: "1", DPs: "16"}
	if IsTemplate(concrete) {
		t.Error("concrete counts flagged as template")
	}
	garp := Architecture{Name: "GARP", IPs: "1", DPs: "24xn"}
	if !IsTemplate(garp) {
		t.Error("product count is a template")
	}
	fpga := Architecture{Name: "FPGA", IPs: "v", DPs: "v"}
	if !IsTemplate(fpga) {
		t.Error("variable counts are templates")
	}
	rapid := Architecture{Name: "RaPiD", IPs: "n", DPs: "m"}
	if !IsTemplate(rapid) {
		t.Error("m counts are templates")
	}
}

func TestInstantiate_RICA(t *testing.T) {
	inst, err := Instantiate(ricaLike(), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name != "RICA(n=16)" {
		t.Errorf("name %q", inst.Name)
	}
	if inst.DPs != "16" || inst.IPDP != "1-16" || inst.DPDM != "16-1" || inst.DPDP != "16x16" {
		t.Errorf("cells %+v", inst)
	}
	// Class and flexibility preserved for n-templates.
	c1, err := Classify(ricaLike())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Classify(inst)
	if err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Errorf("class changed: %s -> %s", c1, c2)
	}
}

func TestInstantiate_GARPProducts(t *testing.T) {
	garp := Architecture{
		Name: "GARP", IPs: "1", DPs: "24xn",
		IPIP: "none", IPDP: "1-24n", IPIM: "1-1", DPDM: "24nx1", DPDP: "24nx24n",
	}
	inst, err := Instantiate(garp, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if inst.DPs != "96" || inst.IPDP != "1-96" || inst.DPDM != "96x1" || inst.DPDP != "96x96" {
		t.Errorf("GARP instantiation %+v", inst)
	}
	c, err := Classify(inst)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "IAP-IV" {
		t.Errorf("instantiated GARP = %s, want IAP-IV", c)
	}
}

func TestInstantiate_RaPiDUsesM(t *testing.T) {
	rapid := Architecture{
		Name: "RaPiD", IPs: "n", DPs: "m",
		IPIP: "none", IPDP: "nxm", IPIM: "nxn", DPDM: "m-1", DPDP: "mxm",
	}
	inst, err := Instantiate(rapid, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if inst.IPs != "4" || inst.DPs != "12" || inst.IPDP != "4x12" || inst.DPDP != "12x12" {
		t.Errorf("RaPiD instantiation %+v", inst)
	}
	c, err := Classify(inst)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "IMP-XIV" {
		t.Errorf("instantiated RaPiD = %s", c)
	}
}

func TestInstantiate_FreezesFPGA(t *testing.T) {
	fpga := Architecture{
		Name: "FPGA", IPs: "v", DPs: "v",
		IPIP: "vxv", IPDP: "vxv", IPIM: "vxv", DPDM: "vxv", DPDP: "vxv",
	}
	inst, err := Instantiate(fpga, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Classify(inst)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "ISP-XVI" {
		t.Errorf("frozen FPGA = %s, want ISP-XVI (a fixed organisation)", c)
	}
}

func TestInstantiate_Rejects(t *testing.T) {
	if _, err := Instantiate(ricaLike(), 0, 4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Instantiate(ricaLike(), 4, 0); err == nil {
		t.Error("m=0 accepted")
	}
	bad := ricaLike()
	bad.DPDP = "n+n"
	if _, err := Instantiate(bad, 4, 4); err == nil {
		t.Error("unparseable cell accepted")
	}
	bad = ricaLike()
	bad.DPs = "x24"
	if _, err := Instantiate(bad, 4, 4); err == nil {
		t.Error("malformed product accepted")
	}
}

// TestInstantiate_ClassInvariantProperty: for n-templates, classification
// commutes with instantiation across arbitrary sizes.
func TestInstantiate_ClassInvariantProperty(t *testing.T) {
	templates := []Architecture{
		ricaLike(),
		{Name: "XPP", IPs: "n", DPs: "n",
			IPIP: "none", IPDP: "n-n", IPIM: "n-n", DPDM: "n-n", DPDP: "nxn"},
		{Name: "DRRAish", IPs: "n", DPs: "n",
			IPIP: "nx14", IPDP: "n-n", IPIM: "n-n", DPDM: "nx14", DPDP: "nx14"},
	}
	f := func(sel, nRaw uint8) bool {
		tmpl := templates[int(sel)%len(templates)]
		n := int(nRaw%63) + 2
		inst, err := Instantiate(tmpl, n, n)
		if err != nil {
			return false
		}
		c1, err1 := Classify(tmpl)
		c2, err2 := Classify(inst)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1.String() == c2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInstantiate_NameMentionsSize(t *testing.T) {
	inst, err := Instantiate(ricaLike(), 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inst.Name, "32") {
		t.Errorf("name %q does not record the size", inst.Name)
	}
}
