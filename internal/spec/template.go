package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Table III keeps symbolic counts for "scalable architectures, where the
// number of IPs and DPs can be changed at design time without modifying
// the architecture (template based architectures)" — RICA, Pact XPP,
// Pleiades, RaPiD, DRRA, Matrix. This file instantiates such templates:
// every symbolic atom in the count and connectivity cells is replaced by a
// concrete value, producing a buildable description whose class (and
// flexibility) provably does not change.

// IsTemplate reports whether the description carries symbolic counts
// (n, m or v) in its count cells.
func IsTemplate(a Architecture) bool {
	for _, cell := range []string{a.IPs, a.DPs} {
		if cellHasSymbol(cell) {
			return true
		}
	}
	return false
}

// cellHasSymbol detects symbolic atoms in a cell.
func cellHasSymbol(cell string) bool {
	s := strings.ToLower(cell)
	for _, r := range s {
		if r == 'n' && !strings.Contains(s, "none") || r == 'm' || r == 'v' {
			return true
		}
	}
	return false
}

// Instantiate replaces every symbolic atom with concrete values: n and v
// become nValue, m becomes mValue (RaPiD distinguishes them). The result's
// name records the instantiation. Products like "24n" multiply out. The
// connectivity cells are rewritten atom-by-atom so "nx14" becomes e.g.
// "16x14" and "24nx24n" becomes "384x384".
//
// For template architectures (symbolic n/m counts) the classification is
// invariant under instantiation. Instantiating a *variable-count* machine
// (v) is different in kind: it freezes the reconfigurable fabric into one
// concrete organisation, so an FPGA row deliberately classifies as the
// fixed-grain ISP-XVI after instantiation — which is exactly the
// taxonomy's distinction between n and v.
func Instantiate(a Architecture, nValue, mValue int) (Architecture, error) {
	if nValue < 1 || mValue < 1 {
		return Architecture{}, fmt.Errorf("spec: instantiation values must be >= 1, got n=%d m=%d", nValue, mValue)
	}
	out := a
	out.Name = fmt.Sprintf("%s(n=%d)", a.Name, nValue)
	var err error
	if out.IPs, err = instantiateAtomOrProduct(a.IPs, nValue, mValue); err != nil {
		return Architecture{}, fmt.Errorf("spec: %s IPs: %w", a.Name, err)
	}
	if out.DPs, err = instantiateAtomOrProduct(a.DPs, nValue, mValue); err != nil {
		return Architecture{}, fmt.Errorf("spec: %s DPs: %w", a.Name, err)
	}
	rewrite := func(cell string) (string, error) {
		return instantiateCell(cell, nValue, mValue)
	}
	if out.IPIP, err = rewrite(a.IPIP); err != nil {
		return Architecture{}, fmt.Errorf("spec: %s IP-IP: %w", a.Name, err)
	}
	if out.IPDP, err = rewrite(a.IPDP); err != nil {
		return Architecture{}, fmt.Errorf("spec: %s IP-DP: %w", a.Name, err)
	}
	if out.IPIM, err = rewrite(a.IPIM); err != nil {
		return Architecture{}, fmt.Errorf("spec: %s IP-IM: %w", a.Name, err)
	}
	if out.DPDM, err = rewrite(a.DPDM); err != nil {
		return Architecture{}, fmt.Errorf("spec: %s DP-DM: %w", a.Name, err)
	}
	if out.DPDP, err = rewrite(a.DPDP); err != nil {
		return Architecture{}, fmt.Errorf("spec: %s DP-DP: %w", a.Name, err)
	}
	if err := Validate(out); err != nil {
		return Architecture{}, err
	}
	return out, nil
}

// instantiateCell rewrites a connectivity cell's atoms.
func instantiateCell(cell string, n, m int) (string, error) {
	s := strings.ToLower(strings.TrimSpace(cell))
	if s == "none" {
		return "none", nil
	}
	if s == "vxv" {
		// The 'vxv' fabric instantiates to an n-port crossbar.
		return fmt.Sprintf("%dx%d", n, n), nil
	}
	if i := strings.IndexByte(s, '-'); i >= 0 {
		left, err := instantiateAtomOrProduct(s[:i], n, m)
		if err != nil {
			return "", err
		}
		right, err := instantiateAtomOrProduct(s[i+1:], n, m)
		if err != nil {
			return "", err
		}
		return left + "-" + right, nil
	}
	left, right, ok := splitCrossbar(s)
	if !ok {
		return "", fmt.Errorf("cannot instantiate cell %q", cell)
	}
	l, err := instantiateAtomOrProduct(left, n, m)
	if err != nil {
		return "", err
	}
	r, err := instantiateAtomOrProduct(right, n, m)
	if err != nil {
		return "", err
	}
	return l + "x" + r, nil
}

// instantiateAtomOrProduct turns a count atom into a decimal string.
func instantiateAtomOrProduct(atom string, n, m int) (string, error) {
	s := strings.ToLower(strings.TrimSpace(atom))
	switch s {
	case "n", "v":
		return strconv.Itoa(n), nil
	case "m":
		return strconv.Itoa(m), nil
	}
	if v, err := strconv.Atoi(s); err == nil {
		return strconv.Itoa(v), nil
	}
	// Products: decimal prefix times symbol, e.g. "24n".
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 || i == len(s) {
		return "", fmt.Errorf("cannot instantiate atom %q", atom)
	}
	factor, err := strconv.Atoi(s[:i])
	if err != nil {
		return "", fmt.Errorf("cannot instantiate atom %q", atom)
	}
	switch s[i:] {
	case "n", "v", "xn", "xv":
		return strconv.Itoa(factor * n), nil
	case "m", "xm":
		return strconv.Itoa(factor * m), nil
	default:
		return "", fmt.Errorf("cannot instantiate atom %q", atom)
	}
}
