package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/taxonomy"
)

// The quickstart of the whole library: describe a machine the way Table
// III does, get its class and flexibility.
func ExampleClassifyWithFlexibility() {
	morphoSysLike := core.Architecture{
		Name: "MyCGRA", IPs: "1", DPs: "64",
		IPIP: "none", IPDP: "1-64", IPIM: "1-1",
		DPDM: "64-1", DPDP: "64x64",
	}
	class, flex, err := core.ClassifyWithFlexibility(morphoSysLike)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: flexibility %d (%s, %s)\n", class, flex, class.Name.Machine, class.Name.Proc)
	// Output:
	// IAP-II: flexibility 2 (Instruction Flow, Array Processor)
}

// Eq 1 and Eq 2 for a taxonomy class at a concrete size.
func ExampleEstimateClass() {
	est, err := core.EstimateClass("IUP", 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("area %.0f GE, %d config bits\n", est.Area, est.ConfigBits)
	// Output:
	// area 55128 GE, 144 config bits
}

// The §III.B morphability relation.
func ExampleCanMorphInto() {
	imp, _ := core.LookupClass("IMP-I")
	iap, _ := core.LookupClass("IAP-I")
	fmt.Println(core.CanMorphInto(imp, iap), core.CanMorphInto(iap, imp))
	// Output:
	// true false
}

// The §V design-space question: the least flexible class covering a set of
// required machine shapes.
func ExampleMinimalClassFor() {
	iap2, _ := core.LookupClass("IAP-II")
	imp2, _ := core.LookupClass("IMP-II")
	best, est, err := core.MinimalClassFor(taxonomy.InstructionFlow, []core.Class{iap2, imp2}, 16)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s at %d config bits\n", best, est.ConfigBits)
	// Output:
	// IMP-II at 2384 config bits
}

// Name-based comparison, the §III.A predictive power.
func ExampleCompare() {
	a, _ := core.LookupClass("IAP-I")
	b, _ := core.LookupClass("IMP-I")
	cmp := core.Compare(a, b)
	fmt.Println(cmp.SameMachineType, cmp.SameProcessingType, cmp.SameSubtype)
	// Output:
	// true false true
}
