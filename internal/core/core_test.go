package core

import (
	"testing"

	"repro/internal/taxonomy"
)

func TestClassesAndLookup(t *testing.T) {
	if got := len(Classes()); got != 47 {
		t.Fatalf("Classes() = %d rows, want 47", got)
	}
	c, err := LookupClass("IAP-II")
	if err != nil {
		t.Fatal(err)
	}
	if Flexibility(c) != 2 {
		t.Errorf("flexibility(IAP-II) = %d", Flexibility(c))
	}
	if _, err := LookupClass("NOPE"); err == nil {
		t.Error("bad class name accepted")
	}
}

func TestClassifyFacade(t *testing.T) {
	arch := Architecture{
		Name: "MyCGRA", IPs: "1", DPs: "16",
		IPIP: "none", IPDP: "1-16", IPIM: "1-1", DPDM: "16-1", DPDP: "16x16",
	}
	c, flex, err := ClassifyWithFlexibility(arch)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "IAP-II" || flex != 2 {
		t.Errorf("classified as (%s, %d)", c, flex)
	}
	bad := arch
	bad.DPDM = "??"
	if _, _, err := ClassifyWithFlexibility(bad); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := Classify(bad); err == nil {
		t.Error("bad spec accepted by Classify")
	}
}

func TestSurveyFacade(t *testing.T) {
	if len(Survey()) != 25 {
		t.Errorf("survey size %d", len(Survey()))
	}
	rows, err := SurveyDerive()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 {
		t.Errorf("derived rows %d", len(rows))
	}
}

func TestEstimateFacades(t *testing.T) {
	est, err := EstimateClass("IMP-XVI", 16)
	if err != nil {
		t.Fatal(err)
	}
	if est.Area <= 0 || est.ConfigBits <= 0 {
		t.Errorf("estimate %+v", est)
	}
	if _, err := EstimateClass("XXX", 16); err == nil {
		t.Error("bad class accepted")
	}
	if _, err := EstimateClass("IUP", 0); err == nil {
		t.Error("n=0 accepted")
	}
	arch := Survey()[3].Arch // MorphoSys
	aest, err := EstimateArchitecture(arch, 8)
	if err != nil {
		t.Fatal(err)
	}
	if aest.DPCount != 64 {
		t.Errorf("MorphoSys DP count %d", aest.DPCount)
	}
}

func TestCompareAndMorph(t *testing.T) {
	imp1, _ := LookupClass("IMP-I")
	iap1, _ := LookupClass("IAP-I")
	cmp := Compare(imp1, iap1)
	if !cmp.SameMachineType || cmp.SameProcessingType {
		t.Errorf("comparison %+v", cmp)
	}
	if !CanMorphInto(imp1, iap1) || CanMorphInto(iap1, imp1) {
		t.Error("morph facade wrong")
	}
}

func TestMinimalClassFor(t *testing.T) {
	iap2, _ := LookupClass("IAP-II")
	iup, _ := LookupClass("IUP")
	// Requiring IAP-II and IUP within instruction flow: IAP-II itself is
	// the cheapest class covering both.
	best, est, err := MinimalClassFor(taxonomy.InstructionFlow, []Class{iap2, iup}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if best.String() != "IAP-II" {
		t.Errorf("minimal class = %s, want IAP-II", best)
	}
	if est.ConfigBits <= 0 {
		t.Error("no estimate")
	}
	// Requiring an IMP and an IAP forces a multi-processor (or richer).
	imp2, _ := LookupClass("IMP-II")
	best, _, err = MinimalClassFor(taxonomy.InstructionFlow, []Class{imp2, iap2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name.Proc == taxonomy.ArrayProcessor || Flexibility(best) < Flexibility(imp2) {
		t.Errorf("minimal covering class = %s", best)
	}
	// A data-flow requirement can never be covered by instruction flow.
	dmp, _ := LookupClass("DMP-I")
	if _, _, err := MinimalClassFor(taxonomy.InstructionFlow, []Class{dmp}, 16); err == nil {
		t.Error("cross-paradigm requirement satisfied")
	}
	// Universal flow covers everything.
	best, _, err = MinimalClassFor(taxonomy.UniversalFlow, []Class{dmp, imp2}, 16)
	if err != nil || best.String() != "USP" {
		t.Errorf("universal cover = (%v, %v)", best, err)
	}
}
