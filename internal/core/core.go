// Package core is the library façade: one import that exposes the paper's
// primary contribution — the extended Skillicorn taxonomy with its naming
// scheme, flexibility scoring, early area/configuration-bit estimation and
// survey classification — assembled from the focused packages underneath
// (internal/taxonomy, internal/spec, internal/registry, internal/cost).
//
// The executable machine models live in their own packages
// (internal/uniproc, internal/simd, internal/mimd, internal/spatial,
// internal/dataflow, internal/fabric) and are exercised through
// internal/workload.
package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/registry"
	"repro/internal/spec"
	"repro/internal/taxonomy"
)

// Re-exported core types, so callers need only this package for the
// classification pipeline.
type (
	// Class is one row of the extended taxonomy's Table I.
	Class = taxonomy.Class
	// Architecture is a Table III-style connectivity description.
	Architecture = spec.Architecture
	// Estimate is an Eq 1 / Eq 2 evaluation.
	Estimate = cost.Estimate
	// Probe-style comparison of two classes by name.
	Comparison = taxonomy.Comparison
)

// Classes returns the full extended taxonomy (Table I): 47 classes
// generated from the enumeration rules.
func Classes() []Class { return taxonomy.Table() }

// LookupClass finds a class by its hierarchical name, e.g. "IMP-XIV".
func LookupClass(name string) (Class, error) { return taxonomy.LookupString(name) }

// Flexibility scores a class with the paper's Table II scoring system.
func Flexibility(c Class) int { return taxonomy.Flexibility(c) }

// Compare produces the §III.A name-based comparison of two classes.
func Compare(a, b Class) Comparison { return taxonomy.Compare(a, b) }

// CanMorphInto reports whether class a can act as class b (§III.B).
func CanMorphInto(a, b Class) bool { return taxonomy.CanMorphInto(a, b) }

// Classify maps an architecture description onto its taxonomy class, the
// way §IV classifies the 25 surveyed machines.
func Classify(a Architecture) (Class, error) { return spec.Classify(a) }

// ClassifyWithFlexibility classifies and scores in one call.
func ClassifyWithFlexibility(a Architecture) (Class, int, error) {
	c, err := spec.Classify(a)
	if err != nil {
		return Class{}, 0, err
	}
	return c, taxonomy.Flexibility(c), nil
}

// Survey returns the paper's Table III registry: the 25 surveyed
// architectures with their printed class names and flexibility values.
func Survey() []registry.Entry { return registry.All() }

// SurveyDerive re-runs the classification pipeline over the whole survey
// and reports printed-vs-derived agreement per row.
func SurveyDerive() ([]registry.DerivedRow, error) { return registry.DeriveAll() }

// EstimateClass evaluates Eq 1 (area) and Eq 2 (configuration bits) for a
// named class instantiated with n processors, under the default component
// library. Use cost.NewModel directly for custom libraries.
func EstimateClass(name string, n int) (Estimate, error) {
	c, err := taxonomy.LookupString(name)
	if err != nil {
		return Estimate{}, err
	}
	model, err := cost.NewModel(cost.DefaultLibrary())
	if err != nil {
		return Estimate{}, err
	}
	return model.ForClass(c, n)
}

// EstimateArchitecture evaluates the equations for a described machine,
// using its printed concrete block counts where available and defaultN for
// symbolic ones.
func EstimateArchitecture(a Architecture, defaultN int) (Estimate, error) {
	model, err := cost.NewModel(cost.DefaultLibrary())
	if err != nil {
		return Estimate{}, err
	}
	return model.ForArchitecture(a, defaultN)
}

// MinimalClassFor answers the paper's design-space question from §V: among
// the implementable classes of the given machine type, return the least
// flexible (and with Eq 2, cheapest-to-configure) class that can still
// morph into every one of the required classes. This is "which computer
// class offers the required flexibility with minimum configuration
// overhead".
func MinimalClassFor(machine taxonomy.MachineType, required []Class, n int) (Class, Estimate, error) {
	model, err := cost.NewModel(cost.DefaultLibrary())
	if err != nil {
		return Class{}, Estimate{}, err
	}
	var best Class
	var bestEst Estimate
	found := false
	for _, cand := range taxonomy.Table() {
		if !cand.Implementable || cand.Name.Machine != machine {
			continue
		}
		ok := true
		for _, req := range required {
			if !taxonomy.CanMorphInto(cand, req) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		est, err := model.ForClass(cand, n)
		if err != nil {
			return Class{}, Estimate{}, err
		}
		if !found ||
			taxonomy.Flexibility(cand) < taxonomy.Flexibility(best) ||
			(taxonomy.Flexibility(cand) == taxonomy.Flexibility(best) && est.ConfigBits < bestEst.ConfigBits) {
			best, bestEst, found = cand, est, true
		}
	}
	if !found {
		return Class{}, Estimate{}, fmt.Errorf("core: no %s class can cover all %d required classes", machine, len(required))
	}
	return best, bestEst, nil
}
