package isa

import (
	"testing"
	"testing/quick"
)

// TestAssemble_ArbitraryTextNeverPanics: the assembler rejects or accepts
// arbitrary text without panicking, and anything it accepts validates and
// encodes.
func TestAssemble_ArbitraryTextNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		p, err := Assemble(string(raw))
		if err != nil {
			return true
		}
		if err := p.Validate(); err != nil {
			return false // accepted programs must validate
		}
		_, err = EncodeProgram(p)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecode_ArbitraryWordsNeverPanic: random instruction-memory words
// either decode to a valid instruction or error.
func TestDecode_ArbitraryWordsNeverPanic(t *testing.T) {
	f := func(w uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ins, err := Decode(w)
		if err != nil {
			return true
		}
		// Decoded instructions re-encode into words that decode equal.
		w2, err := Encode(ins)
		if err != nil {
			return false
		}
		back, err := Decode(w2)
		return err == nil && back == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDisassemble_ArbitraryProgramsNeverPanic: any instruction value
// renders as some string.
func TestDisassemble_ArbitraryProgramsNeverPanic(t *testing.T) {
	f := func(op, rd, ra, rb uint8, imm int32) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ins := Instruction{Op: Op(op), Rd: rd, Ra: ra, Rb: rb, Imm: imm}
		return len(ins.String()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
