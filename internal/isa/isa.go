// Package isa defines the miniature RISC instruction set shared by the
// machine-class simulators (internal/uniproc, internal/simd, internal/mimd,
// internal/spatial). It provides the instruction format, a binary encoding
// (so instruction memories hold realistic words and configuration sizes can
// be counted), an assembler for a small textual syntax, and a disassembler.
//
// The ISA is deliberately small — a register machine with 16 general
// registers, ALU operations, loads/stores, branches, and the inter-processor
// SEND/RECV/SYNC primitives the taxonomy's DP-DP networks carry — but it is
// complete enough to express the workload kernels of internal/workload on
// every machine class.
package isa

import "fmt"

// Word is the machine word of the simulated architectures.
type Word = int64

// NumRegs is the number of general-purpose registers per data processor.
const NumRegs = 16

// Op is an operation code.
type Op uint8

// Operation codes. The groups matter to the simulators: ALU ops execute in
// the data processor, memory ops traverse the DP-DM switch, communication
// ops traverse the DP-DP network, and control ops execute in the
// instruction processor.
const (
	// OpNop does nothing for one cycle.
	OpNop Op = iota
	// OpHalt stops the processor.
	OpHalt

	// OpLdi loads the immediate into Rd.
	OpLdi
	// OpMov copies Ra into Rd.
	OpMov

	// ALU register-register operations: Rd = Ra <op> Rb.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// OpSlt sets Rd to 1 if Ra < Rb, else 0.
	OpSlt
	// OpSeq sets Rd to 1 if Ra == Rb, else 0.
	OpSeq
	// OpMin and OpMax compute the minimum/maximum of Ra and Rb.
	OpMin
	OpMax

	// OpAddi adds the immediate: Rd = Ra + Imm.
	OpAddi
	// OpMuli multiplies by the immediate: Rd = Ra * Imm.
	OpMuli

	// OpLd loads Rd from data memory at address Ra+Imm.
	OpLd
	// OpSt stores Rb to data memory at address Ra+Imm.
	OpSt

	// OpBeq/OpBne/OpBlt/OpBge branch by Imm (relative to the next
	// instruction) when Ra == / != / < / >= Rb.
	OpBeq
	OpBne
	OpBlt
	OpBge
	// OpJmp branches unconditionally by Imm.
	OpJmp

	// OpSend transmits Ra over the DP-DP network to the processor (or lane)
	// whose index is in Rb.
	OpSend
	// OpRecv blocks until a value arrives from processor/lane Rb and loads
	// it into Rd.
	OpRecv
	// OpSync blocks at a barrier until every participating processor
	// reaches it. Only meaningful on multi-processor machines.
	OpSync
	// OpLane loads the processor/lane index into Rd; 0 on uni-processors.
	OpLane

	opCount // sentinel; keep last
)

// opInfo describes assembler syntax and operand usage per op.
type opInfo struct {
	name string
	// operand shape: which fields the op uses.
	usesRd, usesRa, usesRb, usesImm, mem bool
}

var opTable = [opCount]opInfo{
	OpNop:  {name: "nop"},
	OpHalt: {name: "halt"},
	OpLdi:  {name: "ldi", usesRd: true, usesImm: true},
	OpMov:  {name: "mov", usesRd: true, usesRa: true},
	OpAdd:  {name: "add", usesRd: true, usesRa: true, usesRb: true},
	OpSub:  {name: "sub", usesRd: true, usesRa: true, usesRb: true},
	OpMul:  {name: "mul", usesRd: true, usesRa: true, usesRb: true},
	OpDiv:  {name: "div", usesRd: true, usesRa: true, usesRb: true},
	OpRem:  {name: "rem", usesRd: true, usesRa: true, usesRb: true},
	OpAnd:  {name: "and", usesRd: true, usesRa: true, usesRb: true},
	OpOr:   {name: "or", usesRd: true, usesRa: true, usesRb: true},
	OpXor:  {name: "xor", usesRd: true, usesRa: true, usesRb: true},
	OpShl:  {name: "shl", usesRd: true, usesRa: true, usesRb: true},
	OpShr:  {name: "shr", usesRd: true, usesRa: true, usesRb: true},
	OpSlt:  {name: "slt", usesRd: true, usesRa: true, usesRb: true},
	OpSeq:  {name: "seq", usesRd: true, usesRa: true, usesRb: true},
	OpMin:  {name: "min", usesRd: true, usesRa: true, usesRb: true},
	OpMax:  {name: "max", usesRd: true, usesRa: true, usesRb: true},
	OpAddi: {name: "addi", usesRd: true, usesRa: true, usesImm: true},
	OpMuli: {name: "muli", usesRd: true, usesRa: true, usesImm: true},
	OpLd:   {name: "ld", usesRd: true, usesRa: true, usesImm: true, mem: true},
	OpSt:   {name: "st", usesRb: true, usesRa: true, usesImm: true, mem: true},
	OpBeq:  {name: "beq", usesRa: true, usesRb: true, usesImm: true},
	OpBne:  {name: "bne", usesRa: true, usesRb: true, usesImm: true},
	OpBlt:  {name: "blt", usesRa: true, usesRb: true, usesImm: true},
	OpBge:  {name: "bge", usesRa: true, usesRb: true, usesImm: true},
	OpJmp:  {name: "jmp", usesImm: true},
	OpSend: {name: "send", usesRa: true, usesRb: true},
	OpRecv: {name: "recv", usesRd: true, usesRb: true},
	OpSync: {name: "sync"},
	OpLane: {name: "lane", usesRd: true},
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return int(o) < int(opCount) && opTable[o].name != "" }

// IsBranch reports whether the op may change the program counter.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return true
	default:
		return false
	}
}

// IsALU reports whether the op is an arithmetic/logic operation executed
// in the data processor (the class machine.Stats counts as ALUOps).
func (o Op) IsALU() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem,
		OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpSlt, OpSeq, OpMin, OpMax, OpAddi, OpMuli:
		return true
	default:
		return false
	}
}

// IsMemory reports whether the op traverses the DP-DM switch.
func (o Op) IsMemory() bool { return o == OpLd || o == OpSt }

// WritesRd reports whether the op writes its Rd field. Rd is always a
// destination when an op uses it, so this doubles as the def-set oracle for
// dataflow analyses.
func (o Op) WritesRd() bool { return o.Valid() && opTable[o].usesRd }

// ReadsRa reports whether the op reads Ra as a source (or address base).
func (o Op) ReadsRa() bool { return o.Valid() && opTable[o].usesRa }

// ReadsRb reports whether the op reads Rb as a source (store data, second
// operand, or peer index).
func (o Op) ReadsRb() bool { return o.Valid() && opTable[o].usesRb }

// UsesImm reports whether the op consumes its immediate field.
func (o Op) UsesImm() bool { return o.Valid() && opTable[o].usesImm }

// IsComm reports whether the op traverses the DP-DP network.
func (o Op) IsComm() bool { return o == OpSend || o == OpRecv }

// Instruction is one decoded instruction.
type Instruction struct {
	Op  Op
	Rd  uint8 // destination register
	Ra  uint8 // first source register / address base
	Rb  uint8 // second source register / store data / peer index
	Imm int32 // immediate / branch displacement / address offset
}

// Validate checks register indices and op validity.
func (ins Instruction) Validate() error {
	if !ins.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(ins.Op))
	}
	info := opTable[ins.Op]
	if info.usesRd && ins.Rd >= NumRegs {
		return fmt.Errorf("isa: %s: destination register r%d out of range", info.name, ins.Rd)
	}
	if info.usesRa && ins.Ra >= NumRegs {
		return fmt.Errorf("isa: %s: source register r%d out of range", info.name, ins.Ra)
	}
	if info.usesRb && ins.Rb >= NumRegs {
		return fmt.Errorf("isa: %s: source register r%d out of range", info.name, ins.Rb)
	}
	return nil
}

// String disassembles the instruction.
func (ins Instruction) String() string {
	if !ins.Op.Valid() {
		return fmt.Sprintf(".word %#x", EncodeRaw(ins))
	}
	info := opTable[ins.Op]
	switch {
	case ins.Op == OpLd:
		return fmt.Sprintf("ld r%d, [r%d%+d]", ins.Rd, ins.Ra, ins.Imm)
	case ins.Op == OpSt:
		return fmt.Sprintf("st r%d, [r%d%+d]", ins.Rb, ins.Ra, ins.Imm)
	case ins.Op == OpJmp:
		return fmt.Sprintf("jmp %+d", ins.Imm)
	case ins.Op.IsBranch():
		return fmt.Sprintf("%s r%d, r%d, %+d", info.name, ins.Ra, ins.Rb, ins.Imm)
	case ins.Op == OpSend:
		return fmt.Sprintf("send r%d, r%d", ins.Ra, ins.Rb)
	case ins.Op == OpRecv:
		return fmt.Sprintf("recv r%d, r%d", ins.Rd, ins.Rb)
	case info.usesRd && info.usesRa && info.usesRb:
		return fmt.Sprintf("%s r%d, r%d, r%d", info.name, ins.Rd, ins.Ra, ins.Rb)
	case info.usesRd && info.usesRa && info.usesImm:
		return fmt.Sprintf("%s r%d, r%d, %d", info.name, ins.Rd, ins.Ra, ins.Imm)
	case info.usesRd && info.usesRa:
		return fmt.Sprintf("%s r%d, r%d", info.name, ins.Rd, ins.Ra)
	case info.usesRd && info.usesImm:
		return fmt.Sprintf("%s r%d, %d", info.name, ins.Rd, ins.Imm)
	case info.usesRd:
		return fmt.Sprintf("%s r%d", info.name, ins.Rd)
	default:
		return info.name
	}
}

// Program is a sequence of instructions, the contents of one instruction
// memory.
type Program []Instruction

// Validate checks every instruction and that branch targets stay inside the
// program.
func (p Program) Validate() error {
	for pc, ins := range p {
		if err := ins.Validate(); err != nil {
			return fmt.Errorf("isa: at %d: %w", pc, err)
		}
		if ins.Op.IsBranch() {
			target := pc + 1 + int(ins.Imm)
			if target < 0 || target > len(p) {
				return fmt.Errorf("isa: at %d: branch target %d outside program of length %d", pc, target, len(p))
			}
		}
	}
	return nil
}

// Encode packs the instruction into a 64-bit word:
// bits 0..7 opcode, 8..11 rd, 12..15 ra, 16..19 rb, 32..63 immediate.
func Encode(ins Instruction) (uint64, error) {
	if err := ins.Validate(); err != nil {
		return 0, err
	}
	return EncodeRaw(ins), nil
}

// EncodeRaw packs without validation (for error-message rendering).
func EncodeRaw(ins Instruction) uint64 {
	return uint64(ins.Op) |
		uint64(ins.Rd&0xF)<<8 |
		uint64(ins.Ra&0xF)<<12 |
		uint64(ins.Rb&0xF)<<16 |
		uint64(uint32(ins.Imm))<<32
}

// Decode unpacks a word encoded by Encode.
func Decode(w uint64) (Instruction, error) {
	ins := Instruction{
		Op:  Op(w & 0xFF),
		Rd:  uint8(w >> 8 & 0xF),
		Ra:  uint8(w >> 12 & 0xF),
		Rb:  uint8(w >> 16 & 0xF),
		Imm: int32(uint32(w >> 32)),
	}
	if err := ins.Validate(); err != nil {
		return Instruction{}, err
	}
	return ins, nil
}

// EncodeProgram encodes a whole program into instruction-memory words.
func EncodeProgram(p Program) ([]uint64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	words := make([]uint64, len(p))
	for i, ins := range p {
		words[i] = EncodeRaw(ins)
	}
	return words, nil
}

// DecodeProgram decodes instruction-memory words back into a program.
func DecodeProgram(words []uint64) (Program, error) {
	p := make(Program, len(words))
	for i, w := range words {
		ins, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("isa: word %d: %w", i, err)
		}
		p[i] = ins
	}
	return p, nil
}
