package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecode_RoundTripAllOps(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		if !op.Valid() {
			continue
		}
		ins := Instruction{Op: op, Rd: 3, Ra: 7, Rb: 15, Imm: -12345}
		w, err := Encode(ins)
		if err != nil {
			t.Errorf("Encode(%s): %v", op, err)
			continue
		}
		back, err := Decode(w)
		if err != nil {
			t.Errorf("Decode(%s): %v", op, err)
			continue
		}
		if back != ins {
			t.Errorf("round trip %s: got %+v, want %+v", op, back, ins)
		}
	}
}

func TestEncodeDecode_Property(t *testing.T) {
	f := func(opSel uint8, rd, ra, rb uint8, imm int32) bool {
		op := Op(opSel % uint8(opCount))
		if !op.Valid() {
			return true
		}
		ins := Instruction{Op: op, Rd: rd % NumRegs, Ra: ra % NumRegs, Rb: rb % NumRegs, Imm: imm}
		w, err := Encode(ins)
		if err != nil {
			return false
		}
		back, err := Decode(w)
		return err == nil && back == ins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecode_RejectsBadWords(t *testing.T) {
	if _, err := Decode(uint64(opCount)); err == nil {
		t.Error("invalid opcode decoded")
	}
	if _, err := Decode(0xFF); err == nil {
		t.Error("opcode 255 decoded")
	}
}

func TestValidate_RejectsBadRegisters(t *testing.T) {
	bad := Instruction{Op: OpAdd, Rd: 16}
	if err := bad.Validate(); err == nil {
		t.Error("rd=16 accepted")
	}
	bad = Instruction{Op: OpAdd, Ra: 200}
	if err := bad.Validate(); err == nil {
		t.Error("ra=200 accepted")
	}
	bad = Instruction{Op: OpAdd, Rb: 16}
	if err := bad.Validate(); err == nil {
		t.Error("rb=16 accepted")
	}
	// st does not use Rd, so a large Rd value is simply unused — but our
	// encoding masks to 4 bits, so Validate only checks used fields.
	ok := Instruction{Op: OpSt, Ra: 1, Rb: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid st rejected: %v", err)
	}
}

func TestProgramValidate_BranchBounds(t *testing.T) {
	good := Program{
		{Op: OpLdi, Rd: 1, Imm: 5},
		{Op: OpBeq, Ra: 1, Rb: 1, Imm: -2}, // back to 0
		{Op: OpHalt},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	bad := Program{{Op: OpJmp, Imm: 5}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range jump accepted")
	}
	bad = Program{{Op: OpJmp, Imm: -2}}
	if err := bad.Validate(); err == nil {
		t.Error("before-start jump accepted")
	}
	// A branch to exactly len(p) (falling off the end) is permitted: it
	// halts the processor like running past the last instruction.
	edge := Program{{Op: OpJmp, Imm: 0}}
	if err := edge.Validate(); err != nil {
		t.Errorf("fall-through jump rejected: %v", err)
	}
}

const sampleProgram = `
; sum the integers 1..5 into r2
        ldi  r1, 5        ; counter
        ldi  r2, 0        ; accumulator
        ldi  r3, 0        ; zero
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r3, loop
        st   r2, [r3+0]
        halt
`

func TestAssemble_Sample(t *testing.T) {
	p, err := Assemble(sampleProgram)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p) != 8 {
		t.Fatalf("program has %d instructions, want 8", len(p))
	}
	if p[5].Op != OpBne || p[5].Imm != -3 {
		t.Errorf("branch assembled as %+v, want bne with displacement -3", p[5])
	}
	if p[6].Op != OpSt || p[6].Rb != 2 || p[6].Ra != 3 || p[6].Imm != 0 {
		t.Errorf("store assembled as %+v", p[6])
	}
}

func TestAssemble_AllSyntaxForms(t *testing.T) {
	src := `
start:
  nop
  ldi r1, 0x10
  mov r2, r1
  add r3, r1, r2
  addi r4, r3, -7
  muli r5, r4, 3
  ld r6, [r1+4]
  ld r7, [r1]
  st r6, [r1-4]
  beq r1, r2, start
  bne r1, r2, +1
  blt r1, r2, -3
  bge r1, r2, end
  jmp end
  send r1, r2
  recv r3, r2
  sync
  lane r8
end:
  halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p[1].Imm != 16 {
		t.Errorf("hex immediate parsed as %d", p[1].Imm)
	}
	if p[7].Imm != 0 {
		t.Errorf("[r1] offset = %d, want 0", p[7].Imm)
	}
	if p[8].Imm != -4 {
		t.Errorf("[r1-4] offset = %d, want -4", p[8].Imm)
	}
	// Round-trip through the disassembler and a re-assembly.
	text := Disassemble(p)
	if !strings.Contains(text, "ld r6, [r1+4]") || !strings.Contains(text, "st r6, [r1-4]") {
		t.Errorf("disassembly missing memory forms:\n%s", text)
	}
}

func TestAssemble_DisassembleReassembleFixpoint(t *testing.T) {
	p := MustAssemble(sampleProgram)
	text := Disassemble(p)
	// Strip the "pc: " prefixes to get assemblable text.
	var clean []string
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, ":  "); i >= 0 {
			line = line[i+3:]
		}
		clean = append(clean, line)
	}
	p2, err := Assemble(strings.Join(clean, "\n"))
	if err != nil {
		t.Fatalf("reassembly: %v", err)
	}
	if len(p2) != len(p) {
		t.Fatalf("reassembly length %d, want %d", len(p2), len(p))
	}
	for i := range p {
		if p[i] != p2[i] {
			t.Errorf("instruction %d changed: %+v -> %+v", i, p[i], p2[i])
		}
	}
}

func TestAssemble_Errors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":   "frobnicate r1",
		"bad register":       "ldi r99, 1",
		"bad register name":  "mov rx, r1",
		"too few operands":   "add r1, r2",
		"too many operands":  "nop r1",
		"bad immediate":      "ldi r1, abc!",
		"undefined label":    "jmp nowhere",
		"duplicate label":    "a:\na:\nnop",
		"bad label":          "9lives: nop",
		"bad memory operand": "ld r1, r2",
		"bad memory base":    "ld r1, [x+1]",
		"bad branch target":  "beq r1, r2, 1.5",
		"bad jump target":    "jmp 1.5",
	}
	for name, src := range cases {
		if p, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled %v, want error", name, p)
		}
	}
}

func TestEncodeProgram_RoundTrip(t *testing.T) {
	p := MustAssemble(sampleProgram)
	words, err := EncodeProgram(p)
	if err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	back, err := DecodeProgram(words)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	for i := range p {
		if p[i] != back[i] {
			t.Errorf("instruction %d: %+v -> %+v", i, p[i], back[i])
		}
	}
	words[0] = 0xFF
	if _, err := DecodeProgram(words); err == nil {
		t.Error("corrupted word decoded")
	}
	badProg := Program{{Op: OpJmp, Imm: 100}}
	if _, err := EncodeProgram(badProg); err == nil {
		t.Error("invalid program encoded")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpBeq.IsBranch() || !OpJmp.IsBranch() || OpAdd.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !OpLd.IsMemory() || !OpSt.IsMemory() || OpAdd.IsMemory() {
		t.Error("IsMemory wrong")
	}
	if !OpSend.IsComm() || !OpRecv.IsComm() || OpSync.IsComm() {
		t.Error("IsComm wrong")
	}
	if OpNop.String() != "nop" || OpHalt.String() != "halt" {
		t.Error("op names wrong")
	}
	if Op(200).Valid() {
		t.Error("op 200 valid")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("invalid op string")
	}
}

func TestInstructionString_InvalidOp(t *testing.T) {
	s := Instruction{Op: Op(200)}.String()
	if !strings.HasPrefix(s, ".word") {
		t.Errorf("invalid instruction prints %q", s)
	}
}

func TestMustAssemble_Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus r1")
}
