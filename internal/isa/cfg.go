package isa

// This file is the shared control-flow view of one program: basic-block
// discovery over a DecodedProgram, used by both machine.Compile (block
// lowering and superinstruction fusion) and internal/progcheck (static
// checks and abstract interpretation). Keeping one implementation is what
// makes the checker's block structure authoritative for the compiler: a
// fusion decision can never span a boundary the checker cannot see, and the
// compiler asserts exactly that after lowering.

// BasicBlock is one maximal straight-line run of instructions.
type BasicBlock struct {
	// Start and End bound the block's pc range [Start, End).
	Start, End int32
	// Fall is the index of the fall-through successor block, or -1 when
	// control cannot fall into End (jmp or halt terminator, or End is the
	// end of the program).
	Fall int32
	// Taken is the index of the taken-branch successor block, or -1 when
	// the terminator is not a branch or its target lies outside the
	// program.
	Taken int32
	// FallsOff reports that control can leave the block past the end of
	// the program — by falling through at End == len, or by a branch
	// whose target is len (the implicit halt every interpreter applies to
	// an out-of-range pc).
	FallsOff bool
}

// Succs appends the block's successor indices (fall-through first, then the
// taken target when distinct) to dst and returns it.
func (b *BasicBlock) Succs(dst []int32) []int32 {
	if b.Fall >= 0 {
		dst = append(dst, b.Fall)
	}
	if b.Taken >= 0 && b.Taken != b.Fall {
		dst = append(dst, b.Taken)
	}
	return dst
}

// CFG is the basic-block graph of one program. Blocks are in program order
// (ascending Start), so block indices order the same way pcs do.
type CFG struct {
	Blocks []BasicBlock
	// BlockAt maps every pc to the index of its containing block.
	BlockAt []int32
}

// BuildCFG discovers basic blocks with the leader rules the compiled
// backend has always used: pc 0, every in-program branch target, the
// instruction after every branch, and the instruction after every halt are
// leaders; a block ends at a branch or halt, before the next leader, and at
// the end of the program.
func BuildCFG(dec DecodedProgram) *CFG {
	n := len(dec)
	g := &CFG{BlockAt: make([]int32, n)}
	if n == 0 {
		return g
	}
	leader := make([]bool, n)
	leader[0] = true
	for pc := range dec {
		d := &dec[pc]
		if d.IsBranch() {
			if t := int(d.Target); t >= 0 && t < n {
				leader[t] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
		if d.Op == OpHalt && pc+1 < n {
			leader[pc+1] = true
		}
	}
	start := 0
	for pc := 0; pc < n; pc++ {
		d := &dec[pc]
		endsHere := d.IsBranch() || d.Op == OpHalt
		nextIsLeader := pc+1 < n && leader[pc+1]
		if endsHere || nextIsLeader || pc+1 == n {
			idx := int32(len(g.Blocks))
			g.Blocks = append(g.Blocks, BasicBlock{
				Start: int32(start), End: int32(pc + 1), Fall: -1, Taken: -1,
			})
			for i := start; i <= pc; i++ {
				g.BlockAt[i] = idx
			}
			start = pc + 1
		}
	}
	for i := range g.Blocks {
		b := &g.Blocks[i]
		d := &dec[b.End-1]
		switch {
		case d.Op == OpHalt:
			// Explicit halt: no successors.
		case d.IsBranch():
			if d.Op != OpJmp {
				if int(b.End) < n {
					b.Fall = g.BlockAt[b.End]
				} else {
					b.FallsOff = true
				}
			}
			if t := int(d.Target); t >= 0 && t < n {
				b.Taken = g.BlockAt[t]
			} else {
				// Target == n is the legal implicit halt; anything further
				// out is a Validate error the checker reports. Either way
				// control leaves the program.
				b.FallsOff = true
			}
		default:
			if int(b.End) < n {
				b.Fall = g.BlockAt[b.End]
			} else {
				b.FallsOff = true
			}
		}
	}
	return g
}
