package isa

import (
	"strings"
	"testing"
)

// FuzzAsmRoundTrip: any source the assembler accepts must render, via
// Instruction.String, back into text that assembles to the identical
// program, and the accepted program must survive the binary
// Encode/Decode path unchanged. Inputs the assembler rejects are fine —
// the property is only that acceptance implies round-trip stability
// (and that no input panics the parser).
func FuzzAsmRoundTrip(f *testing.F) {
	f.Add("ldi r1, 42\nadd r2, r2, r1\nhalt")
	f.Add("loop: addi r1, r1, -1\nbne r1, r0, loop\nhalt")
	f.Add("ld r3, [r4+8]\nst r3, [r4-8]\nsync\nlane r5\nsend r1, r2\nrecv r3, r2\nmov r1, r2\njmp +0\nnop\nhalt")
	f.Add("x: y: beq r0, r0, 0x1 ; trailing comment\nnop\nhalt")
	f.Add("muli r9, r9, -4\nshr r1, r2, r3\nmin r4, r5, r6")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return // rejected input; nothing to round-trip
		}
		var b strings.Builder
		for _, ins := range prog {
			b.WriteString(ins.String())
			b.WriteByte('\n')
		}
		prog2, err := Assemble(b.String())
		if err != nil {
			t.Fatalf("rendering of accepted program does not re-assemble: %v\nrendered:\n%s", err, b.String())
		}
		if len(prog2) != len(prog) {
			t.Fatalf("round trip changed program length: %d -> %d", len(prog), len(prog2))
		}
		for i := range prog {
			if prog[i] != prog2[i] {
				t.Fatalf("round trip changed instruction %d: %v -> %v", i, prog[i], prog2[i])
			}
		}

		words, err := EncodeProgram(prog)
		if err != nil {
			t.Fatalf("accepted program does not encode: %v", err)
		}
		prog3, err := DecodeProgram(words)
		if err != nil {
			t.Fatalf("encoded program does not decode: %v", err)
		}
		for i := range prog {
			if prog[i] != prog3[i] {
				t.Fatalf("binary round trip changed instruction %d: %v -> %v", i, prog[i], prog3[i])
			}
		}
	})
}

// FuzzEncodeDecode: any word Decode accepts must re-encode to a word
// that decodes to the identical instruction. (Encode(Decode(w)) need not
// equal w — the unused bits 20..31 are not preserved — but the decoded
// form is canonical and must be a fixed point.)
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(EncodeRaw(Instruction{Op: OpAddi, Rd: 1, Ra: 2, Imm: -7}))
	f.Add(EncodeRaw(Instruction{Op: OpSt, Rb: 13, Ra: 14, Imm: 62}))
	f.Fuzz(func(t *testing.T, w uint64) {
		ins, err := Decode(w)
		if err != nil {
			return // invalid word; must be rejected, not mis-decoded
		}
		if err := ins.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid instruction: %v", err)
		}
		w2, err := Encode(ins)
		if err != nil {
			t.Fatalf("decoded instruction does not re-encode: %v", err)
		}
		ins2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded word does not decode: %v", err)
		}
		if ins2 != ins {
			t.Fatalf("decode not a fixed point: %v -> %v", ins, ins2)
		}
	})
}
