package isa

// This file is the pre-decode pass: it lowers a Program into a cached
// []DecodedOp once, so the cycle loops of the machine-class simulators
// dispatch on an already-widened, already-classified struct instead of
// re-deriving operand widths, branch targets and op classes from the
// Instruction on every executed cycle. machine.StepDecoded consumes it.

// Decoded-op class flags, precomputed once per instruction at lowering
// time. They mirror Op.IsALU/IsBranch/IsMemory/IsComm so the per-cycle
// dispatch is one bit test instead of a switch.
const (
	// DecALU marks an op that counts as an ALU operation in machine.Stats.
	DecALU uint8 = 1 << iota
	// DecBranch marks an op that may change the program counter.
	DecBranch
	// DecMem marks an op that traverses the DP-DM switch.
	DecMem
	// DecComm marks an op that traverses the DP-DP network.
	DecComm
)

// DecodedOp is one pre-decoded instruction: the Instruction fields plus
// everything the hot step loop would otherwise recompute every cycle — the
// immediate widened to a machine Word, the absolute branch target, and the
// op-class flags.
type DecodedOp struct {
	// Op, Rd, Ra, Rb mirror the Instruction fields.
	Op         Op
	Rd, Ra, Rb uint8
	// Flags holds the Dec* op-class bits.
	Flags uint8
	// Imm is the immediate widened to a machine word once, so ALU and
	// memory ops skip the per-cycle int32 conversion.
	Imm Word
	// Target is the absolute taken-branch target (pc + 1 + Imm),
	// precomputed for branch ops; 0 otherwise.
	Target int32
}

// IsALU reports whether the op counts as an ALU operation in run stats.
func (d *DecodedOp) IsALU() bool { return d.Flags&DecALU != 0 }

// IsBranch reports whether the op may change the program counter.
func (d *DecodedOp) IsBranch() bool { return d.Flags&DecBranch != 0 }

// IsMemory reports whether the op traverses the DP-DM switch.
func (d *DecodedOp) IsMemory() bool { return d.Flags&DecMem != 0 }

// IsComm reports whether the op traverses the DP-DP network.
func (d *DecodedOp) IsComm() bool { return d.Flags&DecComm != 0 }

// Instruction reconstructs the original instruction (for disassembly and
// debug callbacks; the hot path never needs it).
func (d *DecodedOp) Instruction() Instruction {
	return Instruction{Op: d.Op, Rd: d.Rd, Ra: d.Ra, Rb: d.Rb, Imm: int32(d.Imm)}
}

// DecodedProgram is the lowered form of one instruction memory, produced by
// Predecode and cached by the simulators for the lifetime of a machine.
type DecodedProgram []DecodedOp

// DecodeOp lowers one instruction at the given program counter.
func DecodeOp(pc int, ins Instruction) DecodedOp {
	d := DecodedOp{
		Op:  ins.Op,
		Rd:  ins.Rd,
		Ra:  ins.Ra,
		Rb:  ins.Rb,
		Imm: Word(ins.Imm),
	}
	if ins.Op.IsALU() {
		d.Flags |= DecALU
	}
	if ins.Op.IsBranch() {
		d.Flags |= DecBranch
		d.Target = int32(pc) + 1 + ins.Imm
	}
	if ins.Op.IsMemory() {
		d.Flags |= DecMem
	}
	if ins.Op.IsComm() {
		d.Flags |= DecComm
	}
	return d
}

// Predecode lowers a whole program. The caller is expected to have
// validated the program (branch targets inside, registers in range); the
// simulators all do so at construction, which is also where they cache the
// result so every executed cycle reuses it.
func Predecode(p Program) DecodedProgram {
	dec := make(DecodedProgram, len(p))
	for pc, ins := range p {
		dec[pc] = DecodeOp(pc, ins)
	}
	return dec
}
