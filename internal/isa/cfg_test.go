package isa

import "testing"

func TestBuildCFGPartition(t *testing.T) {
	prog := MustAssemble(`
        ldi  r1, 0
        ldi  r2, 8
loop:   beq  r1, r2, done
        addi r1, r1, 1
        jmp  loop
done:   halt
`)
	g := BuildCFG(Predecode(prog))
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4: %+v", len(g.Blocks), g.Blocks)
	}
	wantBlocks := []BasicBlock{
		{Start: 0, End: 2, Fall: 1, Taken: -1},
		{Start: 2, End: 3, Fall: 2, Taken: 3},
		{Start: 3, End: 5, Fall: -1, Taken: 1},
		{Start: 5, End: 6, Fall: -1, Taken: -1},
	}
	for i, want := range wantBlocks {
		if g.Blocks[i] != want {
			t.Errorf("block %d = %+v, want %+v", i, g.Blocks[i], want)
		}
	}
	// Every pc maps into the block covering it.
	for pc := range prog {
		b := g.BlockAt[pc]
		if b < 0 || int32(pc) < g.Blocks[b].Start || int32(pc) >= g.Blocks[b].End {
			t.Errorf("BlockAt[%d] = %d does not cover pc", pc, b)
		}
	}
}

func TestBuildCFGImplicitHalt(t *testing.T) {
	// A branch to the program end is the implicit halt: no taken edge,
	// FallsOff set. A block ending at the last pc without a terminator
	// likewise falls off.
	prog := Program{
		{Op: OpBeq, Ra: 1, Rb: 2, Imm: 1}, // target = 2 = len: implicit halt
		{Op: OpNop},
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(Predecode(prog))
	if len(g.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2: %+v", len(g.Blocks), g.Blocks)
	}
	b0, b1 := g.Blocks[0], g.Blocks[1]
	if b0.Taken != -1 || !b0.FallsOff {
		t.Errorf("block 0 = %+v, want no taken edge and FallsOff", b0)
	}
	if b0.Fall != 1 {
		t.Errorf("block 0 fall = %d, want 1", b0.Fall)
	}
	if b1.Fall != -1 || b1.Taken != -1 || !b1.FallsOff {
		t.Errorf("block 1 = %+v, want edge-free FallsOff block", b1)
	}
}

func TestBuildCFGEmpty(t *testing.T) {
	g := BuildCFG(nil)
	if len(g.Blocks) != 0 {
		t.Fatalf("empty program produced %d blocks", len(g.Blocks))
	}
}

func TestBasicBlockSuccs(t *testing.T) {
	var buf [2]int32
	b := BasicBlock{Fall: 3, Taken: 5}
	if s := b.Succs(buf[:0]); len(s) != 2 || s[0] != 3 || s[1] != 5 {
		t.Errorf("Succs = %v, want [3 5]", s)
	}
	b = BasicBlock{Fall: 4, Taken: 4}
	if s := b.Succs(buf[:0]); len(s) != 1 || s[0] != 4 {
		t.Errorf("coincident Succs = %v, want [4]", s)
	}
	b = BasicBlock{Fall: -1, Taken: -1}
	if s := b.Succs(buf[:0]); len(s) != 0 {
		t.Errorf("edge-free Succs = %v, want []", s)
	}
}
