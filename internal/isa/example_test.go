package isa_test

import (
	"fmt"

	"repro/internal/isa"
)

// Assemble a small kernel and inspect its encoding.
func ExampleAssemble() {
	prog, err := isa.Assemble(`
        ldi  r1, 5
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(prog), "instructions")
	fmt.Print(isa.Disassemble(prog))
	// Output:
	// 4 instructions
	//    0:  ldi r1, 5
	//    1:  addi r1, r1, -1
	//    2:  bne r1, r0, -2
	//    3:  halt
}

// Programs encode to 64-bit instruction-memory words and decode back.
func ExampleEncodeProgram() {
	prog := isa.MustAssemble("ldi r2, 7\nhalt")
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	back, err := isa.DecodeProgram(words)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(words), back[0].String())
	// Output:
	// 2 ldi r2, 7
}
