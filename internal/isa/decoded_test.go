package isa

import "testing"

// TestPredecodeFields checks the lowering of every field and flag.
func TestPredecodeFields(t *testing.T) {
	prog := Program{
		{Op: OpLdi, Rd: 1, Imm: -7},
		{Op: OpAdd, Rd: 2, Ra: 1, Rb: 3},
		{Op: OpLd, Rd: 4, Ra: 1, Imm: 9},
		{Op: OpBne, Ra: 1, Rb: 2, Imm: -2},
		{Op: OpSend, Ra: 1, Rb: 2},
		{Op: OpHalt},
	}
	dec := Predecode(prog)
	if len(dec) != len(prog) {
		t.Fatalf("decoded %d ops, program has %d", len(dec), len(prog))
	}
	for pc, d := range dec {
		ins := prog[pc]
		if d.Op != ins.Op || d.Rd != ins.Rd || d.Ra != ins.Ra || d.Rb != ins.Rb {
			t.Errorf("pc %d: fields %+v do not mirror %+v", pc, d, ins)
		}
		if d.Imm != Word(ins.Imm) {
			t.Errorf("pc %d: Imm = %d, want widened %d", pc, d.Imm, ins.Imm)
		}
		if got := d.Instruction(); got != ins {
			t.Errorf("pc %d: round-trip %+v != %+v", pc, got, ins)
		}
	}
	if !dec[1].IsALU() || dec[0].IsALU() {
		t.Error("ALU flag wrong on add/ldi")
	}
	if !dec[2].IsMemory() || dec[1].IsMemory() {
		t.Error("memory flag wrong on ld/add")
	}
	if !dec[3].IsBranch() {
		t.Error("branch flag missing on bne")
	}
	if want := int32(3 + 1 - 2); dec[3].Target != want {
		t.Errorf("branch target %d, want %d", dec[3].Target, want)
	}
	if !dec[4].IsComm() {
		t.Error("comm flag missing on send")
	}
}

// TestOpIsALUMatchesTable pins the ALU classification against the opTable:
// exactly the register/immediate arithmetic group, nothing else.
func TestOpIsALUMatchesTable(t *testing.T) {
	want := map[Op]bool{
		OpAdd: true, OpSub: true, OpMul: true, OpDiv: true, OpRem: true,
		OpAnd: true, OpOr: true, OpXor: true, OpShl: true, OpShr: true,
		OpSlt: true, OpSeq: true, OpMin: true, OpMax: true,
		OpAddi: true, OpMuli: true,
	}
	for o := Op(0); o < opCount; o++ {
		if o.IsALU() != want[o] {
			t.Errorf("%v.IsALU() = %v, want %v", o, o.IsALU(), want[o])
		}
	}
}
