package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembler text into a Program. The syntax is one
// instruction per line:
//
//	; full-line or trailing comment
//	loop:               ; a label (may share the line with an instruction)
//	    ldi  r1, 42
//	    add  r2, r2, r1
//	    ld   r3, [r4+8]  ; memory operands are [base+offset]
//	    st   r3, [r4-8]
//	    beq  r2, r3, loop
//	    jmp  done
//	done:
//	    halt
//
// Branch targets may be labels or signed numeric displacements. Register
// names are r0..r15, case-insensitive.
func Assemble(src string) (Program, error) {
	type pending struct {
		pc    int
		line  int
		label string
	}
	var (
		prog    Program
		labels  = map[string]int{}
		fixups  []pending
		lineNum int
	)

	for _, rawLine := range strings.Split(src, "\n") {
		lineNum++
		line := rawLine
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Labels: any number of leading "name:" prefixes.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNum, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNum, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		mnemonic, rest := splitMnemonic(line)
		op, ok := opByName(mnemonic)
		if !ok {
			return nil, fmt.Errorf("isa: line %d: unknown mnemonic %q", lineNum, mnemonic)
		}
		operands := splitOperands(rest)
		ins := Instruction{Op: op}
		var labelRef string

		parseErr := func(err error) error {
			return fmt.Errorf("isa: line %d: %s: %w", lineNum, mnemonic, err)
		}
		need := func(n int) error {
			if len(operands) != n {
				return parseErr(fmt.Errorf("want %d operands, got %d", n, len(operands)))
			}
			return nil
		}

		switch op {
		case OpNop, OpHalt, OpSync:
			if err := need(0); err != nil {
				return nil, err
			}
		case OpLane:
			if err := need(1); err != nil {
				return nil, err
			}
			r, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Rd = r
		case OpLdi:
			if err := need(2); err != nil {
				return nil, err
			}
			r, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			imm, err := parseImm(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Rd, ins.Imm = r, imm
		case OpMov:
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			ra, err := parseReg(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Rd, ins.Ra = rd, ra
		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt, OpSeq, OpMin, OpMax:
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			ra, err := parseReg(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			rb, err := parseReg(operands[2])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Rd, ins.Ra, ins.Rb = rd, ra, rb
		case OpAddi, OpMuli:
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			ra, err := parseReg(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			imm, err := parseImm(operands[2])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Rd, ins.Ra, ins.Imm = rd, ra, imm
		case OpLd:
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			base, off, err := parseMem(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Rd, ins.Ra, ins.Imm = rd, base, off
		case OpSt:
			if err := need(2); err != nil {
				return nil, err
			}
			rb, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			base, off, err := parseMem(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Rb, ins.Ra, ins.Imm = rb, base, off
		case OpBeq, OpBne, OpBlt, OpBge:
			if err := need(3); err != nil {
				return nil, err
			}
			ra, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			rb, err := parseReg(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Ra, ins.Rb = ra, rb
			if imm, err := parseImm(operands[2]); err == nil {
				ins.Imm = imm
			} else if isIdent(operands[2]) {
				labelRef = operands[2]
			} else {
				return nil, parseErr(fmt.Errorf("bad branch target %q", operands[2]))
			}
		case OpJmp:
			if err := need(1); err != nil {
				return nil, err
			}
			if imm, err := parseImm(operands[0]); err == nil {
				ins.Imm = imm
			} else if isIdent(operands[0]) {
				labelRef = operands[0]
			} else {
				return nil, parseErr(fmt.Errorf("bad jump target %q", operands[0]))
			}
		case OpSend:
			if err := need(2); err != nil {
				return nil, err
			}
			ra, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			rb, err := parseReg(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Ra, ins.Rb = ra, rb
		case OpRecv:
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err := parseReg(operands[0])
			if err != nil {
				return nil, parseErr(err)
			}
			rb, err := parseReg(operands[1])
			if err != nil {
				return nil, parseErr(err)
			}
			ins.Rd, ins.Rb = rd, rb
		default:
			return nil, fmt.Errorf("isa: line %d: mnemonic %q not assemblable", lineNum, mnemonic)
		}

		if labelRef != "" {
			fixups = append(fixups, pending{pc: len(prog), line: lineNum, label: labelRef})
		}
		prog = append(prog, ins)
	}

	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", f.line, f.label)
		}
		prog[f.pc].Imm = int32(target - (f.pc + 1))
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustAssemble is Assemble for program text known to be valid (package
// constants, tests). It panics on error.
func MustAssemble(src string) Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders a program as assembler text, one instruction per
// line, with the program counter as a comment.
func Disassemble(p Program) string {
	var b strings.Builder
	for pc, ins := range p {
		fmt.Fprintf(&b, "%4d:  %s\n", pc, ins)
	}
	return b.String()
}

func splitMnemonic(line string) (mnemonic, rest string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return strings.ToLower(line), ""
	}
	return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
}

func splitOperands(rest string) []string {
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func opByName(name string) (Op, bool) {
	for op, info := range opTable {
		if info.name == name && info.name != "" {
			return Op(op), true
		}
	}
	return 0, false
}

func parseReg(s string) (uint8, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if len(t) < 2 || t[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	v, err := strconv.Atoi(t[1:])
	if err != nil || v < 0 || v >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(v), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

// parseMem parses a memory operand "[rBASE+OFF]" or "[rBASE]" or
// "[rBASE-OFF]".
func parseMem(s string) (base uint8, off int32, err error) {
	t := strings.TrimSpace(s)
	if len(t) < 2 || t[0] != '[' || t[len(t)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := t[1 : len(t)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		b, err := parseReg(inner)
		return b, 0, err
	}
	b, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	o, err := parseImm(inner[sep:])
	if err != nil {
		return 0, 0, err
	}
	return b, o, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
