package bibliometrics

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidate_Rejects(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.LastYear = c.FirstYear - 1 },
		func(c *Config) { c.Topics = nil },
		func(c *Config) { c.Noise = -0.1 },
		func(c *Config) { c.Noise = 1.5 },
		func(c *Config) { c.Topics[0].Name = "" },
		func(c *Config) { c.Topics[1].Name = c.Topics[0].Name },
		func(c *Config) { c.Topics[0].Base = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate accepted mutation %d", i)
		}
	}
}

func TestGenerate_Deterministic(t *testing.T) {
	a, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("non-deterministic corpus: %d vs %d records", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	// A different seed gives a different corpus.
	cfg := DefaultConfig()
	cfg.Seed = 42
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) == len(a.Records) {
		same := true
		for i := range c.Records {
			if c.Records[i] != a.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical corpora")
		}
	}
}

func TestTrends_CoverAllTopicYears(t *testing.T) {
	corpus, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	series := Trends(corpus)
	cfg := corpus.Config
	if len(series) != len(cfg.Topics) {
		t.Fatalf("got %d series, want %d", len(series), len(cfg.Topics))
	}
	years := cfg.LastYear - cfg.FirstYear + 1
	for _, s := range series {
		if len(s.Years) != years || len(s.Counts) != years {
			t.Errorf("series %q has %d years, want %d", s.Topic, len(s.Years), years)
		}
		if s.Total() == 0 {
			t.Errorf("series %q is empty", s.Topic)
		}
	}
	// The corpus record count equals the sum of all series.
	total := 0
	for _, s := range series {
		total += s.Total()
	}
	if total != len(corpus.Records) {
		t.Errorf("series total %d != corpus size %d", total, len(corpus.Records))
	}
}

// TestFig1_TrendShape pins the figure's qualitative claims: every topic
// grows over the window, and multicore and reconfigurable computing grow
// the most sharply in the last five years.
func TestFig1_TrendShape(t *testing.T) {
	corpus, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratios := map[string]float64{}
	for _, s := range Trends(corpus) {
		ratios[s.Topic] = s.GrowthRatio(5)
	}
	for topic, r := range ratios {
		if r <= 1.5 {
			t.Errorf("topic %q grew only %.2fx; Fig 1 shows clear growth everywhere", topic, r)
		}
	}
	if ratios["multicore architecture"] <= ratios["parallel computing"] {
		t.Errorf("multicore (%.1fx) should outgrow general parallel computing (%.1fx)",
			ratios["multicore architecture"], ratios["parallel computing"])
	}
	if ratios["reconfigurable computing"] <= 2 {
		t.Errorf("reconfigurable computing grew only %.1fx", ratios["reconfigurable computing"])
	}
}

// TestFig1_RecentSurge: counts in 2007-2011 dominate 1996-2000 for every
// topic ("research interest ... has increased significantly in the last
// five years").
func TestFig1_RecentSurge(t *testing.T) {
	corpus, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Trends(corpus) {
		early := s.WindowMean(1996, 2000)
		late := s.WindowMean(2007, 2011)
		if late <= early {
			t.Errorf("topic %q: late mean %.1f not above early mean %.1f", s.Topic, late, early)
		}
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Topic: "x", Years: []int{2000, 2001, 2002, 2003}, Counts: []int{1, 2, 3, 4}}
	if s.Total() != 10 {
		t.Errorf("Total = %d", s.Total())
	}
	if got := s.WindowMean(2000, 2001); got != 1.5 {
		t.Errorf("WindowMean = %g", got)
	}
	if got := s.WindowMean(1990, 1991); got != 0 {
		t.Errorf("empty window mean = %g", got)
	}
	if got := s.GrowthRatio(2); got != 3.5/1.5 {
		t.Errorf("GrowthRatio = %g", got)
	}
	var empty Series
	if empty.GrowthRatio(5) != 0 {
		t.Error("empty growth ratio nonzero")
	}
	zeroEarly := Series{Years: []int{1, 2}, Counts: []int{0, 5}}
	if g := zeroEarly.GrowthRatio(1); !isInf(g) {
		t.Errorf("zero-base growth = %g, want +Inf", g)
	}
}

func isInf(f float64) bool { return f > 1e308 }

func TestTopicNames(t *testing.T) {
	names := DefaultConfig().TopicNames()
	if len(names) != 6 {
		t.Fatalf("got %d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}

// TestGenerate_Property: any valid window produces per-topic series whose
// yearly counts are non-negative and deterministic in the seed.
func TestGenerate_Property(t *testing.T) {
	f := func(seed uint64, span uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.LastYear = cfg.FirstYear + int(span%10)
		c1, err1 := Generate(cfg)
		c2, err2 := Generate(cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(c1.Records) != len(c2.Records) {
			return false
		}
		for _, s := range Trends(c1) {
			for _, n := range s.Counts {
				if n < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
