// Package bibliometrics regenerates the paper's Fig 1 ("Research Trends in
// Parallel Computing", compiled by the authors from the IEEE publication
// database). The IEEE database is proprietary, so per the substitution rule
// this package builds a deterministic synthetic publication corpus whose
// topic/year mixture is parameterised to the trend the figure reports —
// research interest in parallel computing, "specially in multicore and
// reconfigurable computer architectures", rising sharply in the five years
// before the paper (2007-2011) — and a query engine that counts
// publications by topic and year the way the authors' database query did.
// The reproduction target is the *shape* of the series, not the absolute
// counts.
package bibliometrics

import (
	"fmt"
	"math"
	"sort"
)

// Topic is one search term of the figure.
type Topic struct {
	// Name is the topic label.
	Name string
	// Base is the publications per year at the start of the window.
	Base float64
	// Growth is the exponential growth rate per year before takeoff.
	Growth float64
	// TakeoffYear is when the topic's growth accelerates (0 disables).
	TakeoffYear int
	// TakeoffBoost multiplies the growth rate after TakeoffYear.
	TakeoffBoost float64
}

// Config parameterises the corpus.
type Config struct {
	// FirstYear and LastYear bound the window, inclusive.
	FirstYear, LastYear int
	// Topics lists the modelled search terms.
	Topics []Topic
	// Seed drives the deterministic noise generator.
	Seed uint64
	// Noise is the relative jitter applied to each yearly count (0..1).
	Noise float64
}

// DefaultConfig models Fig 1's six families over 1996-2011 (the paper's
// "last 15 years" as of IPPS 2012).
func DefaultConfig() Config {
	return Config{
		FirstYear: 1996,
		LastYear:  2011,
		Seed:      0x5EED_CA11_ED01,
		Noise:     0.08,
		Topics: []Topic{
			{Name: "parallel computing", Base: 420, Growth: 0.04, TakeoffYear: 2006, TakeoffBoost: 3.0},
			{Name: "multicore architecture", Base: 8, Growth: 0.10, TakeoffYear: 2005, TakeoffBoost: 5.5},
			{Name: "reconfigurable computing", Base: 45, Growth: 0.08, TakeoffYear: 2006, TakeoffBoost: 4.0},
			{Name: "FPGA", Base: 180, Growth: 0.07, TakeoffYear: 2006, TakeoffBoost: 2.5},
			{Name: "GPU computing", Base: 5, Growth: 0.06, TakeoffYear: 2007, TakeoffBoost: 6.0},
			{Name: "CGRA", Base: 3, Growth: 0.09, TakeoffYear: 2007, TakeoffBoost: 4.5},
		},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LastYear < c.FirstYear {
		return fmt.Errorf("bibliometrics: year window [%d,%d] is empty", c.FirstYear, c.LastYear)
	}
	if len(c.Topics) == 0 {
		return fmt.Errorf("bibliometrics: no topics configured")
	}
	if c.Noise < 0 || c.Noise > 1 {
		return fmt.Errorf("bibliometrics: noise %g outside [0,1]", c.Noise)
	}
	seen := map[string]bool{}
	for _, t := range c.Topics {
		if t.Name == "" {
			return fmt.Errorf("bibliometrics: unnamed topic")
		}
		if seen[t.Name] {
			return fmt.Errorf("bibliometrics: duplicate topic %q", t.Name)
		}
		seen[t.Name] = true
		if t.Base < 0 || t.TakeoffBoost < 0 {
			return fmt.Errorf("bibliometrics: topic %q has negative parameters", t.Name)
		}
	}
	return nil
}

// Record is one synthetic publication.
type Record struct {
	Year  int
	Topic string
}

// Corpus is the generated publication set plus its configuration.
type Corpus struct {
	Config  Config
	Records []Record
}

// rng is a deterministic xorshift64* generator.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// float returns a uniform value in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// expectedCount is the topic's modelled publication count for a year.
func expectedCount(t Topic, year, firstYear int) float64 {
	count := t.Base
	for y := firstYear + 1; y <= year; y++ {
		g := t.Growth
		if t.TakeoffYear > 0 && y > t.TakeoffYear {
			g *= t.TakeoffBoost
		}
		count *= math.Exp(g)
	}
	return count
}

// Generate builds the corpus deterministically from the configuration.
func Generate(cfg Config) (Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return Corpus{}, err
	}
	r := rng{state: cfg.Seed | 1}
	var records []Record
	for _, t := range cfg.Topics {
		for y := cfg.FirstYear; y <= cfg.LastYear; y++ {
			mean := expectedCount(t, y, cfg.FirstYear)
			jitter := 1 + cfg.Noise*(2*r.float()-1)
			n := int(math.Round(mean * jitter))
			if n < 0 {
				n = 0
			}
			for i := 0; i < n; i++ {
				records = append(records, Record{Year: y, Topic: t.Name})
			}
		}
	}
	return Corpus{Config: cfg, Records: records}, nil
}

// Series is one topic's yearly publication counts.
type Series struct {
	Topic string
	// Years and Counts are parallel, ascending by year.
	Years  []int
	Counts []int
}

// Trends runs the count-by-topic-and-year query over the corpus and returns
// one series per configured topic, in configuration order.
func Trends(c Corpus) []Series {
	byTopic := map[string]map[int]int{}
	for _, rec := range c.Records {
		m, ok := byTopic[rec.Topic]
		if !ok {
			m = map[int]int{}
			byTopic[rec.Topic] = m
		}
		m[rec.Year]++
	}
	var out []Series
	for _, t := range c.Config.Topics {
		s := Series{Topic: t.Name}
		for y := c.Config.FirstYear; y <= c.Config.LastYear; y++ {
			s.Years = append(s.Years, y)
			s.Counts = append(s.Counts, byTopic[t.Name][y])
		}
		out = append(out, s)
	}
	return out
}

// Total is the series' total publication count.
func (s Series) Total() int {
	total := 0
	for _, c := range s.Counts {
		total += c
	}
	return total
}

// WindowMean averages the counts of the years in [from,to].
func (s Series) WindowMean(from, to int) float64 {
	sum, n := 0, 0
	for i, y := range s.Years {
		if y >= from && y <= to {
			sum += s.Counts[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// GrowthRatio compares the last `window` years with the first `window`
// years: the figure's "increased significantly in the last five years".
func (s Series) GrowthRatio(window int) float64 {
	if len(s.Years) == 0 || window < 1 {
		return 0
	}
	first := s.Years[0]
	last := s.Years[len(s.Years)-1]
	early := s.WindowMean(first, first+window-1)
	late := s.WindowMean(last-window+1, last)
	if early == 0 {
		return math.Inf(1)
	}
	return late / early
}

// TopicNames returns the configured topic names, sorted.
func (c Config) TopicNames() []string {
	names := make([]string, len(c.Topics))
	for i, t := range c.Topics {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}
