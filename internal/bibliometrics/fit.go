package bibliometrics

import (
	"fmt"
	"math"
)

// Fit quantifies a series' growth the way a reader of Fig 1 would: a
// log-linear least-squares fit counts ~ A * exp(r * (year - first)) over a
// year window, giving the annual growth rate r and the doubling time.
type Fit struct {
	// Rate is the fitted annual exponential growth rate r.
	Rate float64
	// Amplitude is the fitted count at the window's first year.
	Amplitude float64
	// DoublingYears is ln(2)/r; +Inf when r <= 0.
	DoublingYears float64
	// Points is how many years entered the fit.
	Points int
}

// FitGrowth fits the window [from, to] of a series. Years with zero counts
// are skipped (log undefined); at least two usable points are required.
func FitGrowth(s Series, from, to int) (Fit, error) {
	var xs, ys []float64
	for i, y := range s.Years {
		if y < from || y > to || s.Counts[i] <= 0 {
			continue
		}
		xs = append(xs, float64(y-from))
		ys = append(ys, math.Log(float64(s.Counts[i])))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("bibliometrics: window [%d,%d] leaves %d usable points for %q, need >= 2",
			from, to, len(xs), s.Topic)
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, fmt.Errorf("bibliometrics: degenerate window for %q (single distinct year)", s.Topic)
	}
	rate := (n*sxy - sx*sy) / den
	intercept := (sy - rate*sx) / n
	fit := Fit{
		Rate:      rate,
		Amplitude: math.Exp(intercept),
		Points:    len(xs),
	}
	if rate > 0 {
		fit.DoublingYears = math.Ln2 / rate
	} else {
		fit.DoublingYears = math.Inf(1)
	}
	return fit, nil
}

// TakeoffReport compares a topic's fitted growth before and after a pivot
// year: the quantitative form of Fig 1's "increased significantly in the
// last five years".
type TakeoffReport struct {
	Topic  string
	Before Fit
	After  Fit
	// Acceleration is After.Rate - Before.Rate.
	Acceleration float64
}

// Takeoff fits the series on both sides of the pivot year (pivot belongs
// to the "after" side).
func Takeoff(s Series, pivot int) (TakeoffReport, error) {
	if len(s.Years) == 0 {
		return TakeoffReport{}, fmt.Errorf("bibliometrics: empty series")
	}
	first := s.Years[0]
	last := s.Years[len(s.Years)-1]
	if pivot <= first || pivot >= last {
		return TakeoffReport{}, fmt.Errorf("bibliometrics: pivot %d outside (%d,%d)", pivot, first, last)
	}
	before, err := FitGrowth(s, first, pivot-1)
	if err != nil {
		return TakeoffReport{}, err
	}
	after, err := FitGrowth(s, pivot, last)
	if err != nil {
		return TakeoffReport{}, err
	}
	return TakeoffReport{
		Topic:        s.Topic,
		Before:       before,
		After:        after,
		Acceleration: after.Rate - before.Rate,
	}, nil
}
