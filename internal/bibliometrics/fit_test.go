package bibliometrics

import (
	"math"
	"testing"
	"testing/quick"
)

// exactSeries builds counts = A * exp(r * t) rounded, t = year - 2000.
func exactSeries(a, r float64, years int) Series {
	s := Series{Topic: "exact"}
	for t := 0; t < years; t++ {
		s.Years = append(s.Years, 2000+t)
		s.Counts = append(s.Counts, int(math.Round(a*math.Exp(r*float64(t)))))
	}
	return s
}

func TestFitGrowth_RecoversKnownRate(t *testing.T) {
	s := exactSeries(1000, 0.25, 10)
	fit, err := FitGrowth(s, 2000, 2009)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate-0.25) > 0.01 {
		t.Errorf("fitted rate %g, want ~0.25", fit.Rate)
	}
	if math.Abs(fit.Amplitude-1000) > 20 {
		t.Errorf("fitted amplitude %g, want ~1000", fit.Amplitude)
	}
	if math.Abs(fit.DoublingYears-math.Ln2/0.25) > 0.15 {
		t.Errorf("doubling %g years", fit.DoublingYears)
	}
	if fit.Points != 10 {
		t.Errorf("points %d", fit.Points)
	}
}

func TestFitGrowth_FlatAndDecliningSeries(t *testing.T) {
	flat := Series{Topic: "flat", Years: []int{2000, 2001, 2002}, Counts: []int{50, 50, 50}}
	fit, err := FitGrowth(flat, 2000, 2002)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate) > 1e-9 {
		t.Errorf("flat rate %g", fit.Rate)
	}
	if !math.IsInf(fit.DoublingYears, 1) {
		t.Error("flat series should never double")
	}
	declining := exactSeries(1000, -0.2, 8)
	fit, err = FitGrowth(declining, 2000, 2007)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Rate >= 0 {
		t.Errorf("declining rate %g", fit.Rate)
	}
}

func TestFitGrowth_Errors(t *testing.T) {
	s := exactSeries(10, 0.1, 5)
	if _, err := FitGrowth(s, 2050, 2060); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := FitGrowth(s, 2000, 2000); err == nil {
		t.Error("single-point window accepted")
	}
	zeros := Series{Topic: "z", Years: []int{2000, 2001, 2002}, Counts: []int{0, 0, 5}}
	if _, err := FitGrowth(zeros, 2000, 2002); err == nil {
		t.Error("window with one usable point accepted")
	}
}

func TestTakeoff_DefaultCorpus(t *testing.T) {
	corpus, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Trends(corpus) {
		rep, err := Takeoff(s, 2006)
		if err != nil {
			t.Fatalf("%s: %v", s.Topic, err)
		}
		if rep.Acceleration <= 0 {
			t.Errorf("%s: no acceleration after 2006 (before %.3f, after %.3f)",
				s.Topic, rep.Before.Rate, rep.After.Rate)
		}
	}
	// Multicore accelerates hardest: Fig 1's most dramatic curve.
	var multicore, parallel TakeoffReport
	for _, s := range Trends(corpus) {
		rep, err := Takeoff(s, 2006)
		if err != nil {
			t.Fatal(err)
		}
		switch s.Topic {
		case "multicore architecture":
			multicore = rep
		case "parallel computing":
			parallel = rep
		}
	}
	if multicore.After.Rate <= parallel.After.Rate {
		t.Errorf("multicore post-takeoff rate %.3f not above parallel computing's %.3f",
			multicore.After.Rate, parallel.After.Rate)
	}
}

func TestTakeoff_Errors(t *testing.T) {
	if _, err := Takeoff(Series{}, 2005); err == nil {
		t.Error("empty series accepted")
	}
	s := exactSeries(100, 0.1, 10)
	if _, err := Takeoff(s, 2000); err == nil {
		t.Error("pivot at first year accepted")
	}
	if _, err := Takeoff(s, 2009); err == nil {
		t.Error("pivot at last year accepted")
	}
}

// TestFitGrowth_Property: the fit is scale-equivariant — multiplying all
// counts by a constant changes the amplitude, not the rate.
func TestFitGrowth_Property(t *testing.T) {
	f := func(rRaw uint8, scaleRaw uint8) bool {
		r := float64(rRaw%40)/100 + 0.05 // 0.05 .. 0.44
		scale := float64(scaleRaw%9) + 2
		base := exactSeries(500, r, 12)
		scaled := Series{Topic: "scaled", Years: base.Years}
		for _, c := range base.Counts {
			scaled.Counts = append(scaled.Counts, int(float64(c)*scale))
		}
		f1, err1 := FitGrowth(base, 2000, 2011)
		f2, err2 := FitGrowth(scaled, 2000, 2011)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(f1.Rate-f2.Rate) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
