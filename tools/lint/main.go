// Command lint is the repository's domain-specific multichecker: it runs
// the internal/analysis suite (pooledrelease, determinism,
// classexhaustive, strictdecode, obsregister) plus `go vet` over the
// module and exits non-zero on any finding, printing file:line:col
// diagnostics the way compilers do.
//
// Usage:
//
//	go run ./tools/lint ./...
//	go run ./tools/lint -vet=false ./internal/server
//	go run ./tools/lint -staticcheck-version
//
// The analyzers enforce the paper reproduction's cross-cutting
// invariants at compile time; see README.md "Static analysis" for the
// mapping from each analyzer to the invariant it guards.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker and returns the process exit code.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vet := fs.Bool("vet", true, "also run `go vet` over the same patterns")
	listDoc := fs.Bool("list", false, "print the analyzer suite and exit")
	staticcheckVersion := fs.Bool("staticcheck-version", false, "print the pinned staticcheck version and exit")
	github := fs.Bool("github", false, "also emit GitHub Actions ::error annotations for findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *staticcheckVersion {
		fmt.Fprintln(stdout, analysis.StaticcheckVersion)
		return 0
	}
	analyzers := analysis.All()
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	world, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *listDoc {
		// The suite plus the live //lint:allow suppression count per
		// analyzer, so waived invariants are auditable at a glance.
		counts := analysis.Suppressions(world.Module())
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %d suppression(s)  %s\n", a.Name, counts[a.Name], a.Doc)
		}
		return 0
	}
	diags, err := analysis.Run(world.Module(), analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
		if *github {
			// Workflow command: annotates the diff view at the finding.
			rel := d.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s (%s)\n",
				rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}

	exit := 0
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lint: %d finding(s)\n", len(diags))
		exit = 1
	}
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = root
		cmd.Stdout, cmd.Stderr = stdout, stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(stderr, "lint: go vet failed")
			exit = 1
		}
	}
	return exit
}

// moduleRoot locates the directory of the enclosing go.mod, so the
// linter works from any working directory inside the module.
func moduleRoot() (string, error) {
	var out, errb bytes.Buffer
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go env GOMOD: %v\n%s", err, errb.String())
	}
	gomod := strings.TrimSpace(out.String())
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lint: not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
