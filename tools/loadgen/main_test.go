package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/server"
)

// TestSmokeAgainstRealServer drives the actual serving stack end to end: a
// smoke sweep over every endpoint must succeed and produce a well-formed
// JSON document with one result row per endpoint.
func TestSmokeAgainstRealServer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second closed-loop run")
	}
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-smoke", "-d", "200ms"}, &out); err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, out.String())
	}
	// -smoke forces its own duration; the document is the last JSON object
	// in the output after the per-endpoint progress lines.
	idx := bytes.IndexByte(out.Bytes(), '{')
	if idx < 0 {
		t.Fatalf("no JSON document in output: %s", out.String())
	}
	var doc Doc
	if err := json.Unmarshal(out.Bytes()[idx:], &doc); err != nil {
		t.Fatalf("document does not parse: %v\n%s", err, out.String())
	}
	if len(doc.Results) != len(endpointOrder) {
		t.Fatalf("got %d result rows, want %d", len(doc.Results), len(endpointOrder))
	}
	for _, r := range doc.Results {
		if r.Failures != 0 {
			t.Errorf("%s: %d failures in smoke mode", r.Endpoint, r.Failures)
		}
		if r.Requests == 0 {
			t.Errorf("%s: no requests completed", r.Endpoint)
		}
		if r.Requests > r.Rejected && r.P50Ms <= 0 {
			t.Errorf("%s: missing latency percentiles: %+v", r.Endpoint, r)
		}
		// The real server exports stage histograms, so every measured row
		// must carry the attribution columns.
		if r.Requests > r.Rejected {
			if r.DominantStage == "" || len(r.Stages) == 0 {
				t.Errorf("%s: missing stage attribution: %+v", r.Endpoint, r)
				continue
			}
			for _, stage := range sequentialStages {
				if _, ok := r.Stages[stage]; !ok {
					t.Errorf("%s: stage %q missing from attribution %v", r.Endpoint, stage, r.Stages)
				}
			}
		}
	}
}

// TestStageDelta pins the snapshot diff arithmetic: totals and means are
// window-local, shares are fractions of the request histogram's sum, and
// the dominant stage is the largest sequential contributor.
func TestStageDelta(t *testing.T) {
	before := &stageSnapshot{
		stageSum: map[string]map[string]float64{"/v1/x": {"decode": 1, "exec": 2}},
		reqSum:   map[string]float64{"/v1/x": 4},
		reqCount: map[string]int64{"/v1/x": 10},
	}
	after := &stageSnapshot{
		stageSum: map[string]map[string]float64{"/v1/x": {"decode": 1.5, "exec": 5}},
		reqSum:   map[string]float64{"/v1/x": 8},
		reqCount: map[string]int64{"/v1/x": 30},
	}
	stats, dominant := stageDelta(before, after, "/v1/x")
	if dominant != "exec" {
		t.Fatalf("dominant = %q, want exec (stats %v)", dominant, stats)
	}
	ex := stats["exec"]
	if ex.TotalMs != 3000 || ex.MeanMs != 150 || ex.Share != 0.75 {
		t.Errorf("exec = %+v, want total 3000ms mean 150ms share 0.75", ex)
	}
	de := stats["decode"]
	if de.TotalMs != 500 || de.MeanMs != 25 || de.Share != 0.13 {
		t.Errorf("decode = %+v, want total 500ms mean 25ms share 0.13", de)
	}
	if st, dom := stageDelta(before, before, "/v1/x"); st != nil || dom != "" {
		t.Errorf("zero-request window must yield no attribution, got %v %q", st, dom)
	}
	if st, dom := stageDelta(before, after, "/v1/unknown"); st != nil || dom != "" {
		t.Errorf("unknown endpoint must yield no attribution, got %v %q", st, dom)
	}
}

// TestSmokeFailsOnServerErrors pins the CI gate: a backend answering 500
// must fail the smoke run.
func TestSmokeFailsOnServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-smoke", "-endpoints", "/v1/flexibility"}, &out); err == nil {
		t.Fatalf("smoke against a 500-ing server must fail\n%s", out.String())
	}
}

// TestTolerates429 pins the other half of the gate: backpressure rejections
// are an expected, non-fatal outcome.
func TestTolerates429(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-smoke", "-endpoints", "/v1/flexibility"}, &out); err != nil {
		t.Fatalf("429s must not fail the smoke: %v", err)
	}
	var doc Doc
	idx := bytes.IndexByte(out.Bytes(), '{')
	if err := json.Unmarshal(out.Bytes()[idx:], &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results[0].Rejected == 0 {
		t.Error("rejections not counted")
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
	if err := run([]string{"-endpoints", "/v1/nope"}, &out); err == nil {
		t.Error("unknown endpoint must error")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Error("positional args must error")
	}
	if err := run([]string{"-mode", "sideways"}, &out); err == nil {
		t.Error("unknown mode must error")
	}
	if err := run([]string{"-mode", "open", "-rate", "0"}, &out); err == nil {
		t.Error("non-positive open-loop rate must error")
	}
}

// TestRoundRobinURLs: with -urls listing two replicas, both must receive
// traffic and the emitted document must record the whole fleet.
func TestRoundRobinURLs(t *testing.T) {
	var hits [2]int64
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/flexibility" {
				atomic.AddInt64(&hits[i], 1)
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"results":[]}`)
		}))
	}
	a, b := mk(0), mk(1)
	defer a.Close()
	defer b.Close()

	var out bytes.Buffer
	err := run([]string{"-urls", a.URL + "," + b.URL, "-endpoints", "/v1/flexibility",
		"-c", "2", "-d", "300ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if hits[0] == 0 || hits[1] == 0 {
		t.Errorf("round-robin skipped a replica: hits = %v", hits)
	}
	var doc Doc
	idx := bytes.IndexByte(out.Bytes(), '{')
	if err := json.Unmarshal(out.Bytes()[idx:], &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.URLs) != 2 {
		t.Errorf("doc.URLs = %v, want both replicas", doc.URLs)
	}
	if doc.Mode != "closed" {
		t.Errorf("doc.Mode = %q, want closed", doc.Mode)
	}
}

// TestOpenLoopMode: the open-loop scheduler must issue close to rate*window
// arrivals even though each response is instant (a closed loop with the same
// worker count would issue far more), and the document must record the
// discipline and the rate so baselines are never cross-compared.
func TestOpenLoopMode(t *testing.T) {
	var hits int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/flexibility" {
			atomic.AddInt64(&hits, 1)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[]}`)
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-mode", "open", "-rate", "100",
		"-endpoints", "/v1/flexibility", "-d", "500ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	// 100/s over 500ms schedules 50 arrivals; allow generous slack for a
	// loaded CI machine's sleep jitter, but fail if the scheduler degraded
	// to closed-loop behaviour (instant responses would then yield
	// thousands of requests).
	got := atomic.LoadInt64(&hits)
	if got < 25 || got > 75 {
		t.Errorf("open loop issued %d arrivals, want ~50", got)
	}
	var doc Doc
	idx := bytes.IndexByte(out.Bytes(), '{')
	if err := json.Unmarshal(out.Bytes()[idx:], &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Mode != "open" || doc.RatePerSec != 100 {
		t.Errorf("doc mode/rate = %q/%g, want open/100", doc.Mode, doc.RatePerSec)
	}
}
