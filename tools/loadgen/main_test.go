package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

// TestSmokeAgainstRealServer drives the actual serving stack end to end: a
// smoke sweep over every endpoint must succeed and produce a well-formed
// JSON document with one result row per endpoint.
func TestSmokeAgainstRealServer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second closed-loop run")
	}
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-smoke", "-d", "200ms"}, &out); err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, out.String())
	}
	// -smoke forces its own duration; the document is the last JSON object
	// in the output after the per-endpoint progress lines.
	idx := bytes.IndexByte(out.Bytes(), '{')
	if idx < 0 {
		t.Fatalf("no JSON document in output: %s", out.String())
	}
	var doc Doc
	if err := json.Unmarshal(out.Bytes()[idx:], &doc); err != nil {
		t.Fatalf("document does not parse: %v\n%s", err, out.String())
	}
	if len(doc.Results) != len(endpointOrder) {
		t.Fatalf("got %d result rows, want %d", len(doc.Results), len(endpointOrder))
	}
	for _, r := range doc.Results {
		if r.Failures != 0 {
			t.Errorf("%s: %d failures in smoke mode", r.Endpoint, r.Failures)
		}
		if r.Requests == 0 {
			t.Errorf("%s: no requests completed", r.Endpoint)
		}
		if r.Requests > r.Rejected && r.P50Ms <= 0 {
			t.Errorf("%s: missing latency percentiles: %+v", r.Endpoint, r)
		}
	}
}

// TestSmokeFailsOnServerErrors pins the CI gate: a backend answering 500
// must fail the smoke run.
func TestSmokeFailsOnServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-smoke", "-endpoints", "/v1/flexibility"}, &out); err == nil {
		t.Fatalf("smoke against a 500-ing server must fail\n%s", out.String())
	}
}

// TestTolerates429 pins the other half of the gate: backpressure rejections
// are an expected, non-fatal outcome.
func TestTolerates429(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-smoke", "-endpoints", "/v1/flexibility"}, &out); err != nil {
		t.Fatalf("429s must not fail the smoke: %v", err)
	}
	var doc Doc
	idx := bytes.IndexByte(out.Bytes(), '{')
	if err := json.Unmarshal(out.Bytes()[idx:], &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results[0].Rejected == 0 {
		t.Error("rejections not counted")
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
	if err := run([]string{"-endpoints", "/v1/nope"}, &out); err == nil {
		t.Error("unknown endpoint must error")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Error("positional args must error")
	}
}
