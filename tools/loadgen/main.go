// Command loadgen is a load generator for the taxonomy serving layer
// (cmd/serve). It drives one replica or a whole fleet (-urls, round-robin)
// in either arrival discipline:
//
//   - closed loop (default): a fixed number of workers each issue one batch
//     request, wait for the response, and immediately issue the next —
//     offered load adapts to the server, latencies are honest round trips.
//   - open loop (-mode open -rate N): arrivals are scheduled on a fixed
//     N-per-second clock regardless of how the server is doing, and each
//     request's latency is measured from its *scheduled* arrival time. A
//     stalled server therefore shows up as growing tail latency instead of
//     silently reduced load — the coordinated-omission fix.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080               # single replica, closed
//	loadgen -urls http://a:8080,http://b:8080        # fleet, round-robin
//	loadgen -mode open -rate 50                      # open loop, 50 arrivals/s
//	loadgen -url http://127.0.0.1:8080 -smoke        # CI gate: short sweep of
//	                                                 # every endpoint; any
//	                                                 # status outside 2xx/429
//	                                                 # fails the run
//
// The JSON document (stdout or -out) is the serving baseline
// (BENCH_PR4.json, BENCH_PR6.json, BENCH_PR8.json): one result row per
// endpoint with requests, error counts, throughput, p50/p90/p99/max latency,
// and — when the servers export the repro_http_stage_seconds histograms —
// the per-stage latency attribution (decode, cache, queue, item, exec,
// encode) summed across replicas over exactly this endpoint's window.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// payloads maps each endpoint to a rotation of request bodies. Workers cycle
// through the variants, so the run exercises both the cache-hit path (repeat
// bodies) and the miss path (first sighting of each variant).
var payloads = map[string][]string{
	"/v1/classify": {
		`{"requests":[{"arch":{"name":"A","ips":"1","dps":"64","ip_ip":"none","ip_dp":"1-64","ip_im":"1-1","dp_dm":"64-1","dp_dp":"64x64"}},{"arch":{"name":"B","ips":"1","dps":"64","ip_ip":"none","ip_dp":"1-64","ip_im":"1-1","dp_dm":"64-1","dp_dp":"64x64"},"n":4}]}`,
		`{"requests":[{"arch":{"name":"C","ips":"1","dps":"64","ip_ip":"none","ip_dp":"1-64","ip_im":"1-1","dp_dm":"64-1","dp_dp":"64x64"},"n":16}]}`,
	},
	"/v1/flexibility": {
		`{"requests":[{"class":"IUP"},{"class":"IAP-II"},{"class":"IMP-II"},{"class":"IMP-XVI"}]}`,
		`{"requests":[{"class":"USP","compare_to":"IUP"},{"class":"DMP-IV","compare_to":"IMP-XVI"}]}`,
	},
	"/v1/estimate": {
		`{"requests":[{"class":"IUP","n":1},{"class":"IAP-II","n":64},{"class":"IMP-XVI","n":16}]}`,
		`{"requests":[{"arch":"MorphoSys"},{"class":"USP","n":64}]}`,
	},
	"/v1/simulate": {
		`{"requests":[{"class":"IUP","kernel":"vecadd","n":64},{"class":"IAP-II","kernel":"dot","n":64,"procs":4}]}`,
		`{"requests":[{"class":"IMP-II","kernel":"scan","n":64,"procs":4},{"class":"USP","kernel":"vecadd","n":16}]}`,
		`{"requests":[{"class":"IAP-II","kernel":"dot","n":128,"procs":8}]}`,
	},
	"/v1/conformance": {
		`{"requests":[{"n":16,"procs":4,"kernels":["vecadd"],"classes":["IUP","IAP"]}]}`,
	},
	"/v1/flexbench": {
		`{"requests":[{"n":16}]}`,
	},
	"/v1/survey": {
		`{"requests":[{}]}`,
		`{"requests":[{"run":true,"n":64}]}`,
	},
}

// endpointOrder fixes the sweep order (and the result row order).
var endpointOrder = []string{
	"/v1/classify",
	"/v1/flexibility",
	"/v1/estimate",
	"/v1/simulate",
	"/v1/conformance",
	"/v1/flexbench",
	"/v1/survey",
}

// StageStat is one stage's server-side attribution over the endpoint's
// measurement window, diffed from the repro_http_stage_seconds histograms.
type StageStat struct {
	// TotalMs is the stage's summed latency across the window.
	TotalMs float64 `json:"total_ms"`
	// MeanMs is TotalMs per handled request.
	MeanMs float64 `json:"mean_ms"`
	// Share is the stage's fraction of the summed request wall time. The
	// sequential stages (decode, cache, exec, encode) partition it; queue
	// and item subdivide exec per batch item, so their shares can exceed
	// exec's under parallel fan-out.
	Share float64 `json:"share"`
}

// EndpointResult is one endpoint's measured row.
type EndpointResult struct {
	Endpoint string `json:"endpoint"`
	// Requests counts completed round trips; Rejected the 429 subset.
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
	// Failures counts responses outside 2xx/429 plus transport errors.
	Failures int64 `json:"failures"`
	// RPS is completed requests per wall-clock second.
	RPS float64 `json:"rps"`
	// Latency percentiles over successful requests, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Stages is the server-side attribution; absent when the server does
	// not export stage histograms.
	Stages map[string]StageStat `json:"stages,omitempty"`
	// DominantStage names the sequential stage with the largest share.
	DominantStage string `json:"dominant_stage,omitempty"`
}

// Metric families scraped from /metrics?format=json for stage attribution.
const (
	stageMetricName   = "repro_http_stage_seconds"
	requestMetricName = "repro_http_request_seconds"
)

// sequentialStages are the stages that partition request wall time end to
// end; queue and item are per-batch-item subdivisions of exec.
var sequentialStages = []string{"decode", "cache", "exec", "encode"}

// metricRow is the subset of the server's JSON metrics exposition loadgen
// reads: histogram name, rendered label string, and running sum/count.
type metricRow struct {
	Name   string   `json:"name"`
	Labels string   `json:"labels"`
	Sum    *float64 `json:"sum"`
	Count  *int64   `json:"count"`
}

var (
	endpointLabelRe = regexp.MustCompile(`endpoint="([^"]*)"`)
	stageLabelRe    = regexp.MustCompile(`stage="([^"]*)"`)
)

// stageSnapshot is one scrape of the server-side latency histograms:
// per-endpoint stage sums plus the request histogram's sum and count.
type stageSnapshot struct {
	stageSum map[string]map[string]float64 // endpoint -> stage -> seconds
	reqSum   map[string]float64            // endpoint -> seconds
	reqCount map[string]int64              // endpoint -> observations
}

// scrapeStages fetches the JSON metrics exposition from every target and
// reduces it to one fleet-wide snapshot stage attribution diffs against:
// sums and counts add across replicas, so the shares stay meaningful when
// the load is spread round-robin.
func scrapeStages(client *http.Client, targets []string) (*stageSnapshot, error) {
	snap := &stageSnapshot{
		stageSum: map[string]map[string]float64{},
		reqSum:   map[string]float64{},
		reqCount: map[string]int64{},
	}
	for _, base := range targets {
		if err := scrapeInto(client, base, snap); err != nil {
			return nil, err
		}
	}
	return snap, nil
}

// scrapeInto adds one replica's histograms to the fleet snapshot.
func scrapeInto(client *http.Client, base string, snap *stageSnapshot) error {
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s/metrics?format=json: status %d", base, resp.StatusCode)
	}
	var rows []metricRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return fmt.Errorf("decoding %s/metrics?format=json: %w", base, err)
	}
	for _, row := range rows {
		epm := endpointLabelRe.FindStringSubmatch(row.Labels)
		if epm == nil || row.Sum == nil {
			continue
		}
		switch row.Name {
		case stageMetricName:
			stm := stageLabelRe.FindStringSubmatch(row.Labels)
			if stm == nil {
				continue
			}
			byStage := snap.stageSum[epm[1]]
			if byStage == nil {
				byStage = map[string]float64{}
				snap.stageSum[epm[1]] = byStage
			}
			byStage[stm[1]] += *row.Sum
		case requestMetricName:
			snap.reqSum[epm[1]] += *row.Sum
			if row.Count != nil {
				snap.reqCount[epm[1]] += *row.Count
			}
		}
	}
	return nil
}

// stageDelta attributes one endpoint's measurement window across stages by
// diffing two snapshots, and names the dominant sequential stage.
func stageDelta(before, after *stageSnapshot, ep string) (map[string]StageStat, string) {
	reqSec := after.reqSum[ep] - before.reqSum[ep]
	reqN := after.reqCount[ep] - before.reqCount[ep]
	if reqN <= 0 || after.stageSum[ep] == nil {
		return nil, ""
	}
	stats := map[string]StageStat{}
	for stage, sum := range after.stageSum[ep] {
		d := sum - before.stageSum[ep][stage]
		if d < 0 {
			d = 0 // server restarted mid-run; don't report nonsense
		}
		st := StageStat{
			TotalMs: round2(d * 1000),
			MeanMs:  round2(d * 1000 / float64(reqN)),
		}
		if reqSec > 0 {
			st.Share = round2(d / reqSec)
		}
		stats[stage] = st
	}
	dominant := ""
	for _, stage := range sequentialStages {
		st, ok := stats[stage]
		if !ok {
			continue
		}
		if dominant == "" || st.TotalMs > stats[dominant].TotalMs {
			dominant = stage
		}
	}
	return stats, dominant
}

// Doc is the emitted JSON document — the serving-baseline counterpart of
// tools/benchjson's format.
type Doc struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Bench      string   `json:"bench"`
	URL        string   `json:"url"`
	URLs       []string `json:"urls,omitempty"`
	// Mode records the arrival discipline ("closed" or "open") so a
	// baseline is never compared against a document measured under the
	// other discipline.
	Mode string `json:"mode"`
	// RatePerSec is the scheduled arrival rate per endpoint (open mode).
	RatePerSec  float64          `json:"rate_per_sec,omitempty"`
	Concurrency int              `json:"concurrency"`
	Duration    string           `json:"duration_per_endpoint"`
	Smoke       bool             `json:"smoke,omitempty"`
	Results     []EndpointResult `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// run sweeps every requested endpoint and writes the JSON document.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of the serve process")
	urls := fs.String("urls", "", "comma-separated replica base URLs; requests round-robin across them (overrides -url)")
	mode := fs.String("mode", "closed", "arrival discipline: closed (workers wait for responses) or open (fixed-rate schedule)")
	rate := fs.Float64("rate", 50, "open mode: scheduled arrivals per second per endpoint")
	concurrency := fs.Int("c", 8, "closed-loop workers per endpoint")
	duration := fs.Duration("d", 5*time.Second, "measurement window per endpoint")
	endpoints := fs.String("endpoints", "", "comma-separated endpoint subset (default: all)")
	out := fs.String("out", "", "write the JSON document to this file instead of stdout")
	smoke := fs.Bool("smoke", false, "CI smoke mode: 1s per endpoint, 2 workers, fail on any status outside 2xx/429")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *mode != "closed" && *mode != "open" {
		return fmt.Errorf("-mode must be closed or open, got %q", *mode)
	}
	if *mode == "open" && *rate <= 0 {
		return fmt.Errorf("-rate must be positive in open mode, got %g", *rate)
	}
	if *smoke {
		*concurrency = 2
		*duration = time.Second
	}
	targets := []string{*url}
	if *urls != "" {
		targets = strings.Split(*urls, ",")
	}

	sweep := endpointOrder
	if *endpoints != "" {
		sweep = strings.Split(*endpoints, ",")
		for _, ep := range sweep {
			if _, ok := payloads[ep]; !ok {
				return fmt.Errorf("unknown endpoint %q", ep)
			}
		}
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	doc := Doc{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Bench:       "serve-loadgen",
		URL:         targets[0],
		Mode:        *mode,
		Concurrency: *concurrency,
		Duration:    duration.String(),
		Smoke:       *smoke,
	}
	if len(targets) > 1 {
		doc.URLs = targets
	}
	if *mode == "open" {
		doc.RatePerSec = *rate
	}
	// Stage attribution brackets each endpoint's window with a metrics
	// scrape; a server without the stage histograms degrades to latency-only
	// rows rather than failing the run.
	prev, scrapeErr := scrapeStages(client, targets)
	if scrapeErr != nil {
		fmt.Fprintf(w, "# stage attribution disabled: %v\n", scrapeErr)
	}
	for _, ep := range sweep {
		res, err := hammer(client, targets, ep, *mode, *concurrency, *rate, *duration)
		if err != nil {
			return err
		}
		if prev != nil {
			if cur, err := scrapeStages(client, targets); err == nil {
				res.Stages, res.DominantStage = stageDelta(prev, cur, ep)
				prev = cur
			}
		}
		doc.Results = append(doc.Results, res)
		fmt.Fprintf(w, "# %-16s %6d req  %8.1f req/s  p50 %6.2fms  p99 %6.2fms  429s %d  failures %d",
			ep, res.Requests, res.RPS, res.P50Ms, res.P99Ms, res.Rejected, res.Failures)
		if res.DominantStage != "" {
			fmt.Fprintf(w, "  dominant %s (%.0f%%)", res.DominantStage, res.Stages[res.DominantStage].Share*100)
		}
		fmt.Fprintln(w)
		if *smoke && res.Failures > 0 {
			return fmt.Errorf("smoke: %s had %d responses outside 2xx/429", ep, res.Failures)
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = w.Write(enc)
	return err
}

// hammer drives one endpoint for the window — closed loop of `workers`, or
// open loop at `rate` arrivals/s — and reduces the per-request observations
// into one result row. Requests round-robin across the targets; body and
// target rotate on independent cursors so every payload variant reaches
// every replica.
func hammer(client *http.Client, targets []string, ep, mode string, workers int, rate float64, window time.Duration) (EndpointResult, error) {
	bodies := payloads[ep]
	var (
		nextBody   atomic.Int64 // payload rotation cursor across all workers
		nextTarget atomic.Int64 // replica round-robin cursor
		rejected   atomic.Int64
		failures   atomic.Int64
		mu         sync.Mutex
		latencies  []float64 // ms, successful requests only
		wg         sync.WaitGroup
	)
	// shoot issues one request and records its latency as measured from
	// `start` — the send time in closed mode, the *scheduled* arrival time
	// in open mode (so queueing behind a slow server is charged to the
	// request, not silently dropped from the sample).
	shoot := func(start time.Time) {
		body := bodies[nextBody.Add(1)%int64(len(bodies))]
		base := targets[nextTarget.Add(1)%int64(len(targets))]
		resp, err := client.Post(base+ep, "application/json", strings.NewReader(body))
		if err != nil {
			failures.Add(1)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected.Add(1)
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			ms := float64(time.Since(start).Microseconds()) / 1000
			mu.Lock()
			latencies = append(latencies, ms)
			mu.Unlock()
		default:
			failures.Add(1)
		}
	}
	deadline := time.Now().Add(window)
	switch mode {
	case "open":
		// Fixed-rate arrival schedule: tick k fires at start + k/rate no
		// matter how long earlier requests take. One goroutine per arrival;
		// in-flight count floats with server latency, which is the point.
		interval := time.Duration(float64(time.Second) / rate)
		begin := time.Now()
		for k := int64(0); ; k++ {
			sched := begin.Add(time.Duration(k) * interval)
			if !sched.Before(deadline) {
				break
			}
			time.Sleep(time.Until(sched))
			wg.Add(1)
			go func(sched time.Time) {
				defer wg.Done()
				shoot(sched)
			}(sched)
		}
	default: // closed
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					shoot(time.Now())
				}
			}()
		}
	}
	wg.Wait()

	res := EndpointResult{
		Endpoint: ep,
		Requests: int64(len(latencies)) + rejected.Load() + failures.Load(),
		Rejected: rejected.Load(),
		Failures: failures.Load(),
	}
	res.RPS = round2(float64(res.Requests) / window.Seconds())
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.P50Ms = round2(percentile(latencies, 0.50))
		res.P90Ms = round2(percentile(latencies, 0.90))
		res.P99Ms = round2(percentile(latencies, 0.99))
		res.MaxMs = round2(latencies[len(latencies)-1])
		res.MeanMs = round2(sum / float64(len(latencies)))
	}
	return res, nil
}

// percentile reads the p-quantile (0..1) from a sorted sample with
// nearest-rank interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// round2 keeps the JSON readable: two decimal places is plenty for ms.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
