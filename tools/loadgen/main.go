// Command loadgen is a closed-loop load generator for the taxonomy serving
// layer (cmd/serve): a fixed number of workers each issue one batch request,
// wait for the response, and immediately issue the next — so offered load
// adapts to the server instead of overrunning it, and the measured
// latencies are honest round-trip times.
//
// Two modes:
//
//	loadgen -url http://127.0.0.1:8080               # measure: per-endpoint
//	                                                 # throughput + latency
//	                                                 # percentiles -> JSON
//	loadgen -url http://127.0.0.1:8080 -smoke        # CI gate: short sweep of
//	                                                 # every endpoint; any
//	                                                 # status outside 2xx/429
//	                                                 # fails the run
//
// The JSON document (stdout or -out) is the serving baseline
// (BENCH_PR4.json, BENCH_PR6.json): one result row per endpoint with
// requests, error counts, throughput, p50/p90/p99/max latency, and — when
// the server exports the repro_http_stage_seconds histograms — the
// per-stage latency attribution (decode, cache, queue, item, exec, encode)
// measured server-side over exactly this endpoint's window.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// payloads maps each endpoint to a rotation of request bodies. Workers cycle
// through the variants, so the run exercises both the cache-hit path (repeat
// bodies) and the miss path (first sighting of each variant).
var payloads = map[string][]string{
	"/v1/classify": {
		`{"requests":[{"arch":{"name":"A","ips":"1","dps":"64","ip_ip":"none","ip_dp":"1-64","ip_im":"1-1","dp_dm":"64-1","dp_dp":"64x64"}},{"arch":{"name":"B","ips":"1","dps":"64","ip_ip":"none","ip_dp":"1-64","ip_im":"1-1","dp_dm":"64-1","dp_dp":"64x64"},"n":4}]}`,
		`{"requests":[{"arch":{"name":"C","ips":"1","dps":"64","ip_ip":"none","ip_dp":"1-64","ip_im":"1-1","dp_dm":"64-1","dp_dp":"64x64"},"n":16}]}`,
	},
	"/v1/flexibility": {
		`{"requests":[{"class":"IUP"},{"class":"IAP-II"},{"class":"IMP-II"},{"class":"IMP-XVI"}]}`,
		`{"requests":[{"class":"USP","compare_to":"IUP"},{"class":"DMP-IV","compare_to":"IMP-XVI"}]}`,
	},
	"/v1/estimate": {
		`{"requests":[{"class":"IUP","n":1},{"class":"IAP-II","n":64},{"class":"IMP-XVI","n":16}]}`,
		`{"requests":[{"arch":"MorphoSys"},{"class":"USP","n":64}]}`,
	},
	"/v1/simulate": {
		`{"requests":[{"class":"IUP","kernel":"vecadd","n":64},{"class":"IAP-II","kernel":"dot","n":64,"procs":4}]}`,
		`{"requests":[{"class":"IMP-II","kernel":"scan","n":64,"procs":4},{"class":"USP","kernel":"vecadd","n":16}]}`,
		`{"requests":[{"class":"IAP-II","kernel":"dot","n":128,"procs":8}]}`,
	},
	"/v1/conformance": {
		`{"requests":[{"n":16,"procs":4}]}`,
	},
	"/v1/survey": {
		`{"requests":[{}]}`,
		`{"requests":[{"run":true,"n":64}]}`,
	},
}

// endpointOrder fixes the sweep order (and the result row order).
var endpointOrder = []string{
	"/v1/classify",
	"/v1/flexibility",
	"/v1/estimate",
	"/v1/simulate",
	"/v1/conformance",
	"/v1/survey",
}

// StageStat is one stage's server-side attribution over the endpoint's
// measurement window, diffed from the repro_http_stage_seconds histograms.
type StageStat struct {
	// TotalMs is the stage's summed latency across the window.
	TotalMs float64 `json:"total_ms"`
	// MeanMs is TotalMs per handled request.
	MeanMs float64 `json:"mean_ms"`
	// Share is the stage's fraction of the summed request wall time. The
	// sequential stages (decode, cache, exec, encode) partition it; queue
	// and item subdivide exec per batch item, so their shares can exceed
	// exec's under parallel fan-out.
	Share float64 `json:"share"`
}

// EndpointResult is one endpoint's measured row.
type EndpointResult struct {
	Endpoint string `json:"endpoint"`
	// Requests counts completed round trips; Rejected the 429 subset.
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
	// Failures counts responses outside 2xx/429 plus transport errors.
	Failures int64 `json:"failures"`
	// RPS is completed requests per wall-clock second.
	RPS float64 `json:"rps"`
	// Latency percentiles over successful requests, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Stages is the server-side attribution; absent when the server does
	// not export stage histograms.
	Stages map[string]StageStat `json:"stages,omitempty"`
	// DominantStage names the sequential stage with the largest share.
	DominantStage string `json:"dominant_stage,omitempty"`
}

// Metric families scraped from /metrics?format=json for stage attribution.
const (
	stageMetricName   = "repro_http_stage_seconds"
	requestMetricName = "repro_http_request_seconds"
)

// sequentialStages are the stages that partition request wall time end to
// end; queue and item are per-batch-item subdivisions of exec.
var sequentialStages = []string{"decode", "cache", "exec", "encode"}

// metricRow is the subset of the server's JSON metrics exposition loadgen
// reads: histogram name, rendered label string, and running sum/count.
type metricRow struct {
	Name   string   `json:"name"`
	Labels string   `json:"labels"`
	Sum    *float64 `json:"sum"`
	Count  *int64   `json:"count"`
}

var (
	endpointLabelRe = regexp.MustCompile(`endpoint="([^"]*)"`)
	stageLabelRe    = regexp.MustCompile(`stage="([^"]*)"`)
)

// stageSnapshot is one scrape of the server-side latency histograms:
// per-endpoint stage sums plus the request histogram's sum and count.
type stageSnapshot struct {
	stageSum map[string]map[string]float64 // endpoint -> stage -> seconds
	reqSum   map[string]float64            // endpoint -> seconds
	reqCount map[string]int64              // endpoint -> observations
}

// scrapeStages fetches the JSON metrics exposition and reduces it to the
// snapshot stage attribution diffs against.
func scrapeStages(client *http.Client, base string) (*stageSnapshot, error) {
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics?format=json: status %d", resp.StatusCode)
	}
	var rows []metricRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, fmt.Errorf("decoding /metrics?format=json: %w", err)
	}
	snap := &stageSnapshot{
		stageSum: map[string]map[string]float64{},
		reqSum:   map[string]float64{},
		reqCount: map[string]int64{},
	}
	for _, row := range rows {
		epm := endpointLabelRe.FindStringSubmatch(row.Labels)
		if epm == nil || row.Sum == nil {
			continue
		}
		switch row.Name {
		case stageMetricName:
			stm := stageLabelRe.FindStringSubmatch(row.Labels)
			if stm == nil {
				continue
			}
			byStage := snap.stageSum[epm[1]]
			if byStage == nil {
				byStage = map[string]float64{}
				snap.stageSum[epm[1]] = byStage
			}
			byStage[stm[1]] += *row.Sum
		case requestMetricName:
			snap.reqSum[epm[1]] += *row.Sum
			if row.Count != nil {
				snap.reqCount[epm[1]] += *row.Count
			}
		}
	}
	return snap, nil
}

// stageDelta attributes one endpoint's measurement window across stages by
// diffing two snapshots, and names the dominant sequential stage.
func stageDelta(before, after *stageSnapshot, ep string) (map[string]StageStat, string) {
	reqSec := after.reqSum[ep] - before.reqSum[ep]
	reqN := after.reqCount[ep] - before.reqCount[ep]
	if reqN <= 0 || after.stageSum[ep] == nil {
		return nil, ""
	}
	stats := map[string]StageStat{}
	for stage, sum := range after.stageSum[ep] {
		d := sum - before.stageSum[ep][stage]
		if d < 0 {
			d = 0 // server restarted mid-run; don't report nonsense
		}
		st := StageStat{
			TotalMs: round2(d * 1000),
			MeanMs:  round2(d * 1000 / float64(reqN)),
		}
		if reqSec > 0 {
			st.Share = round2(d / reqSec)
		}
		stats[stage] = st
	}
	dominant := ""
	for _, stage := range sequentialStages {
		st, ok := stats[stage]
		if !ok {
			continue
		}
		if dominant == "" || st.TotalMs > stats[dominant].TotalMs {
			dominant = stage
		}
	}
	return stats, dominant
}

// Doc is the emitted JSON document — the serving-baseline counterpart of
// tools/benchjson's format.
type Doc struct {
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Bench       string           `json:"bench"`
	URL         string           `json:"url"`
	Concurrency int              `json:"concurrency"`
	Duration    string           `json:"duration_per_endpoint"`
	Smoke       bool             `json:"smoke,omitempty"`
	Results     []EndpointResult `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// run sweeps every requested endpoint and writes the JSON document.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of the serve process")
	concurrency := fs.Int("c", 8, "closed-loop workers per endpoint")
	duration := fs.Duration("d", 5*time.Second, "measurement window per endpoint")
	endpoints := fs.String("endpoints", "", "comma-separated endpoint subset (default: all)")
	out := fs.String("out", "", "write the JSON document to this file instead of stdout")
	smoke := fs.Bool("smoke", false, "CI smoke mode: 1s per endpoint, 2 workers, fail on any status outside 2xx/429")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *smoke {
		*concurrency = 2
		*duration = time.Second
	}

	sweep := endpointOrder
	if *endpoints != "" {
		sweep = strings.Split(*endpoints, ",")
		for _, ep := range sweep {
			if _, ok := payloads[ep]; !ok {
				return fmt.Errorf("unknown endpoint %q", ep)
			}
		}
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	doc := Doc{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Bench:       "serve-loadgen",
		URL:         *url,
		Concurrency: *concurrency,
		Duration:    duration.String(),
		Smoke:       *smoke,
	}
	// Stage attribution brackets each endpoint's window with a metrics
	// scrape; a server without the stage histograms degrades to latency-only
	// rows rather than failing the run.
	prev, scrapeErr := scrapeStages(client, *url)
	if scrapeErr != nil {
		fmt.Fprintf(w, "# stage attribution disabled: %v\n", scrapeErr)
	}
	for _, ep := range sweep {
		res, err := hammer(client, *url, ep, *concurrency, *duration)
		if err != nil {
			return err
		}
		if prev != nil {
			if cur, err := scrapeStages(client, *url); err == nil {
				res.Stages, res.DominantStage = stageDelta(prev, cur, ep)
				prev = cur
			}
		}
		doc.Results = append(doc.Results, res)
		fmt.Fprintf(w, "# %-16s %6d req  %8.1f req/s  p50 %6.2fms  p99 %6.2fms  429s %d  failures %d",
			ep, res.Requests, res.RPS, res.P50Ms, res.P99Ms, res.Rejected, res.Failures)
		if res.DominantStage != "" {
			fmt.Fprintf(w, "  dominant %s (%.0f%%)", res.DominantStage, res.Stages[res.DominantStage].Share*100)
		}
		fmt.Fprintln(w)
		if *smoke && res.Failures > 0 {
			return fmt.Errorf("smoke: %s had %d responses outside 2xx/429", ep, res.Failures)
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = w.Write(enc)
	return err
}

// hammer drives one endpoint with a closed loop of workers for the window
// and reduces the per-request observations into one result row.
func hammer(client *http.Client, base, ep string, workers int, window time.Duration) (EndpointResult, error) {
	bodies := payloads[ep]
	var (
		next      atomic.Int64 // rotation cursor across all workers
		rejected  atomic.Int64
		failures  atomic.Int64
		mu        sync.Mutex
		latencies []float64 // ms, successful requests only
		wg        sync.WaitGroup
	)
	deadline := time.Now().Add(window)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []float64
			for time.Now().Before(deadline) {
				body := bodies[next.Add(1)%int64(len(bodies))]
				start := time.Now()
				resp, err := client.Post(base+ep, "application/json", strings.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					local = append(local, float64(time.Since(start).Microseconds())/1000)
				default:
					failures.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()

	res := EndpointResult{
		Endpoint: ep,
		Requests: int64(len(latencies)) + rejected.Load() + failures.Load(),
		Rejected: rejected.Load(),
		Failures: failures.Load(),
	}
	res.RPS = round2(float64(res.Requests) / window.Seconds())
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.P50Ms = round2(percentile(latencies, 0.50))
		res.P90Ms = round2(percentile(latencies, 0.90))
		res.P99Ms = round2(percentile(latencies, 0.99))
		res.MaxMs = round2(latencies[len(latencies)-1])
		res.MeanMs = round2(sum / float64(len(latencies)))
	}
	return res, nil
}

// percentile reads the p-quantile (0..1) from a sorted sample with
// nearest-rank interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// round2 keeps the JSON readable: two decimal places is plenty for ms.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
