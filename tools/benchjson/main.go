// Command benchjson runs the repository's root benchmark suite and emits
// the results as a machine-readable JSON document — the bench-trajectory
// format checked in as BENCH_PR3.json and uploaded as a CI artifact, so the
// performance numbers travel with the commit that produced them.
//
// It shells out to `go test -run ^$ -bench <regex> -benchmem`, parses the
// standard benchmark output lines
//
//	BenchmarkName/sub-8   1234   5678 ns/op   90 B/op   1 allocs/op
//
// and records ns/op, B/op, allocs/op plus any custom metrics
// (guest-cycles, conflict-cycles, ...) the benchmarks report.
//
// Run from the repository root:
//
//	go run ./tools/benchjson                       # full suite -> stdout
//	go run ./tools/benchjson -out BENCH_PR3.json   # full suite -> file
//	go run ./tools/benchjson -short                # CI smoke: 1 iteration,
//	                                               # engine benchmarks only
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks and the
	// GOMAXPROCS suffix as printed (e.g. "BenchmarkSim_VecAdd/IUP-8").
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per iteration in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem is on.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any custom b.ReportMetric values keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// GoVersion, GOOS, GOARCH and GOMAXPROCS describe the machine the
	// numbers came from; a bench trajectory is only comparable within one
	// environment.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU is the host's logical core count, recorded separately from
	// GOMAXPROCS: the parallel-ablation speedups only compare across runs
	// whose physical parallelism matched, even when GOMAXPROCS was capped.
	NumCPU int `json:"num_cpu"`
	// CPU is the "cpu:" line go test prints, when present.
	CPU string `json:"cpu,omitempty"`
	// Bench and Benchtime echo the selection this run used.
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// shortBench restricts -short runs to the PR-3 engine ablations: the
// pre-decode microbench and the worker-pool batch benchmarks. They cover
// the perf-critical paths without the multi-minute full-suite cost.
const shortBench = "Step_RawVsDecoded|Conformance_Matrix|Conformance_Lockstep|SurveyZoo_Parallel"

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "write the JSON document to this file instead of stdout")
	bench := fs.String("bench", ".", "benchmark selection regex passed to go test -bench")
	benchtime := fs.String("benchtime", "", "passed to go test -benchtime (default: go test's default; -short uses 1x)")
	short := fs.Bool("short", false, "CI smoke mode: engine benchmarks only, one iteration each")
	pkg := fs.String("pkg", ".", "package to benchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sel, bt := *bench, *benchtime
	if *short {
		if sel == "." {
			sel = shortBench
		}
		if bt == "" {
			bt = "1x"
		}
	}

	cmdArgs := []string{"test", "-run", "^$", "-bench", sel, "-benchmem"}
	if bt != "" {
		cmdArgs = append(cmdArgs, "-benchtime", bt)
	}
	cmdArgs = append(cmdArgs, *pkg)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(cmdArgs, " "), err)
	}

	doc := Doc{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Bench:      sel,
		Benchtime:  bt,
	}
	if err := parse(raw, &doc); err != nil {
		return err
	}
	if len(doc.Results) == 0 {
		return fmt.Errorf("no benchmark lines matched %q", sel)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(doc.Results), *out)
	return nil
}

// parse extracts benchmark result lines from go test output. The format is
// stable: a name starting with "Benchmark", the iteration count, then
// value/unit pairs.
func parse(raw []byte, doc *Doc) error {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then at least one "value unit" pair.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("parsing %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				v := val
				r.BytesPerOp = &v
			case "allocs/op":
				v := val
				r.AllocsPerOp = &v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = val
			}
		}
		doc.Results = append(doc.Results, r)
	}
	return sc.Err()
}
