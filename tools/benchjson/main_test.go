package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStep_RawVsDecodedVsCompiled/raw         	  104268	     11447 ns/op	       0 B/op	       0 allocs/op
BenchmarkStep_RawVsDecodedVsCompiled/decoded     	  123058	      9744 ns/op	       0 B/op	       0 allocs/op
BenchmarkSim_VecAdd/IUP                	     418	   2863025 ns/op	      6418 guest-cycles
BenchmarkNoMem                         	 1000000	      1050 ns/op
PASS
ok  	repro	14.9s
`

func TestParse(t *testing.T) {
	var doc Doc
	if err := parse([]byte(sampleOutput), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Results) != 4 {
		t.Fatalf("%d results, want 4", len(doc.Results))
	}
	raw := doc.Results[0]
	if raw.Name != "BenchmarkStep_RawVsDecodedVsCompiled/raw" || raw.Iterations != 104268 || raw.NsPerOp != 11447 {
		t.Errorf("raw line parsed as %+v", raw)
	}
	if raw.BytesPerOp == nil || *raw.BytesPerOp != 0 || raw.AllocsPerOp == nil || *raw.AllocsPerOp != 0 {
		t.Errorf("raw line memory stats: %+v", raw)
	}
	vec := doc.Results[2]
	if vec.Metrics["guest-cycles"] != 6418 {
		t.Errorf("custom metric parsed as %+v", vec.Metrics)
	}
	if nomem := doc.Results[3]; nomem.BytesPerOp != nil || nomem.AllocsPerOp != nil {
		t.Errorf("line without -benchmem stats parsed as %+v", nomem)
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	var doc Doc
	err := parse([]byte("BenchmarkX 10 abc ns/op\n"), &doc)
	if err == nil || !strings.Contains(err.Error(), "bad value") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunEndToEnd drives the CLI against the real go toolchain on a tiny
// benchmark selection and checks the emitted file is a valid document.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go test")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-bench", "Step_RawVsDecodedVsCompiled", "-benchtime", "1x", "-pkg", "repro", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_version", "BenchmarkStep_RawVsDecodedVsCompiled/raw", "ns_per_op"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("document missing %q:\n%s", want, data)
		}
	}
	if err := run([]string{"-bench", "NoSuchBenchmarkAnywhere"}); err == nil {
		t.Error("empty selection accepted")
	}
}
