// Command genfuzzcorpus regenerates the checked-in fuzz seed corpora under
// internal/*/testdata/fuzz. The corpora make the fuzz targets' interesting
// inputs part of every plain `go test ./...` run; rerun this after changing
// a serialization format so the seeds stay valid.
//
// Run from the repository root:
//
//	go run ./tools/genfuzzcorpus
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"repro/internal/fabric"
	"repro/internal/flexbench"
	"repro/internal/isa"
)

// writeSeed writes one corpus entry in the `go test fuzz v1` encoding:
// one Go-syntax literal per fuzz argument.
func writeSeed(dir, name string, literals ...string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := "go test fuzz v1\n"
	for _, l := range literals {
		body += l + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", filepath.Join(dir, name))
}

func str(s string) string      { return fmt.Sprintf("string(%q)", s) }
func bytesLit(b []byte) string { return fmt.Sprintf("[]byte(%q)", b) }

func main() {
	// internal/isa: assembler sources covering every operand shape, plus
	// raw instruction words for the binary decoder.
	asmDir := filepath.Join("internal", "isa", "testdata", "fuzz", "FuzzAsmRoundTrip")
	writeSeed(asmDir, "alu", str("add r1, r2, r3\nsub r4, r5, r6\nmul r7, r8, r9\nhalt"))
	writeSeed(asmDir, "label_loop", str("loop: addi r1, r1, -1\nbne r1, r0, loop\nhalt"))
	writeSeed(asmDir, "memory", str("ld r3, [r4+8]\nst r3, [r4-8]\nld r5, [r6]\nhalt"))
	writeSeed(asmDir, "comm", str("lane r1\nsend r1, r2\nrecv r3, r2\nsync\nhalt"))
	writeSeed(asmDir, "immediates", str("ldi r1, 0x10\nmuli r2, r1, -4\naddi r3, r2, +7\njmp +0\nhalt"))
	writeSeed(asmDir, "comments", str("; header\nstart: nop ; pad\n  mov r1, r2\n\nbeq r1, r2, start\nhalt"))

	decDir := filepath.Join("internal", "isa", "testdata", "fuzz", "FuzzEncodeDecode")
	for name, ins := range map[string]isa.Instruction{
		"halt":   {Op: isa.OpHalt},
		"addi":   {Op: isa.OpAddi, Rd: 1, Ra: 2, Imm: -7},
		"store":  {Op: isa.OpSt, Rb: 13, Ra: 14, Imm: 62},
		"branch": {Op: isa.OpBlt, Ra: 3, Rb: 4, Imm: 5},
	} {
		writeSeed(decDir, name, fmt.Sprintf("uint64(%d)", isa.EncodeRaw(ins)))
	}
	writeSeed(decDir, "all_ones", fmt.Sprintf("uint64(%d)", ^uint64(0)))

	// internal/fabric: a valid bitstream, a checksum-corrupted copy, and
	// truncations that stop at each header boundary.
	cfg := []fabric.CellConfig{
		{Truth: 0x0002, UseFF: true, Inputs: [4]fabric.Source{{Kind: fabric.SourceCell, Index: 1}}},
		{Truth: 0x0001, Inputs: [4]fabric.Source{{Kind: fabric.SourceInput, Index: 0}, {Kind: fabric.SourceOne}}},
	}
	bs, err := fabric.MarshalBitstream(2, 1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fabDir := filepath.Join("internal", "fabric", "testdata", "fuzz", "FuzzBitstreamRoundTrip")
	writeSeed(fabDir, "valid", bytesLit(bs))
	bad := append([]byte(nil), bs...)
	bad[len(bad)-1] ^= 0xFF
	writeSeed(fabDir, "bad_crc", bytesLit(bad))
	writeSeed(fabDir, "magic_only", bytesLit(bs[:4]))
	writeSeed(fabDir, "header_only", bytesLit(bs[:12]))
	writeSeed(fabDir, "empty", bytesLit(nil))

	// internal/machine: encoded programs for the compiled-backend
	// differential fuzzer, seeding the block shapes the fusion rules and
	// terminators special-case.
	encode := func(prog isa.Program) string {
		buf := make([]byte, 0, len(prog)*8)
		for _, ins := range prog {
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], isa.EncodeRaw(ins))
			buf = append(buf, w[:]...)
		}
		return bytesLit(buf)
	}
	cmpDir := filepath.Join("internal", "machine", "testdata", "fuzz", "FuzzCompile")
	writeSeed(cmpDir, "bench_loop", encode(isa.Program{
		{Op: isa.OpLdi, Rd: 1, Imm: 0},
		{Op: isa.OpLdi, Rd: 2, Imm: 32},
		{Op: isa.OpBeq, Ra: 1, Rb: 2, Imm: 5},
		{Op: isa.OpLd, Rd: 3, Ra: 1, Imm: 0},
		{Op: isa.OpAddi, Rd: 3, Ra: 3, Imm: 1},
		{Op: isa.OpSt, Rb: 3, Ra: 1, Imm: 32},
		{Op: isa.OpAddi, Rd: 1, Ra: 1, Imm: 1},
		{Op: isa.OpJmp, Imm: -6},
		{Op: isa.OpHalt},
	}))
	writeSeed(cmpDir, "fused_triple", encode(isa.Program{
		{Op: isa.OpLd, Rd: 2, Ra: 15, Imm: 3},
		{Op: isa.OpAddi, Rd: 2, Ra: 2, Imm: 5},
		{Op: isa.OpSt, Rb: 2, Ra: 15, Imm: 4},
		{Op: isa.OpHalt},
	}))
	writeSeed(cmpDir, "branch_into_triple", encode(isa.Program{
		{Op: isa.OpBeq, Ra: 0, Rb: 1, Imm: 1},
		{Op: isa.OpLd, Rd: 2, Ra: 15, Imm: 3},
		{Op: isa.OpAddi, Rd: 2, Ra: 2, Imm: 5},
		{Op: isa.OpSt, Rb: 2, Ra: 15, Imm: 4},
		{Op: isa.OpHalt},
	}))
	writeSeed(cmpDir, "self_loop", encode(isa.Program{{Op: isa.OpJmp, Imm: -1}}))
	writeSeed(cmpDir, "induction_loop", encode(isa.Program{
		{Op: isa.OpLdi, Rd: 2, Imm: 10},
		{Op: isa.OpAddi, Rd: 1, Ra: 1, Imm: 1},
		{Op: isa.OpBlt, Ra: 1, Rb: 2, Imm: -2},
		{Op: isa.OpHalt},
	}))
	writeSeed(cmpDir, "div_by_zero", encode(isa.Program{
		{Op: isa.OpLdi, Rd: 1, Imm: 9},
		{Op: isa.OpDiv, Rd: 2, Ra: 1, Rb: 3},
		{Op: isa.OpHalt},
	}))
	writeSeed(cmpDir, "comm_faults", encode(isa.Program{
		{Op: isa.OpLane, Rd: 1},
		{Op: isa.OpRecv, Rd: 2, Ra: 1},
		{Op: isa.OpSync},
		{Op: isa.OpHalt},
	}))
	writeSeed(cmpDir, "max_imm", encode(isa.Program{
		{Op: isa.OpLdi, Rd: 1, Imm: math.MaxInt32},
		{Op: isa.OpAddi, Rd: 2, Ra: 1, Imm: math.MinInt32},
		{Op: isa.OpMuli, Rd: 3, Ra: 1, Imm: math.MinInt32},
		{Op: isa.OpHalt},
	}))

	// internal/flexbench: cycle-count vectors over the real kernel × class
	// universe for the scoring-rule fuzzer (two little-endian bytes per
	// universe cell): a varied spread, an all-tied grid where every scored
	// cell is best, sparse coverage, and the empty input.
	fbDir := filepath.Join("internal", "flexbench", "testdata", "fuzz", "FuzzScore")
	uni := flexbench.Universe()
	varied := make([]byte, 2*len(uni))
	tied := make([]byte, 2*len(uni))
	sparse := make([]byte, 2*len(uni))
	for i, c := range uni {
		if !c.Runnable {
			continue
		}
		binary.LittleEndian.PutUint16(varied[2*i:], uint16(i*37+1))
		binary.LittleEndian.PutUint16(tied[2*i:], 4096)
		if i%5 == 0 {
			binary.LittleEndian.PutUint16(sparse[2*i:], uint16(i+1))
		}
	}
	writeSeed(fbDir, "varied", bytesLit(varied))
	writeSeed(fbDir, "all_tied", bytesLit(tied))
	writeSeed(fbDir, "sparse_coverage", bytesLit(sparse))
	writeSeed(fbDir, "empty", bytesLit(nil))

	// internal/progcheck: raw-field programs (FuzzProgcheck's own packing:
	// byte 0 opcode, 1 rd, 2 ra, 3 rb, 4..7 immediate — a full byte per
	// register so invalid encodings are reachable) plus the target shape.
	packCheck := func(prog isa.Program) string {
		buf := make([]byte, 0, len(prog)*8)
		for _, ins := range prog {
			var w [8]byte
			w[0] = uint8(ins.Op)
			w[1], w[2], w[3] = ins.Rd, ins.Ra, ins.Rb
			binary.LittleEndian.PutUint32(w[4:], uint32(ins.Imm))
			buf = append(buf, w[:]...)
		}
		return bytesLit(buf)
	}
	pcDir := filepath.Join("internal", "progcheck", "testdata", "fuzz", "FuzzProgcheck")
	target := func(mem int, procs, flags uint8) []string {
		return []string{fmt.Sprintf("uint16(%d)", mem), fmt.Sprintf("uint8(%d)", procs), fmt.Sprintf("uint8(%d)", flags)}
	}
	seedCheck := func(name string, prog isa.Program, tgt []string) {
		writeSeed(pcDir, name, append([]string{packCheck(prog)}, tgt...)...)
	}
	seedCheck("counted_loop", isa.Program{
		{Op: isa.OpLdi, Rd: 1, Imm: 0},
		{Op: isa.OpLdi, Rd: 2, Imm: 32},
		{Op: isa.OpBeq, Ra: 1, Rb: 2, Imm: 3},
		{Op: isa.OpSt, Rb: 1, Ra: 1, Imm: 0},
		{Op: isa.OpAddi, Rd: 1, Ra: 1, Imm: 1},
		{Op: isa.OpJmp, Imm: -4},
		{Op: isa.OpHalt},
	}, target(64, 1, 0))
	seedCheck("comm_no_network", isa.Program{
		{Op: isa.OpLane, Rd: 1},
		{Op: isa.OpSend, Ra: 1, Rb: 1},
		{Op: isa.OpRecv, Rd: 2, Rb: 1},
		{Op: isa.OpSync},
		{Op: isa.OpHalt},
	}, target(16, 4, 0))
	seedCheck("comm_with_network", isa.Program{
		{Op: isa.OpLane, Rd: 1},
		{Op: isa.OpSend, Ra: 1, Rb: 1},
		{Op: isa.OpRecv, Rd: 2, Rb: 1},
		{Op: isa.OpSync},
		{Op: isa.OpHalt},
	}, target(16, 4, 3))
	seedCheck("oob_store", isa.Program{
		{Op: isa.OpLdi, Rd: 1, Imm: 99},
		{Op: isa.OpSt, Rb: 1, Ra: 1, Imm: 0},
		{Op: isa.OpHalt},
	}, target(8, 1, 0))
	seedCheck("self_loop", isa.Program{{Op: isa.OpJmp, Imm: -1}}, target(8, 1, 0))
	seedCheck("branch_out_of_range", isa.Program{
		{Op: isa.OpBeq, Ra: 0, Rb: 0, Imm: 100},
		{Op: isa.OpHalt},
	}, target(8, 1, 0))
	seedCheck("bad_register", isa.Program{
		{Op: isa.OpAdd, Rd: 200, Ra: 1, Rb: 1},
		{Op: isa.OpHalt},
	}, target(8, 1, 0))
	seedCheck("bad_opcode", isa.Program{
		{Op: isa.Op(0xEE)},
		{Op: isa.OpHalt},
	}, target(8, 1, 0))
	seedCheck("empty", nil, target(0, 0, 0))

	// internal/interconnect: port-count selectors with routes that collide
	// on internal links (same destination, shuffled sources) and loopback.
	omgDir := filepath.Join("internal", "interconnect", "testdata", "fuzz", "FuzzOmegaRouting")
	writeSeed(omgDir, "eight_ports_conflict", "uint8(2)", "uint16(0)", "uint16(7)", "uint16(3)", "uint16(7)")
	writeSeed(omgDir, "two_ports", "uint8(0)", "uint16(0)", "uint16(1)", "uint16(1)", "uint16(0)")
	writeSeed(omgDir, "sixteen_ports", "uint8(3)", "uint16(15)", "uint16(0)", "uint16(8)", "uint16(8)")
	writeSeed(omgDir, "loopback", "uint8(1)", "uint16(2)", "uint16(2)", "uint16(2)", "uint16(2)")
}
