// Package repro's root benchmark harness: one benchmark per paper artefact
// (Tables I-III, Figures 1, 2, 7, Eq 1/Eq 2) plus simulator ablations over
// the machine classes and the §III.B morph probes. Run with
//
//	go test -bench=. -benchmem
//
// The benchmarks double as the experiment index's regeneration targets:
// each validates its artefact's invariants while timing it, so a silent
// regression in the reproduction fails the bench rather than just slowing
// it down.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bibliometrics"
	"repro/internal/conformance"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/fabric"
	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/modelzoo"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

// BenchmarkTableI_Generate regenerates the 47-class extended taxonomy (T1).
func BenchmarkTableI_Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		classes := taxonomy.Table()
		if len(classes) != 47 {
			b.Fatalf("Table I has %d classes", len(classes))
		}
	}
}

// BenchmarkTableII_Flexibility scores every named class (T2).
func BenchmarkTableII_Flexibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := taxonomy.FlexibilityTable()
		if len(rows) != 43 {
			b.Fatalf("Table II has %d rows", len(rows))
		}
		if rows[len(rows)-1].Score != 8 {
			b.Fatalf("USP score %d", rows[len(rows)-1].Score)
		}
	}
}

// BenchmarkTableIII_ClassifySurvey re-derives the class of all 25 surveyed
// architectures from their printed connectivity cells (T3).
func BenchmarkTableIII_ClassifySurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := registry.DeriveAll()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.NameMatches {
				b.Fatalf("%s misclassified as %s", r.Entry.Arch.Name, r.Class)
			}
		}
	}
}

// BenchmarkFig1_Trends generates the synthetic corpus and runs the
// count-by-topic-and-year query (F1).
func BenchmarkFig1_Trends(b *testing.B) {
	cfg := bibliometrics.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		corpus, err := bibliometrics.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series := bibliometrics.Trends(corpus)
		if len(series) != len(cfg.Topics) {
			b.Fatalf("%d series", len(series))
		}
	}
}

// BenchmarkFig2_Hierarchy renders the naming-hierarchy tree (F2).
func BenchmarkFig2_Hierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := report.Fig2Tree(); len(out) == 0 {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkFig7_FlexibilityChart renders the survey comparison chart (F7).
func BenchmarkFig7_FlexibilityChart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := report.Fig7Chart(48)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty chart")
		}
	}
}

// BenchmarkEq1_Area evaluates the area equation across all classes (E1).
func BenchmarkEq1_Area(b *testing.B) {
	model, err := cost.NewModel(cost.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rows, err := model.SweepClasses(16)
		if err != nil {
			b.Fatal(err)
		}
		if rows[len(rows)-1].Estimate.Area <= rows[0].Estimate.Area {
			b.Fatal("USP not the largest")
		}
	}
}

// BenchmarkEq2_ConfigBits evaluates the configuration-bit equation and its
// headline ordering: USP >> everything coarse-grained (E2).
func BenchmarkEq2_ConfigBits(b *testing.B) {
	model, err := cost.NewModel(cost.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	usp, err := taxonomy.LookupString("USP")
	if err != nil {
		b.Fatal(err)
	}
	iup, err := taxonomy.LookupString("IUP")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ratio, err := model.OverheadRatio(usp, iup, 16)
		if err != nil {
			b.Fatal(err)
		}
		if ratio < 100 {
			b.Fatalf("USP/IUP overhead ratio %g", ratio)
		}
	}
}

// BenchmarkMorphProbes runs the §III.B executable flexibility claims (P1).
func BenchmarkMorphProbes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		probes, err := workload.RunProbes()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range probes {
			if !p.Holds {
				b.Fatalf("claim failed: %s", p.Claim)
			}
		}
	}
}

// benchVectors builds deterministic operand vectors.
func benchVectors(n int) (a, b []isa.Word) {
	a = make([]isa.Word, n)
	b = make([]isa.Word, n)
	for i := range a {
		a[i] = isa.Word(i%97 + 1)
		b[i] = isa.Word(i%89 + 2)
	}
	return a, b
}

// BenchmarkSim_VecAdd ablates one kernel across the machine classes of
// figures 3-6: the same vector add on IUP, IAP-I/IV, IMP-I/III, DMP-II/IV
// and the USP fabric.
func BenchmarkSim_VecAdd(b *testing.B) {
	const n = 256
	a, v := benchVectors(n)
	cases := []struct {
		name string
		run  func() (workload.Result, error)
	}{
		{"IUP", func() (workload.Result, error) { return workload.VecAddUni(a, v) }},
		{"IAP-I/8", func() (workload.Result, error) { return workload.VecAddSIMD(1, 8, a, v) }},
		{"IAP-IV/8", func() (workload.Result, error) { return workload.VecAddSIMD(4, 8, a, v) }},
		{"IMP-I/8", func() (workload.Result, error) { return workload.VecAddMIMD(1, 8, a, v) }},
		{"IMP-III/8", func() (workload.Result, error) { return workload.VecAddMIMD(3, 8, a, v) }},
		{"DMP-II/8", func() (workload.Result, error) { return workload.VecAddDataflow(2, 8, a, v) }},
		{"DMP-IV/8", func() (workload.Result, error) { return workload.VecAddDataflow(4, 8, a, v) }},
		{"USP", func() (workload.Result, error) { return workload.VecAddFabric(16, a, v) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := tc.run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles")
		})
	}
}

// BenchmarkSim_Dot ablates the communication-heavy kernel across the
// classes that have a DP-DP switch.
func BenchmarkSim_Dot(b *testing.B) {
	const n = 256
	a, v := benchVectors(n)
	cases := []struct {
		name string
		run  func() (workload.Result, error)
	}{
		{"IUP", func() (workload.Result, error) { return workload.DotUni(a, v) }},
		{"IAP-II/8", func() (workload.Result, error) { return workload.DotSIMD(2, 8, a, v) }},
		{"IMP-II/8", func() (workload.Result, error) { return workload.DotMIMD(2, 8, a, v) }},
		{"IMP-IV/8", func() (workload.Result, error) { return workload.DotMIMD(4, 8, a, v) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := tc.run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles")
		})
	}
}

// BenchmarkSim_Stencil runs the halo-exchange stencil on the two classes
// that can express it: lockstep IAP-II and SPMD IMP-II.
func BenchmarkSim_Stencil(b *testing.B) {
	a, _ := benchVectors(256)
	cases := []struct {
		name string
		run  func() (workload.Result, error)
	}{
		{"IAP-II/8", func() (workload.Result, error) { return workload.Stencil3SIMD(2, 8, a) }},
		{"IMP-II/8", func() (workload.Result, error) { return workload.Stencil3MIMD(2, 8, a) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := tc.run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles")
		})
	}
}

// BenchmarkSim_Scan runs the coordinator/worker prefix sum — the kernel
// only per-processor control flow can express (no IAP entry by design).
func BenchmarkSim_Scan(b *testing.B) {
	a, _ := benchVectors(256)
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := workload.ScanMIMD(2, 8, a)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles), "guest-cycles")
}

// BenchmarkSim_MatMul ablates the two matmul organisations: replicated B
// (IMP-I, duplicated storage, zero conflicts) vs shared B through the
// memory crossbar (IMP-III, contention).
func BenchmarkSim_MatMul(b *testing.B) {
	const rows, k, n = 16, 12, 10
	a, v := benchVectors(rows * k)
	_ = v
	bm := make([]isa.Word, k*n)
	for i := range bm {
		bm[i] = isa.Word(i%7 + 1)
	}
	cases := []struct {
		name string
		run  func() (workload.Result, error)
	}{
		{"replicated-B/IMP-I", func() (workload.Result, error) {
			return workload.MatMulMIMDReplicated(1, 4, a, bm, rows, k, n)
		}},
		{"shared-B/IMP-III", func() (workload.Result, error) {
			return workload.MatMulMIMDShared(3, 4, a, bm, rows, k, n)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var cycles, conflicts int64
			for i := 0; i < b.N; i++ {
				res, err := tc.run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Stats.Cycles
				conflicts = res.Stats.NetConflictCycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles")
			b.ReportMetric(float64(conflicts), "conflict-cycles")
		})
	}
}

// BenchmarkSim_LaneScaling sweeps lane counts on IAP-I: the speedup curve
// behind the flexibility argument (more DPs are what an IUP cannot morph
// into).
func BenchmarkSim_LaneScaling(b *testing.B) {
	const n = 512
	a, v := benchVectors(n)
	for _, lanes := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := workload.VecAddSIMD(1, lanes, a, v)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles")
		})
	}
}

// BenchmarkSurveyZoo runs the canonical kernel on every Table III machine:
// the executable form of the whole survey.
func BenchmarkSurveyZoo(b *testing.B) {
	entries := registry.Survey().Architectures
	for i := 0; i < b.N; i++ {
		results, err := modelzoo.RunSurvey(entries, 128)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 25 {
			b.Fatalf("%d results", len(results))
		}
	}
}

// BenchmarkNet_CrossbarVsOmega ablates the switch implementations under
// random permutation traffic: the crossbar never blocks internally, the
// omega network pays conflict cycles for its O(N log N) cost.
func BenchmarkNet_CrossbarVsOmega(b *testing.B) {
	const ports = 64
	const rounds = 32
	run := func(b *testing.B, net interconnect.Network) {
		var conflicts int64
		for i := 0; i < b.N; i++ {
			net.Reset()
			now := int64(0)
			for r := 0; r < rounds; r++ {
				for p := 0; p < ports; p++ {
					// Bit-reversal permutation: conflict-free on a true
					// crossbar, heavily blocking on an omega network.
					dst := 0
					for bit := 0; bit < 6; bit++ { // 64 ports = 6 bits
						dst |= (p >> uint(bit) & 1) << uint(5-bit)
					}
					if _, err := net.Transfer(now, p, dst); err != nil {
						b.Fatal(err)
					}
				}
				now += 2
			}
			conflicts = net.Stats().ConflictCycles
		}
		b.ReportMetric(float64(conflicts), "conflict-cycles")
	}
	b.Run("crossbar", func(b *testing.B) {
		net, err := interconnect.NewCrossbar(ports)
		if err != nil {
			b.Fatal(err)
		}
		run(b, net)
	})
	b.Run("omega", func(b *testing.B) {
		net, err := interconnect.NewOmega(ports)
		if err != nil {
			b.Fatal(err)
		}
		run(b, net)
	})
	b.Run("bus", func(b *testing.B) {
		net, err := interconnect.NewBus(ports)
		if err != nil {
			b.Fatal(err)
		}
		run(b, net)
	})
}

// BenchmarkDataflow_Mapping ablates node placement: greedy locality vs
// round-robin on a chain-structured graph (the design choice REDEFINE's
// HyperOp former makes).
func BenchmarkDataflow_Mapping(b *testing.B) {
	build := func() *dataflow.Graph {
		g := dataflow.NewGraph()
		for c := 0; c < 8; c++ {
			cur := g.Const(int64(c))
			inc := g.Const(1)
			for d := 0; d < 32; d++ {
				cur = g.Binary(dataflow.OpAdd, cur, inc)
			}
			g.MarkOutput(cur)
		}
		return g
	}
	cfg, err := dataflow.ForSubtype(2, 8, 64)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		mapping func(g *dataflow.Graph) ([]int, error)
	}{
		{"roundrobin", func(g *dataflow.Graph) ([]int, error) {
			return dataflow.RoundRobinMapping(g.Nodes(), 8), nil
		}},
		{"greedy", func(g *dataflow.Graph) ([]int, error) {
			return dataflow.GreedyLocalityMapping(g, 8)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				g := build()
				mapping, err := tc.mapping(g)
				if err != nil {
					b.Fatal(err)
				}
				m, err := dataflow.New(cfg, g, mapping)
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles")
		})
	}
}

// BenchmarkFabric_MicroMachine clocks the stored-program machine overlay:
// the USP in its instruction-flow role.
func BenchmarkFabric_MicroMachine(b *testing.B) {
	program := [fabric.MicroProgramLen]fabric.MicroInstr{
		{Op: fabric.MicroLdi, Imm: 1},
		{Op: fabric.MicroAdd, Imm: 2},
		{Op: fabric.MicroXor, Imm: 7},
		{Op: fabric.MicroAdd, Imm: 3},
		{Op: fabric.MicroNop}, {Op: fabric.MicroNop}, {Op: fabric.MicroNop}, {Op: fabric.MicroNop},
	}
	f, err := fabric.New(fabric.MicroMachineCells, 0)
	if err != nil {
		b.Fatal(err)
	}
	mm, err := fabric.BuildMicroMachine(f, program)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Configure(mm.Bitstream); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Step(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEq2_ReconfigBreakEven evaluates the reconfiguration-time
// extension: how many kernel runs amortize a USP bitstream to 1%.
func BenchmarkEq2_ReconfigBreakEven(b *testing.B) {
	model, err := cost.NewModel(cost.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	usp, err := taxonomy.LookupString("USP")
	if err != nil {
		b.Fatal(err)
	}
	est, err := model.ForClass(usp, 16)
	if err != nil {
		b.Fatal(err)
	}
	var runs int64
	for i := 0; i < b.N; i++ {
		rc, err := cost.ReconfigCycles(est.ConfigBits, 32)
		if err != nil {
			b.Fatal(err)
		}
		runs, err = cost.BreakEvenRuns(rc, 1000, 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runs), "break-even-runs")
}

// BenchmarkStep_RawVsDecodedVsCompiled is the backend ablation: the same
// guest loop executed instruction by instruction through the raw Step
// interpreter (re-decoding operands every cycle), through StepDecoded over
// the program lowered once by isa.Predecode, and through machine.Compile's
// threaded-closure chain with basic-block fusion and batched cycle
// accounting. The raw-to-decoded delta is what pre-decode saves per retired
// instruction; the decoded-to-compiled delta is what dispatch elimination
// and superinstruction fusion save on top.
func BenchmarkStep_RawVsDecodedVsCompiled(b *testing.B) {
	prog, err := isa.Assemble(`
        ldi  r1, 0
        ldi  r2, 64
loop:   beq  r1, r2, done
        ld   r3, [r1+0]
        addi r3, r3, 5
        st   r3, [r1+0]
        addi r1, r1, 1
        jmp  loop
done:   halt
`)
	if err != nil {
		b.Fatal(err)
	}
	dec := isa.Predecode(prog)
	mem := make(machine.Memory, 128)
	env := machine.Env{Load: mem.Load, Store: mem.Store}
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var regs machine.Regs
			pc := 0
			for pc < len(prog) {
				out, err := machine.Step(&regs, pc, prog[pc], env)
				if err != nil {
					b.Fatal(err)
				}
				if out.Halted {
					break
				}
				pc = out.NextPC
			}
		}
	})
	b.Run("decoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var regs machine.Regs
			pc := 0
			for pc < len(dec) {
				out, err := machine.StepDecoded(&regs, pc, &dec[pc], &env)
				if err != nil {
					b.Fatal(err)
				}
				if out.Halted {
					break
				}
				pc = out.NextPC
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		comp := machine.Compile(dec, machine.CompileOptions{})
		for i := 0; i < b.N; i++ {
			cpu := machine.CPU{Mem: mem}
			if _, err := comp.Run(&cpu, machine.DefaultMaxCycles); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConformance_Matrix is the serial-vs-parallel ablation on the
// real batch workload: the full 112-cell kernel x class matrix through the
// internal/exec worker pool at increasing worker counts. workers=1 is the
// serial baseline (the engine runs the jobs inline); the speedup at higher
// counts is bounded by GOMAXPROCS on the host.
func BenchmarkConformance_Matrix(b *testing.B) {
	p := conformance.Params{N: 16, Procs: 4}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, allPass := conformance.RunMatrixParallel(ctx, p, workers)
				if !allPass {
					b.Fatalf("matrix failed: %+v", results)
				}
			}
		})
	}
}

// BenchmarkConformance_Lockstep is the same ablation on the randomized
// lockstep differ: each seed assembles a random program and runs it on
// three machine organisations, so the per-job grain is coarser than a
// matrix cell.
func BenchmarkConformance_Lockstep(b *testing.B) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, pass := conformance.LockstepSweepParallel(ctx, 1, 8, workers)
				if !pass {
					b.Fatalf("sweep failed: %+v", results)
				}
			}
		})
	}
}

// BenchmarkSurveyZoo_Parallel fans the 25 Table III machines across the
// worker pool — the model zoo as a batch job.
func BenchmarkSurveyZoo_Parallel(b *testing.B) {
	entries := registry.Survey().Architectures
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := modelzoo.RunSurveyParallel(ctx, entries, 128, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 25 {
					b.Fatalf("%d results", len(results))
				}
			}
		})
	}
}

// BenchmarkEq1_ScalingInN sweeps the instantiation size for one class: the
// cost model's n-scaling, the ablation DESIGN.md calls out for Eq 1.
func BenchmarkEq1_ScalingInN(b *testing.B) {
	model, err := cost.NewModel(cost.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	impXVI, err := taxonomy.LookupString("IMP-XVI")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var area float64
			for i := 0; i < b.N; i++ {
				est, err := model.ForClass(impXVI, n)
				if err != nil {
					b.Fatal(err)
				}
				area = est.Area
			}
			b.ReportMetric(area, "GE")
		})
	}
}
