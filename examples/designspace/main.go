// Designspace walks the paper's §V use-case: "a designer can decide which
// computer class offers the required flexibility with minimum configuration
// overhead for [a] set of target applications."
//
// The target set here needs (a) data-parallel kernels that an array
// processor handles and (b) task-parallel phases that need independent
// programs — so the minimum class must cover both IAP-II and IMP-II. The
// example finds that class, prices the candidates with Eq 1/Eq 2, and then
// *runs* both kernels on the chosen class's simulator to show the choice is
// sufficient.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

func main() {
	iap2, err := core.LookupClass("IAP-II")
	if err != nil {
		log.Fatal(err)
	}
	imp2, err := core.LookupClass("IMP-II")
	if err != nil {
		log.Fatal(err)
	}
	required := []core.Class{iap2, imp2}

	const n = 16 // processors in every candidate instantiation
	best, bestEst, err := core.MinimalClassFor(taxonomy.InstructionFlow, required, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target applications need: %s and %s\n", iap2, imp2)
	fmt.Printf("minimum covering class:   %s (flexibility %d)\n", best, core.Flexibility(best))
	fmt.Printf("estimated cost at n=%d:   %.0f GE, %d config bits\n\n", n, bestEst.Area, bestEst.ConfigBits)

	// Price the alternatives the designer would have considered.
	fmt.Println("candidate comparison (Eq 1 / Eq 2):")
	for _, name := range []string{"IAP-II", "IMP-I", "IMP-II", "IMP-XVI", "ISP-II", "USP"} {
		cand, err := core.LookupClass(name)
		if err != nil {
			log.Fatal(err)
		}
		est, err := core.EstimateClass(name, n)
		if err != nil {
			log.Fatal(err)
		}
		covers := core.CanMorphInto(cand, iap2) && core.CanMorphInto(cand, imp2)
		fmt.Printf("  %-8s flex %d  area %9.0f GE  config %7d bits  covers both: %v\n",
			name, core.Flexibility(cand), est.Area, est.ConfigBits, covers)
	}

	// Prove sufficiency by running both workload shapes on the chosen
	// class's simulator (an IMP sub-type).
	if best.Name.Proc != taxonomy.MultiProcessor {
		log.Fatalf("expected a multi-processor cover, got %s", best)
	}
	a := seq(128, 3)
	b := seq(128, 11)
	dataParallel, err := workload.VecAddMIMD(best.Name.Sub, 8, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSPMD vector add on %s: %d cycles for %d elements\n",
		best, dataParallel.Stats.Cycles, len(a))
	taskParallel, err := workload.DotMIMD(best.Name.Sub, 8, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("message-passing dot product on %s: %d cycles, %d messages\n",
		best, taskParallel.Stats.Cycles, taskParallel.Stats.Messages)
}

func seq(n int, start isa.Word) []isa.Word {
	v := make([]isa.Word, n)
	for i := range v {
		v[i] = start + isa.Word(i)
	}
	return v
}
