// Surveyrun executes the paper's entire Table III survey: every one of the
// 25 architectures is instantiated as a simulator of its taxonomy class
// (via internal/modelzoo) and runs the same vector-add kernel, so the
// survey's class labels become observable performance differences — the
// array processors finish in lockstep time, the uni-processors serialize,
// the data-flow machines fire by token availability.
package main

import (
	"fmt"
	"log"

	"repro/internal/modelzoo"
	"repro/internal/registry"
	"repro/internal/report"
)

func main() {
	const elements = 960
	tbl := report.Table{Headers: []string{
		"Architecture", "Class", "Procs", "Cycles", "Instr", "IPC", "Messages", "Conflicts",
	}}
	results, err := modelzoo.RunSurvey(registry.Survey().Architectures, elements)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		tbl.AddRow(
			r.Instance.Name,
			r.Instance.Class.String(),
			fmt.Sprint(r.Instance.Processors),
			fmt.Sprint(r.Stats.Cycles),
			fmt.Sprint(r.Stats.Instructions),
			fmt.Sprintf("%.2f", r.Stats.IPC()),
			fmt.Sprint(r.Stats.Messages),
			fmt.Sprint(r.Stats.NetConflictCycles),
		)
	}
	fmt.Printf("Table III survey, executed: vector add over ~%d elements\n\n", elements)
	fmt.Print(tbl.Text())
	fmt.Println("\nNote: each machine rounds the problem to a multiple of its width;")
	fmt.Println("cycles are comparable within a class family, shapes across families.")
}
