// Drra rebuilds the authors' own architecture — DRRA, the Dynamically
// Reconfigurable Resource Array of Table III row 23 (Shami & Hemani,
// SBAC-PAD 2010) — from its survey description and exercises the two
// properties the paper highlights about it:
//
//  1. the ISP-IV classification (distributed control with an IP-IP switch,
//     windowed nx14 connectivity), derived here from the printed cells, and
//  2. the 3-hop window: control groups may only span cells within the
//     window, so the achievable compositions are hardware-constrained —
//     shown by composing a legal 3-hop group and attempting an illegal
//     5-hop one.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/registry"
	"repro/internal/spatial"
	"repro/internal/spec"
)

func main() {
	entry, ok := registry.Find("DRRA")
	if !ok {
		log.Fatal("DRRA missing from the Table III registry")
	}
	class, flex, err := core.ClassifyWithFlexibility(entry.Arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DRRA cells: IP-IP=%s DP-DM=%s DP-DP=%s -> class %s, flexibility %d\n",
		entry.Arch.IPIP, entry.Arch.DPDM, entry.Arch.DPDP, class, flex)

	// Instantiate the template at 8 cells and price it.
	inst, err := spec.Instantiate(entry.Arch, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.EstimateArchitecture(inst, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: Eq 1 area %.0f GE, Eq 2 configuration %d bits\n\n", inst.Name, est.Area, est.ConfigBits)

	// Build the fabric: 8 cells, ISP-IV semantics, 3-hop IP-IP window.
	m, err := spatial.New(spatial.Config{Cores: 8, BankWords: 32, Sub: 4, Window: 3})
	if err != nil {
		log.Fatal(err)
	}

	// A DSP-style composed region: cells 2..5 under leader 3 run a MAC
	// kernel in lockstep (every cell's bank holds coefficients at 0..3 and
	// samples at 4..7; the composed IP sequences the same MAC on all four
	// data paths). Global addressing (sub IV): each cell offsets by its
	// bank base.
	mac := isa.MustAssemble(`
        lane r9
        muli r9, r9, 32     ; my bank base
        ldi  r1, 0          ; i
        ldi  r2, 4
        ldi  r8, 0          ; acc
loop:   beq  r1, r2, done
        add  r4, r9, r1
        ld   r3, [r4+0]     ; coeff[i]
        ld   r5, [r4+4]     ; sample[i]
        mul  r6, r3, r5
        add  r8, r8, r6
        addi r1, r1, 1
        jmp  loop
done:   addi r4, r9, 8
        st   r8, [r4+0]     ; result at word 8
        halt
`)
	if err := m.Compose(3, []int{2, 4, 5}, mac); err != nil {
		log.Fatal(err)
	}
	// The remaining cells run independent control programs.
	for _, cell := range []int{0, 1, 6, 7} {
		prog := isa.MustAssemble(fmt.Sprintf(`
        lane r1
        muli r9, r1, 32
        ldi  r2, %d
        addi r4, r9, 8
        st   r2, [r4+0]
        halt
`, 1000+cell))
		if err := m.Compose(cell, nil, prog); err != nil {
			log.Fatal(err)
		}
	}

	// Loading: coefficients {1,2,3,4}, samples per cell.
	for cell := 2; cell <= 5; cell++ {
		if err := m.LoadBank(cell, 0, []isa.Word{1, 2, 3, 4}); err != nil {
			log.Fatal(err)
		}
		samples := []isa.Word{isa.Word(cell), isa.Word(cell + 1), isa.Word(cell + 2), isa.Word(cell + 3)}
		if err := m.LoadBank(cell, 4, samples); err != nil {
			log.Fatal(err)
		}
	}
	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("composed MAC region (cells 2-5 under leader 3):")
	for cell := 2; cell <= 5; cell++ {
		out, err := m.ReadBank(cell, 8, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cell %d MAC result: %d\n", cell, out[0])
	}
	fmt.Printf("independent cells wrote their ids; total %d cycles, %d IP-IP control words\n\n",
		stats.Cycles, stats.Messages)

	// The window constraint: leader 0 cannot enslave cell 5 (5 hops).
	m2, err := spatial.New(spatial.Config{Cores: 8, BankWords: 32, Sub: 4, Window: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := m2.Compose(0, []int{5}, mac); err != nil {
		fmt.Println("window constraint enforced:", err)
	} else {
		fmt.Println("ERROR: 5-hop composition was accepted")
	}
}
