// Fpgaoverlay demonstrates the universal-flow claim of §II.C / Fig 6 on the
// USP fabric simulator: the same fine-grained fabric morphs into a data
// processor (a ripple-carry adder), a state/memory element (a binary
// counter) and an instruction processor (a one-hot micro-sequencer) purely
// by loading different bitstreams — and pays the configuration-bit
// overhead the paper's Eq 2 predicts for that freedom.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
)

func main() {
	f, err := fabric.New(64, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d LUT4+FF cells, %d pins, bitstream %d bits (%d per cell)\n\n",
		f.Cells(), f.Inputs(), f.ConfigBits(), f.ConfigBitsPerCell())

	// Role 1: data processor.
	adder, err := fabric.BuildAdder(f, 16)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Configure(adder.Bitstream); err != nil {
		log.Fatal(err)
	}
	sum, err := adder.Add(f, 48813, 12345)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as a DP:  16-bit adder computes 48813 + 12345 = %d\n", sum)

	// Role 2: memory / state element.
	counter, err := fabric.BuildCounter(f, 10)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Configure(counter.Bitstream); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 101; i++ {
		if err := f.Step(make([]bool, f.Inputs())); err != nil {
			log.Fatal(err)
		}
	}
	v, err := counter.Value(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as state: 10-bit counter reads %d after 101 clocks\n", v)

	// Role 3: instruction processor.
	seq, err := fabric.BuildSequencer(f, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Configure(seq.Bitstream); err != nil {
		log.Fatal(err)
	}
	fmt.Print("as an IP: 4-phase sequencer emits ")
	for i := 0; i < 10; i++ {
		if err := f.Step(make([]bool, f.Inputs())); err != nil {
			log.Fatal(err)
		}
		p, err := seq.Phase(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d ", p)
	}
	fmt.Printf("\n\nreconfigured %d times, %d bits each time\n", f.Reconfigs(), f.ConfigBits())

	// The price of universality: compare with a fixed uni-processor's
	// configuration (Eq 2 under the default component library).
	iup, err := core.EstimateClass("IUP", 1)
	if err != nil {
		log.Fatal(err)
	}
	usp, err := core.EstimateClass("USP", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eq 2 at one logical processor: USP %d bits vs IUP %d bits (%.0fx overhead)\n",
		usp.ConfigBits, iup.ConfigBits, float64(usp.ConfigBits)/float64(iup.ConfigBits))
}
