// Quickstart: describe an architecture in Table III notation, classify it,
// score its flexibility and estimate its area and configuration overhead —
// the full pipeline of the paper in a dozen lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A hypothetical CGRA: one host processor controlling 16 data
	// processors that reach each other over a full crossbar and their
	// memory banks over fixed wires (a MorphoSys-style organisation).
	myCGRA := core.Architecture{
		Name: "MyCGRA",
		IPs:  "1", DPs: "16",
		IPIP: "none", IPDP: "1-16", IPIM: "1-1",
		DPDM: "16-1", DPDP: "16x16",
	}

	class, flexibility, err := core.ClassifyWithFlexibility(myCGRA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s is a %s (%s, %s), flexibility %d\n",
		myCGRA.Name, class, class.Name.Machine, class.Name.Proc, flexibility)

	// Early estimation (Eq 1 and Eq 2) with the default component library.
	est, err := core.EstimateArchitecture(myCGRA, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated area %.0f GE, configuration %d bits\n", est.Area, est.ConfigBits)

	// Compare against a surveyed machine of the same class.
	for _, entry := range core.Survey() {
		if entry.PrintedName != class.String() {
			continue
		}
		other, err := core.Classify(entry.Arch)
		if err != nil {
			log.Fatal(err)
		}
		cmp := core.Compare(class, other)
		fmt.Printf("closest survey relative: %s — %s\n", entry.Arch.Name, cmp)
		break
	}

	// What can this machine morph into?
	for _, name := range []string{"IUP", "IAP-I", "IMP-I", "USP"} {
		target, err := core.LookupClass(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("can act as %-6s %v\n", name+":", core.CanMorphInto(class, target))
	}
}
