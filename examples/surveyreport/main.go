// Surveyreport regenerates the paper's survey as a markdown document:
// Table III with printed-vs-derived classification and the Fig 7
// flexibility comparison, ready to paste into a wiki or README.
package main

import (
	"fmt"
	"log"

	"repro/internal/registry"
	"repro/internal/report"
)

func main() {
	rows, err := registry.DeriveAll()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("# Survey of Modern Parallel and Reconfigurable Architectures")
	fmt.Println()
	fmt.Println("Re-derived from the printed connectivity cells of Table III.")
	fmt.Println()

	tbl := report.Table{Headers: []string{
		"Architecture", "IPs", "DPs", "IP-IP", "IP-DP", "IP-IM", "DP-DM", "DP-DP",
		"Printed", "Derived", "Flexibility",
	}}
	mismatches := 0
	for _, r := range rows {
		a := r.Entry.Arch
		flex := fmt.Sprint(r.Flexibility)
		if !r.FlexibilityMatches {
			flex = fmt.Sprintf("%d (paper prints %d)", r.Flexibility, r.Entry.PrintedFlexibility)
			mismatches++
		}
		tbl.AddRow(a.Name, a.IPs, a.DPs, a.IPIP, a.IPDP, a.IPIM, a.DPDM, a.DPDP,
			r.Entry.PrintedName, r.Class.String(), flex)
	}
	fmt.Println(tbl.Markdown())

	fmt.Println("## Flexibility comparison (Fig 7)")
	fmt.Println()
	chart, err := report.Fig7Chart(48)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("```")
	fmt.Print(chart)
	fmt.Println("```")
	fmt.Println()
	fmt.Printf("Printed-vs-derived disagreements: %d (the paper's own Pact XPP flexibility cell).\n", mismatches)
}
